//! Workspace-level integration tests: benchmarks → compilers → simulator,
//! spanning every crate through the public facade.

use quclear::baselines::{synthesize_naive, Method};
use quclear::circuit::{route, CouplingMap};
use quclear::core::{compile, QuClearConfig};
use quclear::prelude::*;
use quclear::sim::StateVector;
use quclear::workloads::{maxcut_qaoa, qaoa_initial_layer, Benchmark, Graph, Molecule, Uccsd};

/// Every compilation method produces a unitarily equivalent circuit on a
/// small UCCSD instance (QuCLEAR once its extracted Clifford is re-attached).
#[test]
fn all_methods_agree_on_ucc_2_4() {
    let program = Uccsd::new(2, 4).rotations();
    let reference = StateVector::from_circuit(&synthesize_naive(&program));

    for method in Method::ALL {
        let circuit = match method {
            Method::QuClear => compile(&program, &QuClearConfig::default()).full_circuit(),
            _ => method.compile(&program),
        };
        let state = StateVector::from_circuit(&circuit);
        assert!(
            state.approx_eq_up_to_phase(&reference, 1e-8),
            "{} does not implement the UCC-(2,4) unitary",
            method.name()
        );
    }
}

/// QuCLEAR reduces CNOTs on every chemistry benchmark of the suite relative
/// to the naive synthesis, and beats the Rustiq-like baseline (which must pay
/// for its terminal Clifford).
#[test]
fn quclear_wins_on_chemistry_benchmarks() {
    for bench in [
        Benchmark::Ucc(2, 4),
        Benchmark::Ucc(2, 6),
        Benchmark::Molecule(Molecule::LiH),
    ] {
        let program = bench.rotations();
        let quclear = compile(&program, &QuClearConfig::default());
        let native = bench.native_cnot_count();
        let rustiq = Method::RustiqLike.compile(&program);
        assert!(
            quclear.cnot_count() < native / 2,
            "{}: expected more than 2x reduction ({} vs native {})",
            bench.name(),
            quclear.cnot_count(),
            native
        );
        assert!(
            quclear.cnot_count() <= rustiq.cnot_count(),
            "{}: QuCLEAR ({}) should beat Rustiq-like ({})",
            bench.name(),
            quclear.cnot_count(),
            rustiq.cnot_count()
        );
    }
}

/// The probability-absorption path works for every QAOA benchmark (MaxCut and
/// LABS): Proposition 1 guarantees the extracted Clifford is a basis layer
/// plus a CNOT network.
#[test]
fn qaoa_benchmarks_are_probability_absorbable() {
    for bench in [
        Benchmark::MaxCutRegular { n: 15, degree: 4 },
        Benchmark::MaxCutRandom { n: 10, edges: 12 },
        Benchmark::Labs(10),
    ] {
        let result = compile(&bench.rotations(), &QuClearConfig::default());
        assert!(
            result.probability_absorber().is_ok(),
            "{} should satisfy Proposition 1",
            bench.name()
        );
    }
}

/// End-to-end QAOA equivalence through the facade: simulated measurement
/// distribution of the optimized circuit + CA modules equals the original.
#[test]
fn qaoa_distribution_recovered_exactly() {
    let graph = Graph::regular(6, 4, 3);
    let program = maxcut_qaoa(&graph, 1, 0.55, 0.95);
    let result = compile(&program, &QuClearConfig::default());
    let absorber = result.probability_absorber().unwrap();

    let mut reference = qaoa_initial_layer(6);
    reference.append(&synthesize_naive(&program));
    let expected = StateVector::from_circuit(&reference).probabilities();

    let mut optimized = qaoa_initial_layer(6);
    optimized.append(&result.optimized);
    optimized.append(&absorber.pre_circuit());
    let recovered =
        absorber.post_process_probabilities(&StateVector::from_circuit(&optimized).probabilities());

    for (a, b) in expected.iter().zip(&recovered) {
        assert!((a - b).abs() < 1e-9);
    }
}

/// Observable absorption through the facade on a Hamiltonian-simulation
/// workload with the synthetic LiH Hamiltonian terms as observables.
#[test]
fn lih_observables_match_after_absorption() {
    let molecule = Molecule::LiH;
    // A short-time Trotter step keeps the test numerically well conditioned.
    let program: Vec<PauliRotation> = molecule.trotter_step(0.2).into_iter().take(20).collect();
    let result = compile(&program, &QuClearConfig::default());

    let observables: Vec<SignedPauli> = molecule.observables().into_iter().take(12).collect();
    let absorption = result.absorb_observables(&observables);

    let reference = StateVector::from_circuit(&synthesize_naive(&program));
    let optimized = StateVector::from_circuit(&result.optimized);
    for (i, obs) in observables.iter().enumerate() {
        let direct = reference.expectation_signed(obs);
        let measured = optimized.expectation(absorption.transformed()[i].pauli());
        let recovered = absorption.original_expectation(i, measured);
        assert!(
            (direct - recovered).abs() < 1e-8,
            "observable {i} mismatch: {direct} vs {recovered}"
        );
    }
}

/// Routing the compiled circuits onto the Figure 11 devices keeps every
/// two-qubit gate on a coupling edge.
#[test]
fn routed_circuits_respect_device_connectivity() {
    let program = Benchmark::MaxCutRegular { n: 15, degree: 4 }.rotations();
    let circuit = compile(&program, &QuClearConfig::default()).optimized;
    for coupling in [CouplingMap::sycamore_like(), CouplingMap::heavy_hex_65()] {
        let routed = route(&circuit, &coupling);
        for gate in routed.circuit.gates() {
            if gate.is_two_qubit() {
                let q = gate.qubits();
                assert!(
                    coupling.are_connected(q[0], q[1]),
                    "gate {gate} off the coupling map"
                );
            }
        }
        assert!(routed.circuit.cnot_count() >= circuit.cnot_count());
    }
}

/// The ablation switches of the pipeline behave monotonically on a chemistry
/// block: enabling reordering and recursion never hurts the optimized count
/// by more than a trivial margin (and the defaults enable everything).
#[test]
fn ablation_configurations_all_compile() {
    use quclear::core::ExtractionConfig;
    let program = Benchmark::Ucc(2, 6).rotations();
    let mut counts = Vec::new();
    for (recursive, reorder) in [(false, false), (true, false), (false, true), (true, true)] {
        let config = QuClearConfig {
            extraction: ExtractionConfig {
                recursive_tree: recursive,
                reorder_commuting: reorder,
                ..ExtractionConfig::default()
            },
            ..QuClearConfig::default()
        };
        counts.push(compile(&program, &config).cnot_count());
    }
    // Fully enabled must be at least as good as fully disabled.
    assert!(
        counts[3] <= counts[0],
        "full config {} vs none {}",
        counts[3],
        counts[0]
    );
}

/// Facade prelude exposes the basic types.
#[test]
fn prelude_reexports_work() {
    let p: PauliString = "XIZ".parse().unwrap();
    assert_eq!(p.weight(), 2);
    let mut c = Circuit::new(2);
    c.cx(0, 1);
    assert_eq!(quclear::circuit::optimize(&c).cnot_count(), 1);
    let _gate = Gate::H(0);
    let _map = CouplingMap::linear(3);
    assert_eq!(PauliOp::Y.to_char(), 'Y');
}

//! End-to-end QASM ingestion: textual circuits enter the engine through
//! parse → lift → template cache → bind, and both the optimized circuits and
//! the absorbed expectation values match the native Pauli-rotation path.

use quclear::core::{compile, lift_qasm, QuClearConfig};
use quclear::prelude::*;
use quclear::sim::StateVector;
use quclear::workloads::{hardware_efficient_qasm, zz_chain_qasm};
use quclear_circuit::qasm::from_qasm;

/// Observables exercising single- and two-qubit supports on `n` qubits.
fn test_observables(n: usize) -> Vec<SignedPauli> {
    let mut obs = Vec::new();
    for q in 0..n - 1 {
        let mut zz = vec!['I'; n];
        zz[q] = 'Z';
        zz[q + 1] = 'Z';
        obs.push(zz.iter().collect::<String>().parse().unwrap());
    }
    for q in 0..n {
        let mut x = vec!['I'; n];
        x[q] = 'X';
        obs.push(x.iter().collect::<String>().parse().unwrap());
    }
    // One negatively signed, mixed-basis observable.
    let mut s = vec!['I'; n];
    s[0] = 'Y';
    s[n - 1] = 'Z';
    obs.push(
        format!("-{}", s.iter().collect::<String>())
            .parse()
            .unwrap(),
    );
    obs
}

/// The lift recognizes the generator's ladder structure: the lifted program
/// equals the hand-written native rotation program term for term.
#[test]
fn lifted_ansatz_matches_the_native_program_termwise() {
    let ansatz = zz_chain_qasm(5, 2, 23);
    let lifted = lift_qasm(&ansatz.qasm).unwrap();
    assert_eq!(lifted.num_rotations(), ansatz.program.len());
    assert!(lifted.trailing_clifford.is_identity());
    for (got, want) in lifted.rotations.iter().zip(&ansatz.program) {
        assert_eq!(got.pauli(), want.pauli());
        assert!((got.angle() - want.angle()).abs() < 1e-12);
    }
}

/// Acceptance criterion: `Engine::compile_qasm` on a textual Rz/CX-ladder
/// ansatz is simulator-equivalent to native `compile` on the corresponding
/// rotation program, and the absorbed VQE expectation values agree to 1e-9.
#[test]
fn engine_compile_qasm_matches_native_compile_and_expectations() {
    let n = 6;
    let ansatz = zz_chain_qasm(n, 2, 91);
    let engine = Engine::new(16);

    let from_qasm_result = engine.compile_qasm(&ansatz.qasm).unwrap();
    let native_result = compile(&ansatz.program, &QuClearConfig::default());

    // Both full circuits implement the ansatz unitary.
    let qasm_state = StateVector::from_circuit(&from_qasm_result.full_circuit());
    let native_state = StateVector::from_circuit(&native_result.full_circuit());
    assert!(qasm_state.approx_eq_up_to_phase(&native_state, 1e-9));

    // Reference: exact rotation-product state.
    let mut reference = StateVector::zero_state(n);
    reference.apply_rotations(&ansatz.program);
    assert!(qasm_state.approx_eq_up_to_phase(&reference, 1e-9));

    // VQE expectations through CA-Pre on both paths, against the reference.
    let observables = test_observables(n);
    let qasm_opt = StateVector::from_circuit(&from_qasm_result.optimized);
    let native_opt = StateVector::from_circuit(&native_result.optimized);
    let qasm_absorbed = from_qasm_result.absorb_observables(&observables);
    let native_absorbed = native_result.absorb_observables(&observables);
    for (i, observable) in observables.iter().enumerate() {
        let truth = reference.expectation_signed(observable);
        let via_qasm = qasm_absorbed.original_expectation(
            i,
            qasm_opt.expectation(qasm_absorbed.transformed()[i].pauli()),
        );
        let via_native = native_absorbed.original_expectation(
            i,
            native_opt.expectation(native_absorbed.transformed()[i].pauli()),
        );
        assert!(
            (truth - via_qasm).abs() < 1e-9,
            "observable {observable}: QASM path {via_qasm} vs reference {truth}"
        );
        assert!(
            (via_qasm - via_native).abs() < 1e-9,
            "observable {observable}: QASM path {via_qasm} vs native path {via_native}"
        );
    }
}

/// Structures are fingerprinted and cached: re-ingesting the same ansatz
/// with different angles hits the template cache, and `bind_qasm` overrides
/// the textual angles through the same template.
#[test]
fn qasm_ingestion_hits_the_template_cache() {
    let engine = Engine::new(16);
    let a = zz_chain_qasm(5, 2, 1);
    let b = zz_chain_qasm(5, 2, 2); // same structure, different angles

    engine.compile_qasm(&a.qasm).unwrap();
    engine.compile_qasm(&b.qasm).unwrap();
    let stats = engine.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // bind_qasm with b's native angles must equal compile_qasm of b.
    let lifted_b = lift_qasm(&b.qasm).unwrap();
    let bound = engine.bind_qasm(&a.qasm, lifted_b.native_angles()).unwrap();
    let direct = engine.compile_qasm(&b.qasm).unwrap();
    assert_eq!(bound.optimized.gates(), direct.optimized.gates());
    assert_eq!(bound.extracted.gates(), direct.extracted.gates());
}

/// A hardware-efficient ansatz (entangling chain *not* uncomputed) exercises
/// a non-trivial trailing Clifford end to end: the composed result still
/// implements the parsed circuit, and absorbed expectations remain exact.
#[test]
fn non_trivial_trailing_clifford_composes_through_the_engine() {
    let n = 5;
    let ansatz = hardware_efficient_qasm(n, 2, 77);
    let engine = Engine::new(16);

    let result = engine.compile_qasm(&ansatz.qasm).unwrap();
    let lifted = lift_qasm(&ansatz.qasm).unwrap();
    assert!(!lifted.trailing_clifford.is_identity());

    let parsed = from_qasm(&ansatz.qasm).unwrap();
    let reference = StateVector::from_circuit(&parsed);
    let via_engine = StateVector::from_circuit(&result.full_circuit());
    assert!(via_engine.approx_eq_up_to_phase(&reference, 1e-9));

    // Absorbed expectations against the raw parsed circuit.
    let observables = test_observables(n);
    let optimized = StateVector::from_circuit(&result.optimized);
    let absorbed = result.absorb_observables(&observables);
    for (i, observable) in observables.iter().enumerate() {
        let truth = reference.expectation_signed(observable);
        let recovered = absorbed
            .original_expectation(i, optimized.expectation(absorbed.transformed()[i].pauli()));
        assert!(
            (truth - recovered).abs() < 1e-9,
            "observable {observable}: {recovered} vs {truth}"
        );
    }
}

/// Clifford-only QASM circuits ingest cleanly: the rotation program is
/// empty and the whole circuit lands in the extracted Clifford.
#[test]
fn clifford_only_qasm_is_fully_absorbed() {
    let qasm = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0], q[1];\ncx q[1], q[2];\ns q[2];\n";
    let engine = Engine::new(4);
    let result = engine.compile_qasm(qasm).unwrap();
    assert!(result.optimized.is_empty());
    assert_eq!(result.extracted.len(), 4);

    let reference = StateVector::from_circuit(&from_qasm(qasm).unwrap());
    let via_engine = StateVector::from_circuit(&result.full_circuit());
    assert!(via_engine.approx_eq_up_to_phase(&reference, 1e-9));
}

/// `t`/`tdg` enter the pipeline as π/4 rotations; expectation values (which
/// are phase-blind) match the parsed circuit exactly.
#[test]
fn t_gates_ingest_as_rotations() {
    let qasm = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nt q[0];\ncx q[0], q[1];\ntdg q[1];\nh q[1];\n";
    let engine = Engine::new(4);
    let result = engine.compile_qasm(qasm).unwrap();
    let reference = StateVector::from_circuit(&from_qasm(qasm).unwrap());
    let via_engine = StateVector::from_circuit(&result.full_circuit());
    assert!(via_engine.approx_eq_up_to_phase(&reference, 1e-9));
}

//! End-to-end validation of the word-parallel absorption pipeline: batch
//! CA-Pre observable rewriting through the engine's cached plan (VQE path)
//! and bit-plane CA-Post shot post-processing (QAOA sampling path), both
//! checked against the scalar reference implementations and the simulator.

use quclear::core::ShotBatch;
use quclear::prelude::*;
use quclear::sim::StateVector;
use quclear::workloads::{
    qaoa_initial_layer, qaoa_sampling_sweep, vqe_expectation_sweep, Benchmark, Graph,
};
use quclear_baselines::synthesize_naive;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// VQE expectation path: the engine binds one template per sweep, CA-Pre
/// rewrites the whole observable set in one frame sweep, and every original
/// expectation is recovered from the optimized circuit alone.
#[test]
fn vqe_expectation_sweep_recovers_original_expectations() {
    let sweep = vqe_expectation_sweep(&Benchmark::Ucc(2, 4), 3, 41);
    let engine = Engine::new(16);
    let absorbed = engine
        .absorb_observables(&sweep.scenario.program, &sweep.observables)
        .unwrap();
    assert_eq!(absorbed.len(), sweep.observables.len());

    let results = engine
        .sweep(&sweep.scenario.program, &sweep.scenario.angle_sets)
        .unwrap();
    for result in &results {
        let result = result.as_ref().unwrap();
        // Reference: the full circuit (optimized + extracted Clifford).
        let reference = StateVector::from_circuit(&result.full_circuit());
        let optimized = StateVector::from_circuit(&result.optimized);
        for (i, observable) in sweep.observables.iter().enumerate() {
            let direct = reference.expectation_signed(observable);
            let measured = optimized.expectation(&absorbed.frame().row_pauli(i));
            let recovered = absorbed.original_expectation(i, measured);
            assert!(
                (direct - recovered).abs() < 1e-8,
                "observable {i} ({observable}) mismatch: {direct} vs {recovered}"
            );
        }
    }

    // The commuting groups are valid and cover the set exactly once.
    let groups = absorbed.commuting_groups();
    let covered: usize = groups.iter().map(Vec::len).sum();
    assert_eq!(covered, sweep.observables.len());
    let rewritten = absorbed.to_vec();
    for group in &groups {
        for (a, &i) in group.iter().enumerate() {
            for &j in &group[a + 1..] {
                assert!(rewritten[i].pauli().commutes_with(rewritten[j].pauli()));
            }
        }
    }
}

/// QAOA sampling path: shots drawn from the optimized circuit are remapped
/// by the bit-plane affine CA-Post exactly like the scalar per-shot map,
/// and the word-parallel expectation accumulator reproduces the exact cut
/// expectations within sampling error.
#[test]
fn qaoa_shot_post_processing_matches_scalar_and_simulator() {
    let graph = Graph::regular(6, 2, 9);
    let sweep = qaoa_sampling_sweep(&graph, &[0.55], &[0.95]);
    let engine = Engine::new(16);
    let results = engine
        .sweep(&sweep.scenario.program, &sweep.scenario.angle_sets)
        .unwrap();
    let result = results[0].as_ref().unwrap();
    let absorber = result.probability_absorber().unwrap();
    let n = graph.num_vertices();

    // Measured state: initial |+…+⟩ layer, optimized circuit, CA-Pre basis
    // rotations — then computational-basis shots.
    let mut measured = qaoa_initial_layer(n);
    measured.append(&result.optimized);
    measured.append(&absorber.pre_circuit());
    let state = StateVector::from_circuit(&measured);
    let mut rng = StdRng::seed_from_u64(2024);
    let shots = state.sample_indices(60_000, &mut rng);

    // Bit-plane CA-Post vs the scalar per-shot map: bit-for-bit identical.
    let batch = ShotBatch::from_indices(n, &shots);
    let mapped = absorber.post_process_shots(&batch);
    let scalar: Vec<u64> = shots
        .iter()
        .map(|&s| absorber.map_index(s as usize) as u64)
        .collect();
    assert_eq!(mapped.to_indices(), scalar);

    // Exact reference distribution of the original program, re-angled to
    // the grid point the engine bound.
    let reangled: Vec<PauliRotation> = sweep
        .scenario
        .program
        .iter()
        .zip(&sweep.scenario.angle_sets[0])
        .map(|(r, &a)| PauliRotation::new(r.pauli().clone(), a))
        .collect();
    let mut reference = qaoa_initial_layer(n);
    reference.append(&synthesize_naive(&reangled));
    let exact = StateVector::from_circuit(&reference);

    // Word-parallel expectation accumulator vs exact edge expectations.
    for observable in &sweep.observables {
        let estimate = observable.sign() * mapped.parity_expectation_of(observable.pauli());
        let truth = exact.expectation_signed(observable);
        assert!(
            (estimate - truth).abs() < 0.05,
            "edge {observable}: sampled {estimate} vs exact {truth}"
        );
    }

    // The remapped histogram matches the exact distribution in total
    // variation distance (loose sampling bound).
    let counts = mapped.counts();
    let total: u64 = counts.values().sum();
    assert_eq!(total, 60_000);
    let tv: f64 = (0..1u64 << n)
        .map(|idx| {
            let sampled = *counts.get(&idx).unwrap_or(&0) as f64 / total as f64;
            (sampled - exact.probability_of(idx as usize)).abs()
        })
        .sum::<f64>()
        / 2.0;
    assert!(tv < 0.04, "total variation {tv} too large");
}

//! Workspace-level integration of the compilation engine: templates cached
//! through the facade, batch compilation over real workloads, and agreement
//! with the core pipeline validated by the simulator.

use quclear::core::{compile, QuClearConfig};
use quclear::prelude::*;
use quclear::sim::StateVector;
use quclear::workloads::{qaoa_grid_sweep, vqe_sweep, Benchmark, Graph};

/// An engine-compiled sweep point implements the same unitary as the
/// reference pipeline on a real UCCSD ansatz.
#[test]
fn engine_sweep_matches_core_on_uccsd() {
    let sweep = vqe_sweep(&Benchmark::Ucc(2, 4), 6, 123);
    let engine = Engine::new(16);
    let results = engine.sweep(&sweep.program, &sweep.angle_sets).unwrap();
    assert_eq!(results.len(), 6);

    for (angles, result) in sweep.angle_sets.iter().zip(&results) {
        let result = result.as_ref().expect("sweep point must compile");
        let program: Vec<PauliRotation> = sweep
            .program
            .iter()
            .zip(angles)
            .map(|(r, &a)| PauliRotation::new(r.pauli().clone(), a))
            .collect();
        let reference = compile(&program, &QuClearConfig::default());
        assert_eq!(result.optimized.gates(), reference.optimized.gates());

        let engine_state = StateVector::from_circuit(&result.full_circuit());
        let reference_state = StateVector::from_circuit(&reference.full_circuit());
        assert!(engine_state.approx_eq_up_to_phase(&reference_state, 1e-8));
    }
    assert_eq!(engine.stats().misses, 1);
}

/// A QAOA angle grid shares one template across the whole grid and keeps
/// probability absorption available on every binding.
#[test]
fn qaoa_grid_reuses_template_and_stays_absorbable() {
    let graph = Graph::regular(6, 2, 9);
    let sweep = qaoa_grid_sweep(&graph, &[0.2, 0.5, 0.9], &[0.3, 0.7]);
    let engine = Engine::new(16);
    let results = engine.sweep(&sweep.program, &sweep.angle_sets).unwrap();
    assert_eq!(results.len(), 6);
    for result in &results {
        let result = result.as_ref().unwrap();
        assert!(
            result.probability_absorber().is_ok(),
            "QAOA binding must stay probability-absorbable (Proposition 1)"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.binds, 6);
}

/// Warm binds get absorption for free: on a template cache hit, a
/// previously absorbed observable set is returned from the template's memo
/// (same `Arc`) instead of being re-conjugated — and the rewriting agrees
/// with the scalar per-string path.
#[test]
fn warm_binds_reuse_the_cached_absorption_plan() {
    use std::sync::Arc;

    let sweep = vqe_sweep(&Benchmark::Ucc(2, 4), 2, 7);
    let observables: Vec<SignedPauli> = ["ZIII", "IZII", "ZZII", "XXYY", "-YYXX"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let engine = Engine::new(16);

    // Cold: compiles the template and conjugates the set once.
    let first = engine
        .absorb_observables(&sweep.program, &observables)
        .unwrap();
    // Warm: template cache hit + absorption memo hit — the same Arc comes
    // back, proving nothing was re-conjugated.
    let again = engine
        .absorb_observables(&sweep.program, &observables)
        .unwrap();
    assert!(
        Arc::ptr_eq(&first, &again),
        "cache hit must reuse the memoized absorption"
    );
    let stats = engine.stats();
    assert_eq!((stats.misses, stats.hits), (1, 1));

    // The batch rewriting agrees with the scalar reference.
    let reference = compile(&sweep.program, &QuClearConfig::default());
    let scalar = reference.absorb_observables(&observables);
    assert_eq!(&first.to_vec(), scalar.transformed());

    // A different set on the same (cached) template is a fresh conjugation.
    let other: Vec<SignedPauli> = vec!["XIXI".parse().unwrap()];
    let third = engine.absorb_observables(&sweep.program, &other).unwrap();
    assert_eq!(third.len(), 1);
    assert_eq!(engine.stats().hits, 2);

    // And binding through the same template still works as usual.
    let results = engine.sweep(&sweep.program, &sweep.angle_sets).unwrap();
    assert!(results.iter().all(Result::is_ok));
    assert_eq!(engine.stats().misses, 1, "no recompilation happened");
}

/// Batch compilation over heterogeneous structures via the facade prelude.
#[test]
fn batch_compilation_through_the_facade() {
    let engine = Engine::default();
    let jobs: Vec<BatchJob> = [("ZZZZ", 0.3), ("XXII", 0.9), ("ZZZZ", -1.4)]
        .iter()
        .map(|&(p, a)| BatchJob::new(vec![PauliRotation::parse(p, a).unwrap()]))
        .collect();
    let results = engine.compile_batch(&jobs);
    assert!(results.iter().all(Result::is_ok));
    // Two distinct structures; the repeated ZZZZ hits the cache.
    let stats = engine.stats();
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 1);

    // Fingerprints are exposed through the prelude too.
    let config = QuClearConfig::default();
    let fp_a = ProgramFingerprint::of_program(&jobs[0].program, &config);
    let fp_c = ProgramFingerprint::of_program(&jobs[2].program, &config);
    assert_eq!(fp_a, fp_c);
}

//! Integration tests for the extension features: multi-layer QAOA
//! absorption, measurement grouping, QASM round-trips and fidelity estimates.

use quclear::baselines::synthesize_naive;
use quclear::circuit::qasm::{from_qasm, to_qasm};
use quclear::circuit::NoiseModel;
use quclear::core::{compile, group_qubitwise_commuting, QuClearConfig};
use quclear::prelude::*;
use quclear::sim::StateVector;
use quclear::workloads::{maxcut_qaoa, qaoa_initial_layer, Benchmark, Graph, Molecule};

/// Proposition 1 extends to multi-layer QAOA: with two layers the extracted
/// Clifford is still a basis layer plus a CNOT network, and the recovered
/// distribution is exact.
#[test]
fn two_layer_qaoa_probability_absorption_is_exact() {
    let graph = Graph::regular(5, 2, 4);
    let program = maxcut_qaoa(&graph, 2, 0.45, 0.85);
    let result = compile(&program, &QuClearConfig::default());
    let absorber = result
        .probability_absorber()
        .expect("two-layer QAOA must still satisfy Proposition 1");

    let n = graph.num_vertices();
    let mut reference = qaoa_initial_layer(n);
    reference.append(&synthesize_naive(&program));
    let expected = StateVector::from_circuit(&reference).probabilities();

    let mut optimized = qaoa_initial_layer(n);
    optimized.append(&result.optimized);
    optimized.append(&absorber.pre_circuit());
    let recovered =
        absorber.post_process_probabilities(&StateVector::from_circuit(&optimized).probabilities());
    for (a, b) in expected.iter().zip(&recovered) {
        assert!((a - b).abs() < 1e-9);
    }
}

/// Measurement grouping applies equally well to the absorbed observables:
/// every group member must be qubit-wise consistent with the group basis and
/// the groups must cover all observables exactly once.
#[test]
fn grouping_absorbed_lih_observables() {
    let molecule = Molecule::LiH;
    let program: Vec<PauliRotation> = molecule.trotter_step(0.3).into_iter().take(25).collect();
    let result = compile(&program, &QuClearConfig::default());
    let observables = molecule.observables();
    let absorption = result.absorb_observables(&observables);

    let groups = group_qubitwise_commuting(absorption.transformed());
    let covered: usize = groups.iter().map(|g| g.members.len()).sum();
    assert_eq!(covered, observables.len());
    assert!(
        groups.len() < observables.len(),
        "grouping should reduce the number of measurement settings ({} vs {})",
        groups.len(),
        observables.len()
    );
    for group in &groups {
        for &member in &group.members {
            assert!(quclear::core::qubit_wise_commute(
                &group.basis,
                absorption.transformed()[member].pauli()
            ));
        }
    }
}

/// The optimized circuit survives a QASM round-trip unchanged (gate counts
/// and simulated state).
#[test]
fn optimized_circuit_qasm_roundtrip() {
    let program = Benchmark::Ucc(2, 4).rotations();
    let result = compile(&program, &QuClearConfig::default());
    let text = to_qasm(&result.optimized);
    let parsed = from_qasm(&text).expect("exported QASM must parse back");
    assert_eq!(parsed.cnot_count(), result.optimized.cnot_count());
    let a = StateVector::from_circuit(&result.optimized);
    let b = StateVector::from_circuit(&parsed);
    assert!(a.approx_eq_up_to_phase(&b, 1e-9));
}

/// CNOT reductions translate into estimated fidelity gains under a simple
/// noise model — the practical motivation of the paper.
#[test]
fn quclear_improves_estimated_fidelity() {
    let program = Benchmark::Ucc(2, 6).rotations();
    let naive = synthesize_naive(&program);
    let optimized = compile(&program, &QuClearConfig::default()).optimized;
    let model = NoiseModel::superconducting_typical();
    let fid_naive = model.estimated_fidelity(&naive);
    let fid_optimized = model.estimated_fidelity(&optimized);
    assert!(
        fid_optimized > fid_naive * 2.0,
        "expected a large fidelity gain: {fid_optimized} vs {fid_naive}"
    );
}

/// LABS programs (multi-qubit Z terms + X mixer) also go through the full
/// probability-absorption path.
#[test]
fn labs_probability_absorption_is_exact_for_small_n() {
    let program = quclear::workloads::labs_qaoa(6, 1, 0.5, 0.8);
    let result = compile(&program, &QuClearConfig::default());
    let absorber = result
        .probability_absorber()
        .expect("LABS satisfies Proposition 1");

    let mut reference = qaoa_initial_layer(6);
    reference.append(&synthesize_naive(&program));
    let expected = StateVector::from_circuit(&reference).probabilities();

    let mut optimized = qaoa_initial_layer(6);
    optimized.append(&result.optimized);
    optimized.append(&absorber.pre_circuit());
    let recovered =
        absorber.post_process_probabilities(&StateVector::from_circuit(&optimized).probabilities());
    for (a, b) in expected.iter().zip(&recovered) {
        assert!((a - b).abs() < 1e-9);
    }
}

//! End-to-end service tests: many client threads against one server.
//!
//! These prove the two acceptance properties of the serving layer:
//!
//! 1. **Single-flight coalescing** — K concurrent requests for the same
//!    uncached structure trigger exactly one extraction (`misses == 1`),
//!    with the overlap visible in `coalesced_waits`.
//! 2. **Panic robustness** — a deliberately panicking compile answers its
//!    own request with an error and nothing else: the worker, the other
//!    connections, the engine cache (including the doomed structure's own
//!    shard) all keep serving.
//!
//! Shutdown is exercised in every test: `Server::stop` joins all server
//! threads, so a test that returns has, by construction, leaked none.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use quclear_engine::{Engine, ProgramFingerprint};
use quclear_pauli::PauliRotation;
use quclear_serve::{Client, Server, ServerConfig};

/// A deterministic pseudo-random program; `tag` selects the structure.
/// Large enough (rotations × qubits) that extraction takes real time, so
/// concurrent identical requests overlap in flight even on one core.
fn program_axes(tag: u64, rotations: usize) -> Vec<String> {
    let n = 12;
    let ops = ['X', 'Y', 'Z', 'I'];
    let mut state = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..rotations)
        .map(|_| {
            let mut axis: String = (0..n).map(|_| ops[(next() % 4) as usize]).collect();
            if !axis.bytes().any(|b| b != b'I') {
                axis.replace_range(0..1, "Z");
            }
            axis
        })
        .collect()
}

fn angles_for(axes: &[String], seed: f64) -> Vec<f64> {
    (0..axes.len()).map(|i| seed + 0.05 * i as f64).collect()
}

fn start_server(engine: Arc<Engine>, workers: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral port")
}

#[test]
fn coalescing_many_clients_one_structure() {
    let engine = Arc::new(Engine::new(256));
    // As many workers as clients: every request is in a worker's hands at
    // once, so the in-flight window sees all of them.
    let threads = 8;
    let server = start_server(Arc::clone(&engine), threads);
    let addr = server.local_addr();

    let axes = program_axes(1, 48);
    // Hold the leader's compile open for long enough that every concurrent
    // request provably lands inside the in-flight window: the coalescing
    // assertions below become schedule-independent.
    let rotations: Vec<PauliRotation> = axes
        .iter()
        .map(|axis| PauliRotation::parse(axis, 0.0).unwrap())
        .collect();
    let fingerprint = ProgramFingerprint::of_program(&rotations, engine.config());
    engine.inject_compile_delay(Some((fingerprint, std::time::Duration::from_millis(750))));

    let barrier = Arc::new(Barrier::new(threads));
    let reference: Arc<std::sync::Mutex<Option<String>>> = Arc::default();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let axes = axes.clone();
            let barrier = Arc::clone(&barrier);
            let reference = Arc::clone(&reference);
            scope.spawn(move || {
                // Connect before the barrier so every request hits the
                // server in the same instant.
                let mut client = Client::connect(addr).expect("connect");
                let angles = angles_for(&axes, 0.3);
                barrier.wait();
                let compiled = client
                    .compile(
                        &axes.iter().map(String::as_str).collect::<Vec<_>>(),
                        &angles,
                    )
                    .unwrap_or_else(|e| panic!("client {t}: {e}"));
                // Identical requests must produce identical circuits.
                let mut slot = reference.lock().unwrap();
                match &*slot {
                    Some(expected) => assert_eq!(&compiled.optimized_qasm, expected),
                    None => *slot = Some(compiled.optimized_qasm),
                }
            });
        }
    });

    engine.inject_compile_delay(None);
    let stats = engine.stats();
    assert_eq!(
        stats.misses, 1,
        "K concurrent identical requests must run exactly one extraction"
    );
    assert_eq!(stats.hits, threads as u64 - 1);
    // Every client that reached the server during the 750ms compile window
    // waited on the flight. Allow a minority to have been scheduled late
    // (slow CI), but overlap must be the norm, not the exception.
    assert!(
        stats.coalesced_waits >= threads as u64 / 2,
        "with {threads} simultaneous requests held open by the injected \
         compile delay, most must have waited on the in-flight compile \
         (got {})",
        stats.coalesced_waits
    );
    assert_eq!(stats.entries, 1);
    server.stop();
}

#[test]
fn identical_and_distinct_fingerprints_mix() {
    let engine = Arc::new(Engine::new(256));
    let server = start_server(Arc::clone(&engine), 6);
    let addr = server.local_addr();

    // 4 distinct structures, hammered by 12 threads (3 threads per
    // structure, several requests each, distinct angles throughout).
    let structures: Vec<Vec<String>> = (0..4).map(|tag| program_axes(10 + tag, 16)).collect();
    let threads = 12;
    let per_thread = 4;
    let barrier = Arc::new(Barrier::new(threads));

    std::thread::scope(|scope| {
        for t in 0..threads {
            let axes = structures[t % structures.len()].clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                let axes_refs: Vec<&str> = axes.iter().map(String::as_str).collect();
                let mut gate_counts = Vec::new();
                for round in 0..per_thread {
                    let angles = angles_for(&axes, 0.1 + 0.01 * (t * per_thread + round) as f64);
                    let compiled = client
                        .compile(&axes_refs, &angles)
                        .unwrap_or_else(|e| panic!("client {t} round {round}: {e}"));
                    gate_counts.push(compiled.gate_count);
                }
                // Rebinding angles never changes the structure's gate count
                // (all angles here are generic non-zero values).
                assert!(gate_counts.windows(2).all(|w| w[0] == w[1]));
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(
        stats.misses,
        structures.len() as u64,
        "exactly one compile per distinct structure"
    );
    assert_eq!(
        stats.lookups(),
        (threads * per_thread) as u64,
        "every request is accounted as hit or miss"
    );
    assert_eq!(stats.entries, structures.len());
    server.stop();
}

#[test]
fn panicking_compile_neither_kills_the_server_nor_poisons_its_shard() {
    // One cache shard: the doomed structure and every healthy one share it,
    // so any post-panic poisoning would take down all later requests.
    let engine = Arc::new(Engine::with_shards(
        64,
        1,
        quclear_core::QuClearConfig::default(),
    ));
    let doomed_axes = program_axes(77, 8);
    let doomed_rotations: Vec<PauliRotation> = doomed_axes
        .iter()
        .map(|axis| PauliRotation::parse(axis, 0.0).unwrap())
        .collect();
    let fingerprint = ProgramFingerprint::of_program(&doomed_rotations, engine.config());
    engine.inject_lookup_panic(Some(fingerprint));

    let server = start_server(Arc::clone(&engine), 4);
    let addr = server.local_addr();
    let doomed_refs: Vec<&str> = doomed_axes.iter().map(String::as_str).collect();
    let doomed_angles = angles_for(&doomed_axes, 0.2);

    let mut client = Client::connect(addr).expect("connect");
    for round in 0..3 {
        // The panicking compile answers with a structured error...
        let err = client
            .compile(&doomed_refs, &doomed_angles)
            .expect_err("the injected panic must surface as an error");
        let remote = err
            .remote()
            .unwrap_or_else(|| panic!("round {round}: {err}"));
        assert_eq!(remote.kind, "panicked", "round {round}: {remote}");

        // ...and the same connection keeps working: a healthy structure on
        // the same (only) shard compiles fine right after.
        let healthy = program_axes(200 + round, 8);
        let healthy_refs: Vec<&str> = healthy.iter().map(String::as_str).collect();
        client
            .compile(&healthy_refs, &angles_for(&healthy, 0.4))
            .unwrap_or_else(|e| panic!("healthy compile after panic, round {round}: {e}"));
    }

    // Fresh connections work too (the worker pool survived all panics), and
    // a stats round-trip still answers.
    let mut second = Client::connect(addr).expect("reconnect after panics");
    let stats = second.stats().expect("stats after panics");
    assert!(stats.requests_served >= 6);

    // Disarm the fault: the previously doomed structure now compiles on the
    // very same shard — nothing was poisoned.
    engine.inject_lookup_panic(None);
    second
        .compile(&doomed_refs, &doomed_angles)
        .expect("the doomed structure must compile once the fault is gone");
    server.stop();
}

#[test]
fn sweep_qasm_absorb_and_health_roundtrip() {
    let engine = Arc::new(Engine::new(64));
    let server = start_server(Arc::clone(&engine), 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Sweep: one structure, many bindings, per-set failures isolated.
    let sweep = client
        .sweep(
            &["ZZII", "IXXI"],
            &[
                vec![0.1, 0.2],
                vec![0.3], // too short: isolated failure
                vec![0.5, -0.6],
                vec![0.7, 0.8, 0.9], // too long: must error, not truncate
            ],
        )
        .expect("sweep");
    assert_eq!(sweep.len(), 4);
    assert!(sweep[0].is_ok());
    assert_eq!(sweep[1].as_ref().unwrap_err().kind, "angle_count");
    assert!(sweep[2].is_ok());
    assert_eq!(sweep[3].as_ref().unwrap_err().kind, "angle_count");
    assert_eq!(engine.stats().misses, 1);

    // Signed axes fold into the sweep's angles: a `-ZZ` sweep equals the
    // `+ZZ` sweep of the negated angle.
    let minus = client
        .sweep(&["-ZZII"], &[vec![0.4]])
        .expect("signed sweep");
    let plus = client.sweep(&["ZZII"], &[vec![-0.4]]).expect("plus sweep");
    assert_eq!(
        minus[0].as_ref().unwrap().optimized_qasm,
        plus[0].as_ref().unwrap().optimized_qasm
    );

    // QASM path shares the cache across angle changes.
    let ansatz =
        |theta: f64| format!("qreg q[3];\ncx q[0], q[1];\nrz({theta}) q[1];\ncx q[0], q[1];\n");
    let first = client.compile_qasm(&ansatz(0.25)).expect("compile_qasm");
    let second = client.bind_qasm(&ansatz(0.0), &[1.5]).expect("bind_qasm");
    assert_eq!(first.gate_count, second.gate_count);

    // A QASM parse error comes back as a structured remote error.
    let err = client.compile_qasm("qreg q[1];\nccx q[0];\n").unwrap_err();
    assert_eq!(err.remote().expect("remote error").kind, "qasm_parse");

    // Absorption: signs and grouping survive the wire.
    let (observables, groups) = client
        .absorb(&["ZZ"], &["+ZI", "-IZ", "+XX"])
        .expect("absorb");
    assert_eq!(observables.len(), 3);
    assert!(observables[1].starts_with('-'));
    let grouped: usize = groups.iter().map(Vec::len).sum();
    assert_eq!(grouped, 3);

    // Non-finite angles become a structured error, not a client panic (JSON
    // has no NaN spelling; the protocol encodes them as null, which the
    // server's typed decoding rejects). The connection stays usable.
    let err = client.compile(&["ZZII"], &[f64::NAN]).unwrap_err();
    assert_eq!(err.remote().expect("remote error").kind, "bad_request");
    assert!(!client.is_broken());

    // Health and stats.
    client.health().expect("health");
    let stats = client.stats().expect("stats");
    assert!(stats.requests_served >= 6);
    assert!(stats.capacity >= stats.entries);

    server.stop();
}

#[test]
fn remote_shutdown_is_gated_and_graceful() {
    // Default config: remote shutdown refused.
    let engine = Arc::new(Engine::new(16));
    let server = start_server(Arc::clone(&engine), 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let err = client.shutdown_server().expect_err("must be forbidden");
    assert_eq!(err.remote().expect("remote").kind, "forbidden");
    // The refusal did not kill the connection.
    client.health().expect("health after refused shutdown");
    server.stop();

    // Opt-in config: shutdown acknowledged, then the server drains.
    let engine = Arc::new(Engine::new(16));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            workers: 2,
            allow_remote_shutdown: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client.compile(&["ZZ"], &[0.4]).expect("compile");
    client.shutdown_server().expect("shutdown acknowledged");
    server.join(); // returns only when every thread exited: nothing leaked

    // The listener is gone: new connections fail (immediately or on first
    // use). Distinguishes "server stopped" from "server wedged".
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut client) => {
            client
                .set_read_timeout(Some(std::time::Duration::from_millis(500)))
                .unwrap();
            assert!(client.health().is_err(), "a stopped server must not answer");
        }
    }
}

/// Stats snapshots taken while clients hammer the server stay within the
/// documented invariants (`hit_rate` ∈ [0,1], `entries <= capacity`).
#[test]
fn stats_stay_coherent_while_serving() {
    let engine = Arc::new(Engine::new(8));
    let server = start_server(Arc::clone(&engine), 4);
    let addr = server.local_addr();
    let bad = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for t in 0..3u64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..20 {
                    // More structures than cache capacity: eviction churn.
                    let axes = program_axes(300 + (t * 20 + i) % 12, 6);
                    let refs: Vec<&str> = axes.iter().map(String::as_str).collect();
                    client
                        .compile(&refs, &angles_for(&axes, 0.2))
                        .expect("compile under churn");
                }
            });
        }
        let bad = Arc::clone(&bad);
        scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            for _ in 0..40 {
                let stats = client.stats().expect("stats under churn");
                if !(0.0..=1.0).contains(&stats.hit_rate) || stats.entries > stats.capacity {
                    bad.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });
    assert_eq!(bad.load(Ordering::Relaxed), 0);
    server.stop();
}

/// Idle connections are reclaimed: with a 1-worker pool, a client that
/// connects and goes silent must not wedge the server for everyone else.
#[test]
fn idle_connections_release_their_worker() {
    let engine = Arc::new(Engine::new(16));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            workers: 1,
            idle_timeout: Some(std::time::Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // The idler grabs the only worker and sends nothing.
    let idler = Client::connect(addr).expect("idler connects");

    // A working client queues behind it; once the idler is reclaimed
    // (~200ms), the worker serves the queued connection.
    let mut worker_client = Client::connect(addr).expect("second connect");
    worker_client
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    worker_client
        .compile(&["ZZ"], &[0.25])
        .expect("the queued client must be served after the idler is reclaimed");

    // The idler's connection was closed server-side; its next request dies.
    let mut idler = idler;
    idler
        .set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .unwrap();
    assert!(
        idler.health().is_err(),
        "the reclaimed idle connection must not answer"
    );
    server.stop();
}

/// A response that would exceed the server's frame cap degrades into a
/// structured `response_too_large` error on the same connection — the
/// client learns why, instead of watching the socket die.
#[test]
fn oversized_responses_degrade_to_structured_errors() {
    let engine = Arc::new(Engine::new(16));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            workers: 2,
            // Far below any compiled-circuit response, far above the error
            // response that replaces it.
            max_frame_bytes: 300,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let err = client
        .compile(&["ZZZZ", "YYXX"], &[0.3, 0.7])
        .expect_err("the QASM-bearing response cannot fit 300 bytes");
    assert_eq!(
        err.remote().expect("remote error").kind,
        "response_too_large"
    );
    // Same connection keeps serving small responses.
    client.health().expect("health after oversized response");
    server.stop();
}

/// A request that times out on the client side desynchronizes that
/// connection's request/response pairing — the client must refuse further
/// use instead of misreading the late response as the answer to the next
/// request. A fresh connection works immediately.
#[test]
fn timed_out_client_breaks_instead_of_desynchronizing() {
    let engine = Arc::new(Engine::new(16));
    let axes = program_axes(42, 6);
    let rotations: Vec<PauliRotation> = axes
        .iter()
        .map(|axis| PauliRotation::parse(axis, 0.0).unwrap())
        .collect();
    let fingerprint = ProgramFingerprint::of_program(&rotations, engine.config());
    // Hold the compile open well past the client's timeout.
    engine.inject_compile_delay(Some((fingerprint, std::time::Duration::from_millis(1500))));

    let server = start_server(Arc::clone(&engine), 2);
    let addr = server.local_addr();
    let refs: Vec<&str> = axes.iter().map(String::as_str).collect();

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(std::time::Duration::from_millis(150)))
        .unwrap();
    let err = client
        .compile(&refs, &angles_for(&axes, 0.1))
        .expect_err("the slow compile must time out client-side");
    assert!(matches!(err, quclear_serve::ClientError::Io(_)), "{err}");
    assert!(
        client.is_broken(),
        "a timed-out exchange must break the client"
    );

    // Every later call fails fast with a clear signal, even though the late
    // response frame is now sitting in the socket.
    let err = client.health().expect_err("broken client must refuse");
    assert!(matches!(err, quclear_serve::ClientError::Io(_)));

    // A fresh connection is unaffected; once the in-flight compile drains
    // (and the fault is disarmed), the structure serves normally.
    engine.inject_compile_delay(None);
    let mut fresh = Client::connect(addr).expect("reconnect");
    fresh
        .compile(&refs, &angles_for(&axes, 0.1))
        .expect("fresh connection compiles the same structure");
    server.stop();
}

/// A malformed frame (bad JSON) errors that request without ending the
/// server, and a protocol-violating client cannot take a worker down.
#[test]
fn malformed_frames_do_not_kill_the_server() {
    use std::io::Write;

    let engine = Arc::new(Engine::new(16));
    let server = start_server(Arc::clone(&engine), 2);
    let addr = server.local_addr();

    // Raw socket: send garbage JSON in a well-formed frame.
    let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
    let garbage = b"this is not json";
    let mut frame = (garbage.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(garbage);
    raw.write_all(&frame).expect("send garbage");
    // The server answers with a bad_request error on id 0.
    let mut reader = raw.try_clone().expect("clone");
    let payload = quclear_serve::protocol::read_frame(&mut reader, 1 << 20)
        .expect("read error response")
        .expect("a response frame");
    let response = quclear_serve::Response::decode(&payload).expect("decode");
    assert_eq!(response.body.unwrap_err().kind, "bad_request");

    // A well-behaved client on a fresh connection is unaffected.
    let mut client = Client::connect(addr).expect("connect");
    client.compile(&["ZZ"], &[0.3]).expect("compile");

    // An oversized length prefix ends only that connection.
    let mut huge = std::net::TcpStream::connect(addr).expect("connect huge");
    huge.write_all(&u32::MAX.to_be_bytes())
        .expect("send huge header");
    drop(huge);
    client.health().expect("server alive after oversized frame");

    server.stop();
}

/// The `metrics` endpoint answers with one coherent snapshot spanning both
/// layers: engine pipeline-stage histograms (fingerprint/extract/bind) and
/// serve-side per-kind request latencies, frame sizes, connection gauges —
/// and the whole thing renders as Prometheus text.
#[test]
fn metrics_endpoint_spans_engine_and_serve() {
    let engine = Arc::new(Engine::new(16));
    let server = start_server(Arc::clone(&engine), 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let axes = program_axes(400, 6);
    let refs: Vec<&str> = axes.iter().map(String::as_str).collect();
    client
        .compile(&refs, &angles_for(&axes, 0.1))
        .expect("first compile");
    client
        .compile(&refs, &angles_for(&axes, 0.2))
        .expect("second compile (cache hit)");
    // One deliberate failure, so the per-kind error counter has something
    // to show.
    let err = client.compile(&["ZZ"], &[0.1, 0.2]).unwrap_err();
    assert_eq!(err.remote().expect("remote error").kind, "angle_count");

    let snapshot = client.metrics().expect("metrics request");

    // Engine side: stage histograms with real counts.
    let stage = |name: &str| {
        snapshot
            .histogram(quclear_engine::ENGINE_STAGE_METRIC, Some(("stage", name)))
            .unwrap_or_else(|| panic!("stage `{name}` missing from snapshot"))
    };
    // Only the two successful compiles reach the engine (the angle-count
    // failure is rejected at the protocol layer, before fingerprinting).
    assert!(stage("fingerprint").count() >= 2);
    assert_eq!(stage("extract").count(), 1);
    assert_eq!(stage("bind").count(), 2);
    assert_eq!(
        snapshot.counter_value("quclear_engine_cache_hits_total", None),
        Some(engine.stats().hits)
    );

    // Serve side: per-kind latency, error counters, frame sizes, gauges.
    let compile_latency = snapshot
        .histogram(
            quclear_serve::SERVE_REQUEST_METRIC,
            Some(("kind", "compile")),
        )
        .expect("compile latency histogram");
    assert_eq!(compile_latency.count(), 3);
    assert_eq!(
        snapshot.counter_value(quclear_serve::SERVE_ERROR_METRIC, Some(("kind", "compile"))),
        Some(1)
    );
    let frames_in = snapshot
        .histogram(quclear_serve::SERVE_FRAME_METRIC, Some(("direction", "in")))
        .expect("inbound frame sizes");
    assert!(frames_in.count() >= 3);
    // This connection is inside the metrics request right now: active, and
    // (snapshot taken while handling) not idle-parked beyond 1.
    assert_eq!(
        snapshot.gauge_value("quclear_serve_connections_active", None),
        Some(1)
    );

    // The whole snapshot renders as Prometheus text with both families.
    let text = snapshot.to_prometheus_text();
    assert!(text.contains("# TYPE quclear_engine_stage_duration_ns histogram"));
    assert!(text.contains("quclear_serve_request_duration_ns_count{kind=\"compile\"} 3"));
    assert!(text.contains("quclear_serve_errors_total{kind=\"compile\"} 1"));

    server.stop();
}

/// `stats` folds per-kind latency digests in back-compatibly: kinds that
/// served requests appear with count/p50/p99, and the digest agrees with
/// the requests the connection actually made.
#[test]
fn stats_carry_request_latency_digests() {
    let engine = Arc::new(Engine::new(16));
    let server = start_server(Arc::clone(&engine), 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let axes = program_axes(500, 5);
    let refs: Vec<&str> = axes.iter().map(String::as_str).collect();
    for seed in [0.1, 0.2, 0.3] {
        client
            .compile(&refs, &angles_for(&axes, seed))
            .expect("compile");
    }
    client.health().expect("health");

    let stats = client.stats().expect("stats");
    let digest = |kind: &str| {
        stats
            .request_latencies
            .iter()
            .find(|d| d.kind == kind)
            .unwrap_or_else(|| panic!("no `{kind}` digest in {:?}", stats.request_latencies))
            .clone()
    };
    let compile = digest("compile");
    assert_eq!(compile.count, 3);
    assert!(compile.p50_ns <= compile.p99_ns);
    assert_eq!(digest("health").count, 1);
    // No failed or unknown requests were made on this connection.
    assert!(stats.request_latencies.iter().all(|d| d.kind != "unknown"));
    // A request's latency is recorded after it is answered, so the first
    // stats response cannot include itself...
    assert!(stats.request_latencies.iter().all(|d| d.kind != "stats"));

    // ...but a second stats call sees the first one counted.
    let again = client.stats().expect("stats again");
    let stats_digest = again
        .request_latencies
        .iter()
        .find(|d| d.kind == "stats")
        .expect("stats digest on the second call");
    assert_eq!(stats_digest.count, 1);

    server.stop();
}

#[test]
fn estimate_roundtrips_matches_engine_and_reports_grouping() {
    let engine = Arc::new(Engine::new(16));
    let server = start_server(Arc::clone(&engine), 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let axes = ["ZZII", "IXXI", "IIZZ", "XXII"];
    let angles = [0.3, -0.7, 0.2, 0.9];
    let observables = ["+ZZII", "-IZZI", "+XXII", "+ZIII", "+IIZZ"];
    let (expectations, groups, divisor) = client
        .estimate(&axes, &angles, &observables, 500, 42)
        .expect("estimate");
    assert_eq!(expectations.len(), observables.len());
    let covered: usize = groups.iter().map(Vec::len).sum();
    assert_eq!(covered, observables.len());
    assert!(divisor >= 1.0);
    assert!(expectations.iter().all(|e| e.abs() <= 1.0));

    // The wire answer is the engine's answer: estimation is deterministic in
    // (program, angles, observables, shots, seed).
    let program: Vec<PauliRotation> = axes
        .iter()
        .zip(angles)
        .map(|(axis, angle)| PauliRotation::parse(axis, angle).expect("axis"))
        .collect();
    let parsed: Vec<quclear_pauli::SignedPauli> = observables
        .iter()
        .map(|o| o.parse().expect("observable"))
        .collect();
    let local = engine
        .estimate_observables(&program, &parsed, 500, 42)
        .expect("local estimate");
    for (wire, local) in expectations.iter().zip(&local.expectations) {
        assert_eq!(wire.to_bits(), local.to_bits());
    }
    assert_eq!(groups, local.groups);

    // Zero shots is a structured, non-transient error.
    let err = client
        .estimate(&axes, &angles, &observables, 0, 42)
        .unwrap_err();
    assert_eq!(err.remote().expect("remote error").kind, "not_estimable");
    assert!(!client.is_broken());

    server.stop();
}

#[test]
fn estimate_respects_the_server_deadline() {
    let engine = Arc::new(Engine::new(16));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            request_deadline: Some(std::time::Duration::ZERO),
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral port");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let err = client
        .estimate(&["ZZII"], &[0.4], &["+ZZII"], 100, 1)
        .unwrap_err();
    assert_eq!(
        err.remote().expect("remote error").kind,
        "deadline_exceeded"
    );
    server.stop();
}

#[test]
fn panicking_diagonalization_answers_only_its_request() {
    let engine = Arc::new(Engine::new(16));
    let server = start_server(Arc::clone(&engine), 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Observables on the wrong register size panic inside the contained
    // plan-building region; the panic answers this request alone.
    let err = client
        .estimate(&["ZZII"], &[0.4], &["+ZZ"], 100, 1)
        .unwrap_err();
    assert_eq!(err.remote().expect("remote error").kind, "panicked");
    assert!(!client.is_broken());

    // The same connection, engine and template keep serving.
    let (expectations, _, _) = client
        .estimate(&["ZZII"], &[0.4], &["+ZZII"], 100, 1)
        .expect("estimate after panic");
    assert_eq!(expectations.len(), 1);
    client.health().expect("health after panic");

    server.stop();
}

//! Chaos suite: the server under deterministic fault injection.
//!
//! Every test arms a seeded [`FaultPlan`] (transport faults: read/write
//! stalls, torn frames, mid-response disconnects) and/or the engine's fault
//! seams (compile panics and delays), then asserts the overload-protection
//! acceptance properties:
//!
//! 1. **No worker death** — after any fault storm, a fresh client is still
//!    served (and a retrying client completes *through* the storm).
//! 2. **Typed outcomes** — every in-flight request terminates as exactly one
//!    of: success, `overloaded`, `deadline_exceeded`, a contained
//!    `panicked`, or a transport error. Nothing hangs, nothing is
//!    misattributed (a protocol error fails the test).
//! 3. **Gauges drain** — `queue_depth`, `connections_active` and
//!    `connections_idle` all return to zero once clients are gone and the
//!    server has stopped.
//! 4. **Bounded admission** — with a tiny queue and a slow engine, excess
//!    connections are shed with the retryable `overloaded` error, and the
//!    books balance: shed + connections that reached a worker = accepted.
//!
//! Determinism: the fault schedules derive from plan seeds (see
//! `quclear_serve::faults`), so a failure replays from the seed in the
//! assertion message.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use quclear_engine::{Engine, ProgramFingerprint};
use quclear_pauli::PauliRotation;
use quclear_serve::{
    Client, ClientError, FaultPlan, RequestKind, RetryPolicy, Server, ServerConfig,
};

/// A deterministic pseudo-random program; `tag` selects the structure.
fn program_axes(tag: u64, rotations: usize) -> Vec<String> {
    let n = 10;
    let ops = ['X', 'Y', 'Z', 'I'];
    let mut state = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..rotations)
        .map(|_| {
            let mut axis: String = (0..n).map(|_| ops[(next() % 4) as usize]).collect();
            if !axis.bytes().any(|b| b != b'I') {
                axis.replace_range(0..1, "Z");
            }
            axis
        })
        .collect()
}

fn fingerprint_of(engine: &Engine, axes: &[String]) -> ProgramFingerprint {
    let rotations: Vec<PauliRotation> = axes
        .iter()
        .map(|axis| PauliRotation::parse(axis, 0.0).unwrap())
        .collect();
    ProgramFingerprint::of_program(&rotations, engine.config())
}

fn compile_request(axes: &[String]) -> RequestKind {
    RequestKind::Compile {
        program: axes.to_vec(),
        angles: (0..axes.len()).map(|i| 0.1 + 0.05 * i as f64).collect(),
    }
}

/// The closed set of ways a request under chaos may end. Anything outside
/// it — above all a protocol/desync error — panics the classifying thread
/// and fails the test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    Ok,
    Overloaded,
    DeadlineExceeded,
    Panicked,
    Transport,
}

fn classify(result: &Result<quclear_serve::ResponseBody, ClientError>) -> Outcome {
    match result {
        Ok(_) => Outcome::Ok,
        Err(ClientError::Io(_)) => Outcome::Transport,
        Err(ClientError::Remote(e)) if e.kind == "overloaded" => Outcome::Overloaded,
        Err(ClientError::Remote(e)) if e.kind == "deadline_exceeded" => Outcome::DeadlineExceeded,
        Err(ClientError::Remote(e)) if e.kind == "panicked" => Outcome::Panicked,
        Err(other) => panic!("request ended with an untyped outcome: {other}"),
    }
}

/// A retry policy generous enough to outlast any seeded storm in here.
fn storm_proof_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 32,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        total_budget: Duration::from_secs(30),
        jitter: 0.5,
        seed,
    }
}

/// The headline storm: 13 concurrent clients against a server injecting
/// read/write stalls, torn frames and disconnects, with the engine armed to
/// panic on one structure and crawl on another. Every request must end
/// typed, the server must outlive the storm, and every gauge must drain.
#[test]
fn fault_storm_leaves_the_server_serving_and_every_outcome_typed() {
    const CLIENTS: u64 = 12;
    const REQUESTS: u64 = 8;
    let engine = Arc::new(Engine::new(256));
    // Engine-level faults, armed through the existing seams: structure 7
    // panics inside the cache lookup, structure 2 compiles slowly (which
    // keeps single-flight waiters in play while the transport misbehaves).
    engine.inject_lookup_panic(Some(fingerprint_of(&engine, &program_axes(7, 12))));
    engine.inject_compile_delay(Some((
        fingerprint_of(&engine, &program_axes(2, 12)),
        Duration::from_millis(40),
    )));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: 6,
            faults: Some(FaultPlan {
                seed: 0xC4A05,
                read_delay_probability: 0.2,
                read_delay: Duration::from_millis(2),
                write_delay_probability: 0.2,
                write_delay: Duration::from_millis(2),
                torn_frame_probability: 0.12,
                disconnect_probability: 0.12,
            }),
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral port");
    let addr = server.local_addr();

    // Index order matches `Outcome`'s variants.
    let counts: Arc<[AtomicU64; 5]> = Arc::new(Default::default());
    let mut threads = Vec::new();
    for i in 0..CLIENTS {
        let counts = Arc::clone(&counts);
        threads.push(std::thread::spawn(move || {
            let axes = program_axes(i % 3, 12);
            let mut client = Client::connect(addr).expect("connecting through the storm");
            for r in 0..REQUESTS {
                if client.is_broken() && client.reconnect().is_err() {
                    counts[Outcome::Transport as usize].fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let result = if r % 2 == 0 {
                    client.request(compile_request(&axes))
                } else {
                    client.request(RequestKind::Health)
                };
                counts[classify(&result) as usize].fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // A 13th client hammers the doomed structure: its compiles must come
    // back as *contained* panics (or die on the faulty transport) — never
    // hang, never kill a worker.
    {
        let counts = Arc::clone(&counts);
        threads.push(std::thread::spawn(move || {
            let axes = program_axes(7, 12);
            let mut client = Client::connect(addr).expect("connecting through the storm");
            for _ in 0..10 {
                if client.is_broken() && client.reconnect().is_err() {
                    counts[Outcome::Transport as usize].fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let result = client.request(compile_request(&axes));
                let outcome = classify(&result);
                assert!(
                    matches!(outcome, Outcome::Panicked | Outcome::Transport),
                    "a doomed compile must end contained or dead, got {outcome:?}"
                );
                counts[outcome as usize].fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for thread in threads {
        thread.join().expect("no chaos client may die untyped");
    }

    let total: u64 = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(total, CLIENTS * REQUESTS + 10, "every request ended typed");
    assert!(
        counts[Outcome::Ok as usize].load(Ordering::Relaxed) > 0,
        "a storm this size must still serve successes"
    );
    assert!(
        counts[Outcome::Panicked as usize].load(Ordering::Relaxed) > 0,
        "the doomed structure must surface contained panics"
    );

    // No worker death: a retrying client completes *after* the storm, on
    // the same still-faulty server.
    let mut survivor = Client::connect(addr).expect("the server must still accept");
    survivor.set_retry_policy(Some(storm_proof_policy(42)));
    survivor
        .request(compile_request(&program_axes(1, 12)))
        .expect("a retrying client completes against the still-faulty server");
    assert!(survivor.request(RequestKind::Health).is_ok());
    drop(survivor);

    // Engine invariants survived the storm.
    let stats = engine.stats();
    assert!(stats.coalesced_waits <= stats.hits + stats.misses);

    server.stop();
    let snapshot = engine.metrics_snapshot();
    for gauge in [
        "quclear_serve_queue_depth",
        "quclear_serve_connections_active",
        "quclear_serve_connections_idle",
    ] {
        assert_eq!(
            snapshot.gauge_value(gauge, None),
            Some(0),
            "{gauge} must drain to zero after stop"
        );
    }
}

/// Retry completion: with a generous policy, every idempotent request
/// completes despite torn frames, disconnects and stalls — the storm costs
/// retries and reconnects, never results.
#[test]
fn retry_policy_completes_every_idempotent_request_despite_faults() {
    const CLIENTS: u64 = 12;
    const REQUESTS: u64 = 4;
    let engine = Arc::new(Engine::new(256));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: 6,
            faults: Some(FaultPlan {
                seed: 0xBEE5,
                read_delay_probability: 0.2,
                read_delay: Duration::from_millis(2),
                write_delay_probability: 0.2,
                write_delay: Duration::from_millis(2),
                torn_frame_probability: 0.1,
                disconnect_probability: 0.1,
            }),
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral port");
    let addr = server.local_addr();

    let total_retries = Arc::new(AtomicU64::new(0));
    let total_reconnects = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    for i in 0..CLIENTS {
        let (retries, reconnects) = (Arc::clone(&total_retries), Arc::clone(&total_reconnects));
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connecting");
            client.set_retry_policy(Some(storm_proof_policy(i)));
            let axes = program_axes(i % 4, 10);
            for r in 0..REQUESTS {
                let result = if r % 2 == 0 {
                    client.request(compile_request(&axes))
                } else {
                    client.request(RequestKind::Stats)
                };
                result.unwrap_or_else(|e| {
                    panic!("client {i} request {r} must complete under retry, got {e}")
                });
            }
            retries.fetch_add(client.retries(), Ordering::Relaxed);
            reconnects.fetch_add(client.reconnects(), Ordering::Relaxed);
        }));
    }
    for thread in threads {
        thread.join().expect("no retrying client may fail");
    }
    // The storm was real: at this fault rate, 48 completed requests without
    // a single retry would mean the policy never engaged.
    assert!(
        total_retries.load(Ordering::Relaxed) + total_reconnects.load(Ordering::Relaxed) > 0,
        "a seeded storm must have cost at least one retry or reconnect"
    );
    server.stop();
}

/// Bounded admission: one worker owning a slow compile, a queue of one —
/// every further connection is shed with the typed `overloaded` error, and
/// the books balance exactly: accepted = shed + reached-a-worker.
#[test]
fn overload_sheds_excess_connections_and_the_books_balance() {
    let engine = Arc::new(Engine::new(64));
    let axes = program_axes(11, 16);
    engine.inject_compile_delay(Some((
        fingerprint_of(&engine, &axes),
        Duration::from_millis(400),
    )));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: 1,
            max_queued_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral port");
    let addr = server.local_addr();

    // Client A occupies the only worker with the slow compile.
    let slow_axes = axes.clone();
    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connecting the slow client");
        client.request(compile_request(&slow_axes))
    });
    std::thread::sleep(Duration::from_millis(100)); // worker now owns A

    // Client B lands in the (size-1) queue and waits its turn.
    let mut queued = Client::connect(addr).expect("connecting the queued client");
    std::thread::sleep(Duration::from_millis(50));

    // Four more connections find the queue full and are shed.
    let mut shed_clients = Vec::new();
    for _ in 0..4 {
        shed_clients.push(Client::connect(addr).expect("shed connections still accept"));
        std::thread::sleep(Duration::from_millis(30));
    }
    for (i, client) in shed_clients.iter_mut().enumerate() {
        let error = client
            .request(RequestKind::Health)
            .expect_err("a shed connection cannot be served");
        assert!(
            error.is_transient(),
            "shed client {i} must see a retryable outcome, got {error}"
        );
        if let Some(remote) = error.remote() {
            assert_eq!(remote.kind, "overloaded");
        }
        assert!(client.is_broken(), "a shed connection is done");
    }

    // The slow compile itself completed: shedding protected it, not broke it.
    assert!(slow.join().expect("slow client thread").is_ok());

    // With the worker free again, the queued client is served normally.
    let stats = match queued
        .request(RequestKind::Stats)
        .expect("the queued client is served once the worker frees")
    {
        quclear_serve::ResponseBody::Stats(stats) => stats,
        other => panic!("unexpected body {other:?}"),
    };
    assert_eq!(stats.shed_connections, 4);
    assert_eq!(stats.connections_accepted, 6);
    // accepted = shed + connections that reached a worker (A and B).
    assert_eq!(
        stats.connections_accepted,
        stats.shed_connections + 2,
        "admission accounting must balance"
    );

    drop(queued);
    drop(shed_clients);
    server.stop();
    assert_eq!(
        engine
            .metrics_snapshot()
            .gauge_value("quclear_serve_queue_depth", None),
        Some(0)
    );
}

/// Request deadlines: a compile slower than the budget is answered with the
/// typed, counted `deadline_exceeded` — and because the extraction it paid
/// for still landed in the cache, the retry is a fast hit.
#[test]
fn deadline_exceeded_is_typed_counted_and_retry_hits_the_warmed_cache() {
    let engine = Arc::new(Engine::new(64));
    let axes = program_axes(5, 16);
    engine.inject_compile_delay(Some((
        fingerprint_of(&engine, &axes),
        Duration::from_millis(400),
    )));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            request_deadline: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral port");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connecting");

    let error = client
        .request(compile_request(&axes))
        .expect_err("a 400ms compile cannot fit a 100ms budget");
    let remote = error.remote().expect("a structured server error");
    assert_eq!(remote.kind, "deadline_exceeded");
    assert!(error.is_transient(), "deadline misses invite a retry");

    // The budget bounded the *answer*, not the extraction: the template the
    // leader compiled landed in the cache, so the retry is a hit — served
    // even under the same tight deadline.
    engine.inject_compile_delay(None);
    let started = Instant::now();
    client
        .request(compile_request(&axes))
        .expect("the retry rides the warmed cache");
    assert!(
        started.elapsed() < Duration::from_millis(400),
        "the retry must not pay for a second extraction"
    );

    let stats = engine.stats();
    assert_eq!(stats.misses, 1, "one extraction, despite the deadline miss");
    assert!(stats.hits >= 1, "the retry was a cache hit");
    assert_eq!(
        engine
            .metrics_snapshot()
            .counter_value("quclear_serve_deadline_exceeded_total", None),
        Some(1)
    );
    drop(client);
    server.stop();
}

/// Shutdown with a backed-up queue: queued connections that never reach a
/// worker are drained at teardown and the `queue_depth` gauge lands on
/// zero — not frozen at the backlog size (the restart-dashboard lie).
#[test]
fn stopping_with_a_backed_up_queue_drains_the_depth_gauge() {
    let engine = Arc::new(Engine::new(64));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: 1,
            max_queued_connections: 8,
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral port");
    let addr = server.local_addr();

    // One connection owns the worker; five more back up in the queue.
    let owner = Client::connect(addr).expect("connecting the owning client");
    std::thread::sleep(Duration::from_millis(100));
    let queued: Vec<Client> = (0..5)
        .map(|_| Client::connect(addr).expect("queued connections still accept"))
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        engine
            .metrics_snapshot()
            .gauge_value("quclear_serve_queue_depth", None),
        Some(5),
        "the backlog is visible while the worker is occupied"
    );

    // Stop with the queue still full: must neither hang nor leak depth.
    server.stop();
    assert_eq!(
        engine
            .metrics_snapshot()
            .gauge_value("quclear_serve_queue_depth", None),
        Some(0),
        "teardown must drain every queued connection from the gauge"
    );
    drop(owner);
    drop(queued);
}

//! Schedule-exhaustive model of the server's stop/drain protocol.
//!
//! Built only with `--features sched-model`. The server's admission and
//! teardown bookkeeping (`accept_loop` + `Server::join_threads` in
//! `src/server.rs`) is re-expressed here over shim sync types — real TCP
//! listeners cannot run under the deterministic scheduler, but the protocol
//! is pure bookkeeping: a shutdown flag, a queue, and the `queue_depth`
//! gauge that must end at zero. Run with:
//!
//! ```text
//! cargo test -p quclear-serve --features sched-model --test sched_models
//! ```

use std::collections::VecDeque;

use quclear_sched::sync::atomic::{AtomicBool, Ordering};
use quclear_sched::sync::{Arc, Mutex};
use quclear_sched::{thread, Explorer};
use quclear_telemetry::Gauge;

/// The protocol state shared by the accept loop, a worker, and teardown.
struct Drain {
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<u32>>,
    depth: Gauge,
}

impl Drain {
    fn new() -> Self {
        Drain {
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            depth: Gauge::new(),
        }
    }

    /// `accept_loop`'s admission bookkeeping: check shutdown, count the
    /// connection into the gauge, then queue it (inc-before-send, exactly
    /// like `src/server.rs`).
    fn accept(&self, conn: u32) {
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        self.depth.inc();
        self.queue.lock().unwrap().push_back(conn);
    }

    /// A worker taking (at most) one queued connection before exiting.
    fn work_one(&self) {
        let taken = self.queue.lock().unwrap().pop_front();
        if taken.is_some() {
            self.depth.dec();
        }
    }

    /// `join_threads`' teardown: runs after accept + workers exited; drains
    /// whatever never reached a worker. Returns the number drained.
    fn drain_queue(&self) -> usize {
        let drained = {
            let mut queue = self.queue.lock().unwrap();
            std::iter::from_fn(|| queue.pop_front()).count()
        };
        for _ in 0..drained {
            self.depth.dec();
        }
        drained
    }
}

/// The shipped protocol: connections counted into `queue_depth` at admission
/// are decremented exactly once — by the worker that took them or by the
/// teardown drain — so the gauge reads zero after `Server::stop` in every
/// interleaving of accepts, worker progress, and the shutdown flag.
#[test]
fn stop_drain_always_zeroes_queue_depth() {
    let report = Explorer::dfs().check(|| {
        let d = Arc::new(Drain::new());
        let (d1, d2) = (Arc::clone(&d), Arc::clone(&d));
        let accept = thread::spawn(move || {
            d1.accept(1);
            d1.accept(2);
        });
        let worker = thread::spawn(move || d2.work_one());
        // Server::stop — shutdown flag first, then join, then drain.
        d.shutdown.store(true, Ordering::Release);
        accept.join().unwrap();
        worker.join().unwrap();
        d.drain_queue();
        assert_eq!(
            d.depth.get(),
            0,
            "every queued connection is drained (workers or teardown)"
        );
        assert!(d.queue.lock().unwrap().is_empty());
    });
    report.assert_passed();
    assert!(report.exhausted, "bounded DFS space fully enumerated");
    eprintln!(
        "stop/drain protocol model: {} interleavings explored",
        report.schedules
    );
}

/// Pinned regression for the PR7 teardown bug: dropping queued connections
/// with the channel *without* decrementing `queue_depth` leaves the gauge
/// nonzero forever after a restart — a lying dashboard. The buggy teardown
/// is re-expressed locally; the checker must find an interleaving where
/// undrained admissions outlive the workers, and it must replay.
#[test]
fn drain_without_decrement_is_detected() {
    fn model() {
        let d = Arc::new(Drain::new());
        let (d1, d2) = (Arc::clone(&d), Arc::clone(&d));
        let accept = thread::spawn(move || {
            d1.accept(1);
            d1.accept(2);
        });
        let worker = thread::spawn(move || d2.work_one());
        d.shutdown.store(true, Ordering::Release);
        accept.join().unwrap();
        worker.join().unwrap();
        // The pre-fix teardown: the queue is dropped, the gauge is not.
        d.queue.lock().unwrap().clear();
        assert_eq!(d.depth.get(), 0, "queue_depth must drain to zero");
    }
    let report = Explorer::dfs().check(model);
    let failure = report.assert_failed().clone();
    assert!(failure.message.contains("drain to zero"));
    let replay = Explorer::dfs().replay_with(&failure.trace, model);
    let replayed = replay.failure.expect("replay must reproduce the violation");
    assert_eq!(replayed.message, failure.message);
}

//! A small blocking client for the serve protocol.
//!
//! One [`Client`] owns one TCP connection and issues one request at a time
//! (the protocol supports pipelining; this client keeps it simple). It is
//! the reference consumer of the wire format — the integration tests and
//! the `serve_demo` example drive the server exclusively through it.
//!
//! With a [`RetryPolicy`] attached ([`Client::set_retry_policy`]), the
//! client also *recovers*: transient failures — a shed `overloaded`
//! response, a `deadline_exceeded` budget, a dead or torn transport — are
//! retried with seeded exponential backoff and jitter, reconnecting
//! automatically when the connection broke, and only ever for idempotent
//! request kinds ([`RequestKind::is_idempotent`]).

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{
    read_frame, write_frame, CompiledSummary, Request, RequestKind, Response, ResponseBody,
    StatsSummary, WireError, MAX_FRAME_BYTES,
};

/// Failures a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, or unexpected EOF).
    Io(io::Error),
    /// The server answered, but the frame did not decode or did not match
    /// the request.
    Protocol(WireError),
    /// The server answered with a structured error (e.g. a parse failure or
    /// a contained compilation panic).
    Remote(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The structured server error, when this is a [`ClientError::Remote`].
    #[must_use]
    pub fn remote(&self) -> Option<&WireError> {
        match self {
            ClientError::Remote(e) => Some(e),
            _ => None,
        }
    }

    /// Whether this failure is *transient*: retrying the same request later
    /// could plausibly succeed. Transport failures always qualify (the
    /// socket died, timed out, or the server closed mid-exchange);
    /// server-reported errors qualify only for the two overload outcomes —
    /// `overloaded` (shed at admission) and `deadline_exceeded` (budget ran
    /// out, but the compile it detached from is still warming the cache).
    /// Everything else — parse errors, bad programs, contained panics,
    /// protocol violations — is deterministic: retrying replays the failure.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Remote(e) => {
                matches!(e.kind.as_str(), "overloaded" | "deadline_exceeded")
            }
            ClientError::Protocol(_) => false,
        }
    }
}

/// Retry discipline for a [`Client`]: capped exponential backoff with
/// seeded jitter, bounded by both an attempt count and a wall-clock budget.
///
/// A policy only ever re-sends requests that are **idempotent**
/// ([`RequestKind::is_idempotent`]) and failed **transiently**
/// ([`ClientError::is_transient`]); everything else fails fast exactly as
/// without a policy. The jitter stream is seeded, so a test (or an incident
/// replay) with the same seed sleeps the same schedule.
///
/// # Examples
///
/// ```no_run
/// use quclear_serve::{Client, RetryPolicy};
///
/// let mut client = Client::connect("127.0.0.1:7878")?;
/// client.set_retry_policy(Some(RetryPolicy::default()));
/// // Shed connections, deadline misses and dead sockets now retry with
/// // backoff + automatic reconnection instead of surfacing immediately.
/// let compiled = client.compile(&["ZZII", "IXXI"], &[0.3, 0.7])?;
/// # let _ = compiled;
/// # Ok::<(), quclear_serve::ClientError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total tries, including the first (clamped to ≥ 1). `4` means one
    /// initial attempt plus up to three retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub initial_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock budget across all attempts and sleeps: a retry whose
    /// backoff would overrun this budget is abandoned and the last error
    /// surfaces.
    pub total_budget: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled uniformly from
    /// `[1 − jitter, 1] × backoff`, decorrelating clients that were shed
    /// together so they do not stampede back together.
    pub jitter: f64,
    /// Seed of the jitter stream (deterministic per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            total_budget: Duration::from_secs(5),
            jitter: 0.5,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based), jittered.
    fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let doubled = self
            .initial_backoff
            .saturating_mul(1u32.checked_shl(retry.min(16)).unwrap_or(u32::MAX));
        let capped = doubled.min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter <= 0.0 {
            return capped;
        }
        capped.mul_f64(1.0 - jitter * rng.gen_range(0.0..1.0))
    }
}

/// A blocking connection to a `quclear-serve` server.
///
/// # Examples
///
/// ```no_run
/// use quclear_serve::Client;
///
/// let mut client = Client::connect("127.0.0.1:7878")?;
/// let compiled = client.compile(&["ZZII", "IXXI"], &[0.3, 0.7])?;
/// println!("{} CNOTs", compiled.cnot_count);
/// # Ok::<(), quclear_serve::ClientError>(())
/// ```
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Where the connection was dialed, kept so [`Client::reconnect`] can
    /// re-dial the same server after a transport failure.
    server_addr: SocketAddr,
    next_id: u64,
    /// Set after a transport or framing failure mid-request. Once the
    /// request/response rhythm is broken (e.g. a timed-out read whose late
    /// response is still queued in the socket), every later frame would be
    /// misattributed — so the connection refuses further use instead of
    /// silently desynchronizing.
    broken: bool,
    /// Remembered so a reconnected stream inherits the same timeout.
    read_timeout: Option<Duration>,
    policy: Option<RetryPolicy>,
    rng: StdRng,
    retries: u64,
    reconnects: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let server_addr = stream.peer_addr()?;
        Ok(Client {
            stream,
            server_addr,
            next_id: 1,
            broken: false,
            read_timeout: None,
            policy: None,
            rng: StdRng::seed_from_u64(RetryPolicy::default().seed),
            retries: 0,
            reconnects: 0,
        })
    }

    /// Sets a read timeout for responses (`None` blocks indefinitely, the
    /// default). Useful when probing a server that might be wedged — but
    /// note that a request which *does* time out breaks the connection's
    /// request/response pairing, so the client marks itself
    /// [broken](Client::is_broken) until the next [`Client::reconnect`]
    /// (automatic under a [`RetryPolicy`]).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Attaches (or removes) a retry policy. With a policy, idempotent
    /// requests that fail transiently are retried with seeded backoff and
    /// the connection is re-dialed when broken; without one, every failure
    /// surfaces immediately. Setting a policy reseeds the jitter stream
    /// from [`RetryPolicy::seed`].
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        if let Some(policy) = &policy {
            self.rng = StdRng::seed_from_u64(policy.seed);
        }
        self.policy = policy;
    }

    /// Whether a transport/framing failure has desynchronized this
    /// connection. A broken client fails every request until
    /// [`Client::reconnect`] replaces the socket.
    #[must_use]
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// How many request attempts were re-sent by the retry policy.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// How many times the client re-dialed the server after a broken
    /// connection.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Replaces a broken (or merely stale) connection with a fresh dial to
    /// the same server, re-applying the configured read timeout and
    /// clearing the [broken](Client::is_broken) flag. Called automatically
    /// by the retry loop; also usable directly.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; the client stays broken when the
    /// re-dial fails.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.server_addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.stream = stream;
        self.broken = false;
        self.reconnects += 1;
        Ok(())
    }

    /// Sends one request and waits for its response body.
    ///
    /// Without a [`RetryPolicy`] this is a single attempt. With one
    /// ([`Client::set_retry_policy`]), idempotent requests that fail
    /// transiently — shed `overloaded`, `deadline_exceeded`, transport
    /// death — are retried with seeded exponential backoff, re-dialing the
    /// server first whenever the connection broke, until the policy's
    /// attempt count or wall-clock budget runs out.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server reports a failure; transport
    /// and framing failures otherwise — those mark the client
    /// [broken](Client::is_broken), because a half-completed exchange
    /// leaves response frames unaccounted for. Under a policy, the error
    /// returned is the *last* attempt's.
    pub fn request(&mut self, kind: RequestKind) -> Result<ResponseBody, ClientError> {
        let Some(policy) = self.policy.clone() else {
            return self.request_once(kind);
        };
        if !kind.is_idempotent() {
            return self.request_once(kind);
        }
        let started = Instant::now();
        let max_attempts = policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            // Re-dial before attempting on a broken connection; a failed
            // re-dial is itself a transient failure worth backing off on.
            let outcome = if self.broken {
                self.reconnect()
                    .and_then(|()| self.request_once(kind.clone()))
            } else {
                self.request_once(kind.clone())
            };
            let error = match outcome {
                Ok(body) => return Ok(body),
                Err(e) => e,
            };
            attempt += 1;
            if attempt >= max_attempts || !error.is_transient() {
                return Err(error);
            }
            let backoff = policy.backoff(attempt - 1, &mut self.rng);
            if started.elapsed() + backoff > policy.total_budget {
                return Err(error);
            }
            std::thread::sleep(backoff);
            self.retries += 1;
        }
    }

    /// One attempt of [`Client::request`], with no retry.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn request_once(&mut self, kind: RequestKind) -> Result<ResponseBody, ClientError> {
        if self.broken {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection is desynchronized by an earlier transport failure; reconnect",
            )));
        }
        let id = self.next_id;
        self.next_id += 1;
        match self.exchange(id, kind) {
            Ok(body) => Ok(body),
            // A server-reported failure is a complete, well-paired exchange —
            // except a shed: the server writes the `overloaded` frame and
            // immediately closes, so this connection is done.
            Err(ClientError::Remote(e)) => {
                if e.kind == "overloaded" {
                    self.broken = true;
                }
                Err(ClientError::Remote(e))
            }
            // Anything else left the stream in an unknown position.
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }

    fn exchange(&mut self, id: u64, kind: RequestKind) -> Result<ResponseBody, ClientError> {
        let request = Request { id, kind };
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream, MAX_FRAME_BYTES)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))
        })?;
        let response = Response::decode(&payload).map_err(ClientError::Protocol)?;
        if response.id != id && response.id != 0 {
            return Err(ClientError::Protocol(WireError::new(
                "bad_response",
                format!("response id {} does not match request id {id}", response.id),
            )));
        }
        response.body.map_err(ClientError::Remote)
    }

    /// Compiles a rotation program (`axes` as signed Pauli strings, one
    /// angle per axis) on the server.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn compile(
        &mut self,
        axes: &[&str],
        angles: &[f64],
    ) -> Result<CompiledSummary, ClientError> {
        let body = self.request(RequestKind::Compile {
            program: axes.iter().map(|s| (*s).to_string()).collect(),
            angles: angles.to_vec(),
        })?;
        expect_compiled(body)
    }

    /// Compiles the program's structure once, binding every angle set.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; per-set failures come back in the vector.
    #[allow(clippy::type_complexity)]
    pub fn sweep(
        &mut self,
        axes: &[&str],
        angle_sets: &[Vec<f64>],
    ) -> Result<Vec<Result<CompiledSummary, WireError>>, ClientError> {
        let body = self.request(RequestKind::Sweep {
            program: axes.iter().map(|s| (*s).to_string()).collect(),
            angle_sets: angle_sets.to_vec(),
        })?;
        match body {
            ResponseBody::Sweep(results) => Ok(results),
            other => Err(unexpected(&other)),
        }
    }

    /// Compiles OpenQASM 2.0 text on the server.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn compile_qasm(&mut self, qasm: &str) -> Result<CompiledSummary, ClientError> {
        let body = self.request(RequestKind::CompileQasm {
            qasm: qasm.to_string(),
        })?;
        expect_compiled(body)
    }

    /// Compiles QASM text with its rotation angles overridden.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn bind_qasm(
        &mut self,
        qasm: &str,
        angles: &[f64],
    ) -> Result<CompiledSummary, ClientError> {
        let body = self.request(RequestKind::BindQasm {
            qasm: qasm.to_string(),
            angles: angles.to_vec(),
        })?;
        expect_compiled(body)
    }

    /// CA-Pre on the server: rewrites `observables` through `axes`'s
    /// extracted Clifford, returning the rewritten strings and their greedy
    /// commuting groups.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    #[allow(clippy::type_complexity)]
    pub fn absorb(
        &mut self,
        axes: &[&str],
        observables: &[&str],
    ) -> Result<(Vec<String>, Vec<Vec<usize>>), ClientError> {
        let body = self.request(RequestKind::Absorb {
            program: axes.iter().map(|s| (*s).to_string()).collect(),
            observables: observables.iter().map(|s| (*s).to_string()).collect(),
        })?;
        match body {
            ResponseBody::Absorbed {
                observables,
                groups,
            } => Ok((observables, groups)),
            other => Err(unexpected(&other)),
        }
    }

    /// Sampled simultaneous measurement on the server: estimates every
    /// observable of the bound program from one seeded shot batch per
    /// commuting group, returning `(expectations, groups,
    /// shot_budget_divisor)`. Deterministic in its arguments, so retries are
    /// safe.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    #[allow(clippy::type_complexity)]
    pub fn estimate(
        &mut self,
        axes: &[&str],
        angles: &[f64],
        observables: &[&str],
        shots: u64,
        seed: u64,
    ) -> Result<(Vec<f64>, Vec<Vec<usize>>, f64), ClientError> {
        let body = self.request(RequestKind::Estimate {
            program: axes.iter().map(|s| (*s).to_string()).collect(),
            angles: angles.to_vec(),
            observables: observables.iter().map(|s| (*s).to_string()).collect(),
            shots,
            seed,
        })?;
        match body {
            ResponseBody::Estimated {
                expectations,
                groups,
                shot_budget_divisor,
            } => Ok((expectations, groups, shot_budget_divisor)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the engine + server counters.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn stats(&mut self) -> Result<StatsSummary, ClientError> {
        match self.request(RequestKind::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the full telemetry snapshot — every engine + serve counter,
    /// gauge and latency histogram. Render it with
    /// [`quclear_telemetry::MetricsSnapshot::to_prometheus_text`] to feed a
    /// Prometheus scrape, or query it directly.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> Result<quclear_telemetry::MetricsSnapshot, ClientError> {
        match self.request(RequestKind::Metrics)? {
            ResponseBody::Metrics(snapshot) => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe; returns the server's uptime in milliseconds.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn health(&mut self) -> Result<u64, ClientError> {
        match self.request(RequestKind::Health)? {
            ResponseBody::Health { uptime_ms } => Ok(uptime_ms),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down (requires
    /// [`crate::ServerConfig::allow_remote_shutdown`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] with kind `"forbidden"` when the server does
    /// not allow remote shutdown.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(RequestKind::Shutdown)? {
            ResponseBody::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn expect_compiled(body: ResponseBody) -> Result<CompiledSummary, ClientError> {
    match body {
        ResponseBody::Compiled(summary) => Ok(summary),
        other => Err(unexpected(&other)),
    }
}

fn unexpected(body: &ResponseBody) -> ClientError {
    ClientError::Protocol(WireError::new(
        "bad_response",
        format!("unexpected response body {body:?}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classifies_overload_outcomes_only() {
        let io = ClientError::Io(io::Error::new(io::ErrorKind::TimedOut, "slow"));
        assert!(io.is_transient());
        for kind in ["overloaded", "deadline_exceeded"] {
            assert!(ClientError::Remote(WireError::new(kind, "busy")).is_transient());
        }
        for kind in ["bad_program", "panicked", "qasm_parse", "forbidden"] {
            assert!(
                !ClientError::Remote(WireError::new(kind, "no")).is_transient(),
                "{kind} must not be retried"
            );
        }
        assert!(!ClientError::Protocol(WireError::new("bad_response", "?")).is_transient());
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_bounded() {
        let policy = RetryPolicy::default();
        let schedule = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8)
                .map(|retry| policy.backoff(retry, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(schedule(policy.seed), schedule(policy.seed));
        assert_ne!(schedule(1), schedule(2));
        let mut rng = StdRng::seed_from_u64(9);
        for retry in 0..40 {
            let sleep = policy.backoff(retry, &mut rng);
            assert!(sleep <= policy.max_backoff);
            // Jitter only ever shortens: floor is (1 - jitter) × capped.
            let capped = policy
                .initial_backoff
                .saturating_mul(1u32.checked_shl(retry.min(16)).unwrap_or(u32::MAX))
                .min(policy.max_backoff);
            assert!(sleep >= capped.mul_f64(1.0 - policy.jitter));
        }
    }

    #[test]
    fn zero_jitter_backoff_doubles_then_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(policy.backoff(0, &mut rng), Duration::from_millis(10));
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(20));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(40));
        assert_eq!(policy.backoff(10, &mut rng), policy.max_backoff);
        // The shift saturates instead of overflowing for absurd counts.
        assert_eq!(policy.backoff(u32::MAX, &mut rng), policy.max_backoff);
    }
}

//! A small blocking client for the serve protocol.
//!
//! One [`Client`] owns one TCP connection and issues one request at a time
//! (the protocol supports pipelining; this client keeps it simple). It is
//! the reference consumer of the wire format — the integration tests and
//! the `serve_demo` example drive the server exclusively through it.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, CompiledSummary, Request, RequestKind, Response, ResponseBody,
    StatsSummary, WireError, MAX_FRAME_BYTES,
};

/// Failures a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, or unexpected EOF).
    Io(io::Error),
    /// The server answered, but the frame did not decode or did not match
    /// the request.
    Protocol(WireError),
    /// The server answered with a structured error (e.g. a parse failure or
    /// a contained compilation panic).
    Remote(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The structured server error, when this is a [`ClientError::Remote`].
    #[must_use]
    pub fn remote(&self) -> Option<&WireError> {
        match self {
            ClientError::Remote(e) => Some(e),
            _ => None,
        }
    }
}

/// A blocking connection to a `quclear-serve` server.
///
/// # Examples
///
/// ```no_run
/// use quclear_serve::Client;
///
/// let mut client = Client::connect("127.0.0.1:7878")?;
/// let compiled = client.compile(&["ZZII", "IXXI"], &[0.3, 0.7])?;
/// println!("{} CNOTs", compiled.cnot_count);
/// # Ok::<(), quclear_serve::ClientError>(())
/// ```
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    /// Set after a transport or framing failure mid-request. Once the
    /// request/response rhythm is broken (e.g. a timed-out read whose late
    /// response is still queued in the socket), every later frame would be
    /// misattributed — so the connection refuses further use instead of
    /// silently desynchronizing.
    broken: bool,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            broken: false,
        })
    }

    /// Sets a read timeout for responses (`None` blocks indefinitely, the
    /// default). Useful when probing a server that might be wedged — but
    /// note that a request which *does* time out breaks the connection's
    /// request/response pairing, so the client marks itself
    /// [broken](Client::is_broken) and must be replaced by a fresh
    /// [`Client::connect`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Whether a transport/framing failure has desynchronized this
    /// connection. A broken client fails every request; reconnect instead.
    #[must_use]
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Sends one request and waits for its response body.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server reports a failure (the
    /// connection stays usable); transport and framing failures otherwise —
    /// those mark the client [broken](Client::is_broken), because a
    /// half-completed exchange leaves response frames unaccounted for.
    pub fn request(&mut self, kind: RequestKind) -> Result<ResponseBody, ClientError> {
        if self.broken {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection is desynchronized by an earlier transport failure; reconnect",
            )));
        }
        let id = self.next_id;
        self.next_id += 1;
        match self.exchange(id, kind) {
            Ok(body) => Ok(body),
            // A server-reported failure is a complete, well-paired exchange.
            Err(ClientError::Remote(e)) => Err(ClientError::Remote(e)),
            // Anything else left the stream in an unknown position.
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }

    fn exchange(&mut self, id: u64, kind: RequestKind) -> Result<ResponseBody, ClientError> {
        let request = Request { id, kind };
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream, MAX_FRAME_BYTES)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))
        })?;
        let response = Response::decode(&payload).map_err(ClientError::Protocol)?;
        if response.id != id && response.id != 0 {
            return Err(ClientError::Protocol(WireError::new(
                "bad_response",
                format!("response id {} does not match request id {id}", response.id),
            )));
        }
        response.body.map_err(ClientError::Remote)
    }

    /// Compiles a rotation program (`axes` as signed Pauli strings, one
    /// angle per axis) on the server.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn compile(
        &mut self,
        axes: &[&str],
        angles: &[f64],
    ) -> Result<CompiledSummary, ClientError> {
        let body = self.request(RequestKind::Compile {
            program: axes.iter().map(|s| (*s).to_string()).collect(),
            angles: angles.to_vec(),
        })?;
        expect_compiled(body)
    }

    /// Compiles the program's structure once, binding every angle set.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; per-set failures come back in the vector.
    #[allow(clippy::type_complexity)]
    pub fn sweep(
        &mut self,
        axes: &[&str],
        angle_sets: &[Vec<f64>],
    ) -> Result<Vec<Result<CompiledSummary, WireError>>, ClientError> {
        let body = self.request(RequestKind::Sweep {
            program: axes.iter().map(|s| (*s).to_string()).collect(),
            angle_sets: angle_sets.to_vec(),
        })?;
        match body {
            ResponseBody::Sweep(results) => Ok(results),
            other => Err(unexpected(&other)),
        }
    }

    /// Compiles OpenQASM 2.0 text on the server.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn compile_qasm(&mut self, qasm: &str) -> Result<CompiledSummary, ClientError> {
        let body = self.request(RequestKind::CompileQasm {
            qasm: qasm.to_string(),
        })?;
        expect_compiled(body)
    }

    /// Compiles QASM text with its rotation angles overridden.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn bind_qasm(
        &mut self,
        qasm: &str,
        angles: &[f64],
    ) -> Result<CompiledSummary, ClientError> {
        let body = self.request(RequestKind::BindQasm {
            qasm: qasm.to_string(),
            angles: angles.to_vec(),
        })?;
        expect_compiled(body)
    }

    /// CA-Pre on the server: rewrites `observables` through `axes`'s
    /// extracted Clifford, returning the rewritten strings and their greedy
    /// commuting groups.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    #[allow(clippy::type_complexity)]
    pub fn absorb(
        &mut self,
        axes: &[&str],
        observables: &[&str],
    ) -> Result<(Vec<String>, Vec<Vec<usize>>), ClientError> {
        let body = self.request(RequestKind::Absorb {
            program: axes.iter().map(|s| (*s).to_string()).collect(),
            observables: observables.iter().map(|s| (*s).to_string()).collect(),
        })?;
        match body {
            ResponseBody::Absorbed {
                observables,
                groups,
            } => Ok((observables, groups)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the engine + server counters.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn stats(&mut self) -> Result<StatsSummary, ClientError> {
        match self.request(RequestKind::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the full telemetry snapshot — every engine + serve counter,
    /// gauge and latency histogram. Render it with
    /// [`quclear_telemetry::MetricsSnapshot::to_prometheus_text`] to feed a
    /// Prometheus scrape, or query it directly.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> Result<quclear_telemetry::MetricsSnapshot, ClientError> {
        match self.request(RequestKind::Metrics)? {
            ResponseBody::Metrics(snapshot) => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe; returns the server's uptime in milliseconds.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn health(&mut self) -> Result<u64, ClientError> {
        match self.request(RequestKind::Health)? {
            ResponseBody::Health { uptime_ms } => Ok(uptime_ms),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down (requires
    /// [`crate::ServerConfig::allow_remote_shutdown`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] with kind `"forbidden"` when the server does
    /// not allow remote shutdown.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(RequestKind::Shutdown)? {
            ResponseBody::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn expect_compiled(body: ResponseBody) -> Result<CompiledSummary, ClientError> {
    match body {
        ResponseBody::Compiled(summary) => Ok(summary),
        other => Err(unexpected(&other)),
    }
}

fn unexpected(body: &ResponseBody) -> ClientError {
    ClientError::Protocol(WireError::new(
        "bad_response",
        format!("unexpected response body {body:?}"),
    ))
}

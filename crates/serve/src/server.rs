//! The long-running TCP server.
//!
//! # Architecture
//!
//! ```text
//!             ┌────────────┐   mpsc    ┌──────────────┐
//!  clients ──▶│ accept loop │──────────▶│ worker pool  │──▶ Arc<Engine>
//!             │ (1 thread)  │  streams  │ (N threads)  │    (shared cache,
//!             └────────────┘           └──────────────┘     single-flight)
//! ```
//!
//! One thread accepts connections and hands each accepted stream to a
//! fixed-size worker pool over a channel; a worker owns a connection for its
//! lifetime, answering frames one at a time (clients may keep connections
//! open and pipeline requests). All workers share one
//! [`quclear_engine::Engine`], so every client sees the same warm template
//! cache, and concurrent compiles of the same structure are coalesced by the
//! engine's single-flight table instead of racing.
//!
//! # Robustness
//!
//! The server is built to survive its own requests:
//!
//! * every request is handled inside `catch_unwind` — a panicking
//!   compilation (or a bug anywhere in request handling) produces an
//!   `"panicked"` error *response* on that connection, and the worker, its
//!   siblings, and the engine keep serving (the engine's caches recover
//!   from lock poisoning by construction);
//! * a malformed frame or a dead socket only ends that one connection;
//! * shutdown is graceful: in-flight requests finish and are answered,
//!   workers drain, and [`Server::join`] returns only when every thread has
//!   exited — no leaks, no aborted writes.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{Arc, Mutex, PoisonError};

use quclear_engine::{Deadline, Engine, EngineError};
use quclear_pauli::{PauliRotation, SignedPauli};
use quclear_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::protocol::{
    write_frame_with_limit, CompiledSummary, Request, RequestKind, RequestLatencySummary, Response,
    ResponseBody, StatsSummary, WireError, MAX_FRAME_BYTES,
};

/// Metric family: per-request-kind handling latency, in nanoseconds
/// (`kind` label = the wire name, e.g. `"compile"`).
pub const SERVE_REQUEST_METRIC: &str = "quclear_serve_request_duration_ns";

/// Metric family: frame payload sizes in bytes (`direction` label =
/// `"in"` for requests, `"out"` for responses).
pub const SERVE_FRAME_METRIC: &str = "quclear_serve_frame_bytes";

/// Metric family: error responses per request kind (`kind` label; decode
/// failures, which have no recoverable kind, count under `"unknown"`).
pub const SERVE_ERROR_METRIC: &str = "quclear_serve_errors_total";

/// Every wire name [`respond`] can attribute work to, including the
/// `"unknown"` bucket for frames whose kind never decoded.
const REQUEST_KIND_NAMES: [&str; 11] = [
    "compile",
    "sweep",
    "compile_qasm",
    "bind_qasm",
    "absorb",
    "estimate",
    "stats",
    "metrics",
    "health",
    "shutdown",
    "unknown",
];

/// Tuning knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each owns one connection at a time). Clamped to ≥ 1.
    pub workers: usize,
    /// Per-frame payload cap, applied to both reads and writes (an
    /// over-cap response degrades into a `response_too_large` error). Note
    /// the stock [`crate::Client`] reads with the [`MAX_FRAME_BYTES`]
    /// default, so raising this beyond that only helps custom clients.
    pub max_frame_bytes: usize,
    /// Whether a client `shutdown` request stops the server. Off by
    /// default: in shared deployments lifecycle belongs to the operator
    /// ([`Server::shutdown`]), not to any client with a socket.
    pub allow_remote_shutdown: bool,
    /// Close a connection after this long without a complete frame
    /// (`None` = never). Workers own their connection while serving it, so
    /// without a bound, `workers` idle clients would occupy the whole pool
    /// and newly accepted connections would queue forever. The same clock
    /// also bounds half-sent (stalled) frames.
    pub idle_timeout: Option<Duration>,
    /// Bounded admission: accepted connections waiting for a free worker
    /// beyond this count are **shed** — answered with a best-effort
    /// `overloaded` error frame and closed — instead of queueing without
    /// bound. Shedding keeps the time-in-system of admitted work bounded
    /// under overload (a deep queue serves every request, each uselessly
    /// late); shed clients are expected to back off and retry
    /// ([`crate::RetryPolicy`] does). Clamped to ≥ 1.
    pub max_queued_connections: usize,
    /// Cooperative per-request time budget (`None` = unbounded). The clock
    /// starts when a request frame has been read; the budget is checked
    /// between pipeline stages (never preempting a running extraction) and
    /// bounds how long a request may wait on another request's in-flight
    /// compilation. An exceeded budget is answered as a structured
    /// `deadline_exceeded` error on the request's id — a *transient* error:
    /// the compile it detached from keeps running and warms the cache, so a
    /// retry typically hits.
    pub request_deadline: Option<Duration>,
    /// Deterministic fault injection for chaos tests (`None` = no faults —
    /// the only production behavior; the field exists only in test/`faults`
    /// builds).
    #[cfg(any(test, feature = "faults"))]
    pub faults: Option<crate::faults::FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_frame_bytes: MAX_FRAME_BYTES,
            allow_remote_shutdown: false,
            idle_timeout: Some(Duration::from_secs(300)),
            max_queued_connections: 64,
            request_deadline: Some(Duration::from_secs(5)),
            #[cfg(any(test, feature = "faults"))]
            faults: None,
        }
    }
}

/// The serve layer's own instruments, registered in the **engine's**
/// registry so one `metrics` request (or one Prometheus scrape) covers the
/// whole pipeline. Counters here are the same cells [`Shared::stats`]
/// reads — there is no second bookkeeping to drift from.
struct ServeMetrics {
    requests_served: Arc<Counter>,
    connections_accepted: Arc<Counter>,
    shed: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    accept_errors: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    connections_active: Arc<Gauge>,
    connections_idle: Arc<Gauge>,
    idle_reclaimed: Arc<Counter>,
    panics_contained: Arc<Counter>,
    frame_bytes_in: Arc<Histogram>,
    frame_bytes_out: Arc<Histogram>,
    /// Per-kind handling latency, prebuilt so the hot path never takes the
    /// registry lock.
    request_duration: BTreeMap<&'static str, Arc<Histogram>>,
    /// Per-kind error responses, prebuilt for the same reason.
    errors: BTreeMap<&'static str, Arc<Counter>>,
}

impl ServeMetrics {
    fn register(registry: &MetricsRegistry) -> ServeMetrics {
        ServeMetrics {
            requests_served: registry.counter(
                "quclear_serve_requests_total",
                "requests answered (all kinds, including failures)",
            ),
            connections_accepted: registry.counter(
                "quclear_serve_connections_accepted_total",
                "connections accepted since the server started",
            ),
            shed: registry.counter(
                "quclear_serve_shed_total",
                "connections shed at admission because the queue was full",
            ),
            deadline_exceeded: registry.counter(
                "quclear_serve_deadline_exceeded_total",
                "requests answered deadline_exceeded (budget spent mid-pipeline)",
            ),
            accept_errors: registry.counter(
                "quclear_serve_accept_errors_total",
                "listener accept failures (e.g. fd exhaustion), each backed off",
            ),
            queue_depth: registry.gauge(
                "quclear_serve_queue_depth",
                "accepted connections waiting for a free worker",
            ),
            connections_active: registry.gauge(
                "quclear_serve_connections_active",
                "connections currently owned by a worker",
            ),
            connections_idle: registry.gauge(
                "quclear_serve_connections_idle",
                "owned connections currently waiting for a request frame",
            ),
            idle_reclaimed: registry.counter(
                "quclear_serve_idle_reclaimed_total",
                "connections closed for exceeding the idle timeout",
            ),
            panics_contained: registry.counter(
                "quclear_serve_panics_contained_total",
                "request handlers that panicked and were answered with an error",
            ),
            frame_bytes_in: registry.histogram_labeled(
                SERVE_FRAME_METRIC,
                "frame payload sizes in bytes",
                ("direction", "in"),
            ),
            frame_bytes_out: registry.histogram_labeled(
                SERVE_FRAME_METRIC,
                "frame payload sizes in bytes",
                ("direction", "out"),
            ),
            request_duration: REQUEST_KIND_NAMES
                .iter()
                .map(|&kind| {
                    (
                        kind,
                        registry.histogram_labeled(
                            SERVE_REQUEST_METRIC,
                            "request handling latency in nanoseconds",
                            ("kind", kind),
                        ),
                    )
                })
                .collect(),
            errors: REQUEST_KIND_NAMES
                .iter()
                .map(|&kind| {
                    (
                        kind,
                        registry.counter_labeled(
                            SERVE_ERROR_METRIC,
                            "error responses per request kind",
                            ("kind", kind),
                        ),
                    )
                })
                .collect(),
        }
    }

    /// The latency histogram of `kind` (falling back to `"unknown"`, which
    /// is always present).
    fn duration(&self, kind: &str) -> &Arc<Histogram> {
        self.request_duration
            .get(kind)
            .unwrap_or(&self.request_duration["unknown"])
    }

    /// The error counter of `kind` (falling back to `"unknown"`).
    fn error(&self, kind: &str) -> &Arc<Counter> {
        self.errors.get(kind).unwrap_or(&self.errors["unknown"])
    }
}

/// State shared by the accept loop, the workers, and the handle.
struct Shared {
    engine: Arc<Engine>,
    config: ServerConfig,
    shutdown: AtomicBool,
    started: Instant,
    metrics: ServeMetrics,
    /// Admission index of the next connection, used to key its
    /// deterministic fault stream.
    #[cfg(any(test, feature = "faults"))]
    fault_connections: std::sync::atomic::AtomicU64,
}

impl Shared {
    fn stats(&self) -> StatsSummary {
        let engine = self.engine.stats();
        let mut request_latencies = Vec::new();
        for (&kind, histogram) in &self.metrics.request_duration {
            let snapshot = histogram.snapshot();
            if snapshot.count() > 0 {
                request_latencies.push(RequestLatencySummary {
                    kind: kind.to_string(),
                    count: snapshot.count(),
                    p50_ns: snapshot.p50(),
                    p99_ns: snapshot.p99(),
                });
            }
        }
        StatsSummary {
            hits: engine.hits,
            misses: engine.misses,
            coalesced_waits: engine.coalesced_waits,
            evictions: engine.evictions,
            binds: engine.binds,
            entries: engine.entries,
            capacity: engine.capacity,
            hit_rate: engine.hit_rate(),
            requests_served: self.metrics.requests_served.get(),
            connections_accepted: self.metrics.connections_accepted.get(),
            shed_connections: self.metrics.shed.get(),
            deadline_exceeded: self.metrics.deadline_exceeded.get(),
            lane_words: engine.lane_words as u64,
            sweep_threads: engine.sweep_threads as u64,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            request_latencies,
        }
    }
}

/// A running server: spawned by [`Server::bind`], stopped by
/// [`Server::shutdown`] + [`Server::join`] (or just [`Server::stop`]).
///
/// Dropping a `Server` shuts it down and joins every thread, so a test or
/// example cannot leak the listener or the pool by accident.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    /// The handle's own view of the connection queue, kept so teardown can
    /// drain streams that never reached a worker (see
    /// [`Server::join_threads`]) — without it, queued connections would be
    /// dropped with the channel and the `queue_depth` gauge would stay
    /// nonzero forever.
    queue: Arc<Mutex<Receiver<TcpStream>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            // ordering: Relaxed — Debug output.
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .field("requests_served", &self.metrics.requests_served.get())
            .finish()
    }
}

/// How often blocked I/O wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

impl Server {
    /// Binds `addr` and starts the accept loop plus the worker pool.
    ///
    /// Bind to port 0 to let the OS choose; [`Server::local_addr`] reports
    /// the actual address. The engine is shared — pass a clone of an
    /// existing `Arc<Engine>` to serve an already-warm cache.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/listen).
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = ServeMetrics::register(engine.metrics());
        let shared = Arc::new(Shared {
            engine,
            config: ServerConfig {
                workers: config.workers.max(1),
                max_queued_connections: config.max_queued_connections.max(1),
                ..config
            },
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            metrics,
            #[cfg(any(test, feature = "faults"))]
            fault_connections: std::sync::atomic::AtomicU64::new(0),
        });

        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::with_capacity(shared.config.workers + 1);
        for worker_id in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("quclear-serve-worker-{worker_id}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawning a worker thread"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("quclear-serve-accept".to_string())
                    .spawn(move || accept_loop(&shared, &listener, &tx))
                    .expect("spawning the accept thread"),
            );
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
            queue: rx,
        })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the server (e.g. to inspect stats directly).
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Signals every thread to stop after finishing its current work.
    /// Idempotent; returns immediately — pair with [`Server::join`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Waits for every server thread to exit. Does **not** signal shutdown
    /// by itself; call [`Server::shutdown`] first (or use [`Server::stop`]).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// [`Server::shutdown`] followed by [`Server::join`].
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }

    fn join_threads(&mut self) {
        for handle in self.threads.drain(..) {
            // A worker that somehow panicked outside its catch_unwind has
            // nothing left to give us; ignore its poison during teardown.
            let _ = handle.join();
        }
        // Drain connections that were accepted but never reached a worker
        // (possible when workers die early, or raced shutdown). Each queued
        // stream was counted into `queue_depth` at admission; dropping them
        // with the channel would leave the gauge nonzero forever — a lying
        // dashboard after every restart.
        let drained = {
            let queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
            std::iter::from_fn(|| queue.try_recv().ok()).count()
        };
        for _ in 0..drained {
            self.shared.metrics.queue_depth.dec();
        }
        debug_assert_eq!(
            self.shared.metrics.queue_depth.get(),
            0,
            "every queued connection is drained (workers or teardown)"
        );
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join_threads();
    }
}

/// Longest the accept loop backs off after persistent listener errors.
const MAX_ACCEPT_BACKOFF: Duration = Duration::from_secs(1);

/// Accepts connections until shutdown, handing streams to the worker pool —
/// or shedding them when the pool's queue is full (bounded admission).
fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &std::sync::mpsc::Sender<TcpStream>) {
    let mut backoff = POLL_INTERVAL;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return; // dropping `tx` wakes every idle worker
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = POLL_INTERVAL;
                shared.metrics.connections_accepted.inc();
                // Short read timeouts let workers poll the shutdown flag
                // while parked on an idle connection.
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                let _ = stream.set_nodelay(true);
                // Bounded admission: when every worker is busy and the queue
                // is at capacity, shed this connection instead of queueing
                // it. Queueing past the bound serves *every* request — each
                // uselessly late; shedding answers immediately with a
                // retryable error and keeps admitted requests fast.
                if shared.metrics.queue_depth.get() >= shared.config.max_queued_connections as i64 {
                    shed(shared, stream);
                    continue;
                }
                shared.metrics.queue_depth.inc();
                if tx.send(stream).is_err() {
                    shared.metrics.queue_depth.dec();
                    return; // every worker is gone; nothing left to serve
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                backoff = POLL_INTERVAL;
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Listener failure (fd exhaustion, teardown): count it and
                // back off exponentially (capped) instead of busy-retrying a
                // persistent failure every poll tick; a successful accept
                // resets the backoff. Shutdown remains the only way to stop
                // serving.
                shared.metrics.accept_errors.inc();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_ACCEPT_BACKOFF);
            }
        }
    }
}

/// Sheds one connection at admission: answers a best-effort `overloaded`
/// error frame (id 0 — no request was read, so there is no id to echo) and
/// closes. Best-effort means exactly that: the write gets a short timeout
/// and its failure is ignored — under real overload the kindest thing is to
/// get off the socket quickly. The client may see the structured error or
/// just a closed/reset connection; both are retryable-transient to a
/// [`crate::RetryPolicy`].
fn shed(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.shed.inc();
    let response = Response {
        id: 0,
        body: Err(WireError::new(
            "overloaded",
            format!(
                "admission queue is full ({} connections waiting); retry with backoff",
                shared.config.max_queued_connections
            ),
        )),
    };
    let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
    let _ = write_frame_with_limit(
        &mut stream,
        &response.encode(),
        shared.config.max_frame_bytes,
    );
}

/// What a handled request asks the connection loop to do next.
enum Continuation {
    KeepServing,
    CloseConnection,
}

/// One worker: pull connections off the channel until it closes, serving
/// each to completion. A panic while serving one connection (outside the
/// per-request guard) is contained here, so the worker thread itself always
/// survives to take the next connection.
fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        let next = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(stream) = next else {
            return; // channel closed: accept loop exited and queue drained
        };
        shared.metrics.queue_depth.dec();
        let result = catch_unwind(AssertUnwindSafe(|| serve_connection(shared, stream)));
        debug_assert!(result.is_ok(), "serve_connection must contain its panics");
    }
}

/// Serves one connection until EOF, a transport error, or shutdown.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _active = shared.metrics.connections_active.track();
    // Chaos hook: each connection draws its own deterministic fault stream
    // from the configured plan (no plan — the only production state — means
    // no faults and no extra work).
    #[cfg(any(test, feature = "faults"))]
    let mut faults = shared.config.faults.as_ref().map(|plan| {
        plan.connection(
            // ordering: Relaxed — the RMW's atomicity hands each
            // connection a distinct fault-stream index; nothing else reads.
            shared
                .fault_connections
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        )
    });
    loop {
        #[cfg(any(test, feature = "faults"))]
        if let Some(stall) = faults
            .as_mut()
            .and_then(crate::faults::ConnectionFaults::read_stall)
        {
            std::thread::sleep(stall);
        }
        let payload = {
            // Between frames the connection is idle: it holds a worker but
            // costs no CPU. The gauge pair (active, idle) makes pool
            // starvation by idle clients visible before the idle timeout
            // reclaims them.
            let _idle = shared.metrics.connections_idle.track();
            match read_frame_polling(shared, &mut stream) {
                Ok(Some(payload)) => payload,
                Ok(None) | Err(_) => return, // clean EOF, shutdown while idle, or dead socket
            }
        };
        shared.metrics.frame_bytes_in.record(payload.len() as u64);
        let (response, continuation) = respond(shared, &payload);
        shared.metrics.requests_served.inc();
        #[cfg(any(test, feature = "faults"))]
        if let Some(faults) = faults.as_mut() {
            match faults.write_fault() {
                crate::faults::WriteFault::None => {}
                crate::faults::WriteFault::Delay(stall) => std::thread::sleep(stall),
                crate::faults::WriteFault::TearFrame => {
                    let _ = crate::faults::write_torn_frame(&mut stream);
                    return;
                }
                crate::faults::WriteFault::Disconnect => return,
            }
        }
        let sent = send_response(shared, &mut stream, response);
        if sent.is_err() || matches!(continuation, Continuation::CloseConnection) {
            return;
        }
    }
}

/// Writes a response within the configured frame cap. A response that
/// encodes larger than the cap (e.g. an enormous sweep) degrades into a
/// structured `response_too_large` error on the same id, so the client
/// learns *why* instead of seeing a silently dropped connection.
fn send_response(shared: &Shared, stream: &mut TcpStream, response: Response) -> io::Result<()> {
    let max = shared.config.max_frame_bytes;
    let mut encoded = response.encode();
    if encoded.len() > max {
        let too_large = Response {
            id: response.id,
            body: Err(WireError::new(
                "response_too_large",
                format!(
                    "response of {} bytes exceeds the server's {max} byte frame \
                     limit; split the request (e.g. fewer angle sets per sweep)",
                    encoded.len()
                ),
            )),
        };
        encoded = too_large.encode();
    }
    shared.metrics.frame_bytes_out.record(encoded.len() as u64);
    write_frame_with_limit(stream, &encoded, max)
}

/// Builds the response for one raw frame. Panics anywhere in decoding or
/// handling are converted into an error response carrying the panic text.
fn respond(shared: &Shared, payload: &[u8]) -> (Response, Continuation) {
    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(error) => {
            shared.metrics.error("unknown").inc();
            // The id could not be recovered; answer on id 0 so the client
            // can at least surface the failure.
            return (
                Response {
                    id: 0,
                    body: Err(error),
                },
                Continuation::KeepServing,
            );
        }
    };
    let id = request.id;
    let kind_name = request.kind.name();
    // The request's time-in-system budget starts now — after the frame was
    // read, before any pipeline stage. One absolute deadline is shared by
    // every stage (and every job of a batch), so slow stages eat into the
    // budget of later ones rather than each getting a fresh allowance.
    let deadline = shared
        .config
        .request_deadline
        .map_or(Deadline::none(), Deadline::within);
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        handle_request(shared, request.kind, deadline)
    }));
    shared
        .metrics
        .duration(kind_name)
        .record_duration(start.elapsed());
    match outcome {
        Ok((body, continuation)) => {
            if let Err(error) = &body {
                shared.metrics.error(kind_name).inc();
                if error.kind == "deadline_exceeded" {
                    shared.metrics.deadline_exceeded.inc();
                }
            }
            (Response { id, body }, continuation)
        }
        Err(panic) => {
            shared.metrics.panics_contained.inc();
            shared.metrics.error(kind_name).inc();
            let message = panic
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (
                Response {
                    id,
                    body: Err(WireError::new(
                        "panicked",
                        format!("request handling panicked: {message}"),
                    )),
                },
                Continuation::KeepServing,
            )
        }
    }
}

/// Dispatches one decoded request against the shared engine under the
/// request's deadline.
fn handle_request(
    shared: &Shared,
    kind: RequestKind,
    deadline: Deadline,
) -> (Result<ResponseBody, WireError>, Continuation) {
    let body = match kind {
        RequestKind::Compile { program, angles } => compile(shared, &program, &angles, deadline),
        RequestKind::Sweep {
            program,
            angle_sets,
        } => sweep(shared, &program, &angle_sets, deadline),
        RequestKind::CompileQasm { qasm } => shared
            .engine
            .compile_qasm_with_deadline(&qasm, deadline)
            .map(|result| ResponseBody::Compiled(summarize(&result)))
            .map_err(|e| engine_error(&e)),
        RequestKind::BindQasm { qasm, angles } => shared
            .engine
            .bind_qasm_with_deadline(&qasm, &angles, deadline)
            .map(|result| ResponseBody::Compiled(summarize(&result)))
            .map_err(|e| engine_error(&e)),
        RequestKind::Absorb {
            program,
            observables,
        } => absorb(shared, &program, &observables, deadline),
        RequestKind::Estimate {
            program,
            angles,
            observables,
            shots,
            seed,
        } => estimate(
            shared,
            &program,
            &angles,
            &observables,
            shots,
            seed,
            deadline,
        ),
        RequestKind::Stats => Ok(ResponseBody::Stats(shared.stats())),
        RequestKind::Metrics => Ok(ResponseBody::Metrics(shared.engine.metrics_snapshot())),
        RequestKind::Health => Ok(ResponseBody::Health {
            uptime_ms: shared.started.elapsed().as_millis() as u64,
        }),
        RequestKind::Shutdown => {
            return if shared.config.allow_remote_shutdown {
                shared.shutdown.store(true, Ordering::Release);
                (
                    Ok(ResponseBody::ShuttingDown),
                    Continuation::CloseConnection,
                )
            } else {
                (
                    Err(WireError::new(
                        "forbidden",
                        "this server does not accept remote shutdown",
                    )),
                    Continuation::KeepServing,
                )
            };
        }
    };
    (body, Continuation::KeepServing)
}

/// Parses the wire spelling of a rotation program into signed axes.
fn parse_axes(program: &[String]) -> Result<Vec<SignedPauli>, WireError> {
    program
        .iter()
        .map(|axis| {
            axis.parse::<SignedPauli>().map_err(|e| {
                WireError::new("bad_program", format!("axis `{axis}` does not parse: {e}"))
            })
        })
        .collect()
}

/// Folds axis signs into the angles (`exp(-iθ/2·(−P)) = exp(-i(−θ)/2·P)`)
/// and pairs them up as rotations.
fn to_rotations(axes: &[SignedPauli], angles: &[f64]) -> Result<Vec<PauliRotation>, WireError> {
    if axes.len() != angles.len() {
        return Err(WireError::new(
            "angle_count",
            format!("{} axes but {} angles", axes.len(), angles.len()),
        ));
    }
    Ok(axes
        .iter()
        .zip(angles)
        .map(|(axis, &angle)| PauliRotation::with_signed_pauli(axis.clone(), angle))
        .collect())
}

fn compile(
    shared: &Shared,
    program: &[String],
    angles: &[f64],
    deadline: Deadline,
) -> Result<ResponseBody, WireError> {
    let axes = parse_axes(program)?;
    let rotations = to_rotations(&axes, angles)?;
    shared
        .engine
        .compile_with_deadline(&rotations, deadline)
        .map(|result| ResponseBody::Compiled(summarize(&result)))
        .map_err(|e| engine_error(&e))
}

fn sweep(
    shared: &Shared,
    program: &[String],
    angle_sets: &[Vec<f64>],
    deadline: Deadline,
) -> Result<ResponseBody, WireError> {
    let axes = parse_axes(program)?;
    // The engine's sweep binds raw angles against positive axes, so fold
    // each axis sign into every angle set once up front. Sets of the wrong
    // length pass through unfolded (folding would silently truncate them) so
    // the engine's bind reports the arity mismatch in that set's slot.
    let folded: Vec<Vec<f64>> = angle_sets
        .iter()
        .map(|set| {
            if set.len() != axes.len() {
                return set.clone();
            }
            set.iter()
                .zip(&axes)
                .map(|(&angle, axis)| if axis.is_negative() { -angle } else { angle })
                .collect()
        })
        .collect();
    let rotations = to_rotations(&axes, &vec![0.0; axes.len()])?;
    let results = shared
        .engine
        .sweep_with_deadline(&rotations, &folded, deadline)
        .map_err(|e| engine_error(&e))?;
    Ok(ResponseBody::Sweep(
        results
            .into_iter()
            .map(|result| result.map(|r| summarize(&r)).map_err(|e| engine_error(&e)))
            .collect(),
    ))
}

fn absorb(
    shared: &Shared,
    program: &[String],
    observables: &[String],
    deadline: Deadline,
) -> Result<ResponseBody, WireError> {
    let axes = parse_axes(program)?;
    let rotations = to_rotations(&axes, &vec![0.0; axes.len()])?;
    let parsed: Vec<SignedPauli> = observables
        .iter()
        .map(|o| {
            o.parse::<SignedPauli>().map_err(|e| {
                WireError::new(
                    "bad_observable",
                    format!("observable `{o}` does not parse: {e}"),
                )
            })
        })
        .collect::<Result<_, _>>()?;
    let absorbed = shared
        .engine
        .absorb_observables_with_deadline(&rotations, &parsed, deadline)
        .map_err(|e| engine_error(&e))?;
    Ok(ResponseBody::Absorbed {
        observables: absorbed.to_vec().iter().map(ToString::to_string).collect(),
        groups: absorbed.commuting_groups(),
    })
}

fn estimate(
    shared: &Shared,
    program: &[String],
    angles: &[f64],
    observables: &[String],
    shots: u64,
    seed: u64,
    deadline: Deadline,
) -> Result<ResponseBody, WireError> {
    let axes = parse_axes(program)?;
    let rotations = to_rotations(&axes, angles)?;
    let parsed: Vec<SignedPauli> = observables
        .iter()
        .map(|o| {
            o.parse::<SignedPauli>().map_err(|e| {
                WireError::new(
                    "bad_observable",
                    format!("observable `{o}` does not parse: {e}"),
                )
            })
        })
        .collect::<Result<_, _>>()?;
    let result = shared
        .engine
        .estimate_observables_with_deadline(&rotations, &parsed, shots, seed, deadline)
        .map_err(|e| engine_error(&e))?;
    Ok(ResponseBody::Estimated {
        expectations: result.expectations,
        groups: result.groups,
        shot_budget_divisor: result.shot_budget_divisor,
    })
}

fn summarize(result: &quclear_core::QuClearResult) -> CompiledSummary {
    CompiledSummary {
        optimized_qasm: quclear_circuit::qasm::to_qasm(&result.optimized),
        extracted_qasm: quclear_circuit::qasm::to_qasm(&result.extracted),
        num_qubits: result.optimized.num_qubits(),
        cnot_count: result.cnot_count(),
        gate_count: result.optimized.len(),
    }
}

/// Maps engine failures onto stable wire error kinds.
fn engine_error(error: &EngineError) -> WireError {
    let kind = match error {
        EngineError::QasmParse(_) => "qasm_parse",
        EngineError::InconsistentQubitCounts { .. } => "bad_program",
        EngineError::AngleCountMismatch { .. } => "angle_count",
        EngineError::NonFiniteAngle { .. } => "non_finite_angle",
        EngineError::CompilationPanicked { .. } => "panicked",
        EngineError::NotAbsorbable(_) => "not_absorbable",
        EngineError::NotEstimable { .. } => "not_estimable",
        EngineError::DeadlineExceeded => "deadline_exceeded",
    };
    WireError::new(kind, error.to_string())
}

/// Reads one frame, waking every [`POLL_INTERVAL`] (the socket's read
/// timeout) to honor shutdown and the idle budget. `Ok(None)` means
/// "connection over" — clean EOF, shutdown arrived (between frames the
/// request was never handled; mid-frame the half-sent request is
/// abandoned), or the connection sat idle past
/// [`ServerConfig::idle_timeout`] without delivering a frame. The framing
/// rules themselves live in one place,
/// [`crate::protocol::read_frame_with`]; only the blocked-read policy
/// differs from the client's blocking read.
fn read_frame_polling(shared: &Shared, stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let waiting_since = Instant::now();
    crate::protocol::read_frame_with(stream, shared.config.max_frame_bytes, &mut |_timeout| {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(false);
        }
        let expired = shared
            .config
            .idle_timeout
            .is_some_and(|budget| waiting_since.elapsed() > budget);
        if expired {
            shared.metrics.idle_reclaimed.inc();
        }
        Ok(!expired)
    })
}

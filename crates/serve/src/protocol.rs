//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message is one **frame**: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Requests carry a client-chosen
//! `id` that the matching response echoes, so a client can pipeline
//! requests over one connection and correlate the answers.
//!
//! ```text
//! → {"id": 1, "kind": "compile", "program": ["ZZZZ", "YYXX"], "angles": [0.3, 0.7]}
//! ← {"id": 1, "ok": true, "kind": "compiled", "optimized_qasm": "...", "cnot_count": 4, ...}
//! → {"id": 2, "kind": "stats"}
//! ← {"id": 2, "ok": true, "kind": "stats", "hits": 1, "misses": 1, ...}
//! ```
//!
//! Failures echo the id with `"ok": false` and a structured error:
//!
//! ```text
//! ← {"id": 3, "ok": false, "error": {"kind": "angle_count", "message": "..."}}
//! ```
//!
//! The JSON is produced and consumed with the in-tree `serde`/`serde_json`
//! stand-ins; no external dependencies are involved.

use std::io::{self, Read, Write};

use quclear_telemetry::MetricsSnapshot;
use serde::Json;

/// Default cap on a single frame's payload (16 MiB): a sweep response over
/// thousands of angle sets fits comfortably, while a malicious or corrupt
/// length prefix cannot make the peer allocate unbounded memory.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one length-prefixed frame, capped at [`MAX_FRAME_BYTES`].
///
/// # Errors
///
/// Propagates transport errors; rejects payloads above [`MAX_FRAME_BYTES`]
/// (`InvalidInput`) before touching the socket.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write_frame_with_limit(writer, payload, MAX_FRAME_BYTES)
}

/// [`write_frame`] with an explicit payload cap (the server passes its
/// configured `max_frame_bytes` so read and write sides agree).
///
/// # Errors
///
/// Propagates transport errors; rejects payloads above the cap
/// (`InvalidInput`) before touching the socket.
pub fn write_frame_with_limit(
    writer: &mut impl Write,
    payload: &[u8],
    max_bytes: usize,
) -> io::Result<()> {
    if payload.len() > max_bytes || u32::try_from(payload.len()).is_err() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {max_bytes} byte limit",
                payload.len(),
            ),
        ));
    }
    let len = u32::try_from(payload.len()).expect("checked against u32 just above");
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame with blocking semantics.
///
/// Returns `Ok(None)` on a clean EOF *before* any header byte (the peer
/// closed between frames — the normal end of a connection).
///
/// # Errors
///
/// `UnexpectedEof` for a connection cut mid-frame, `InvalidData` for a
/// length prefix above `max_bytes`, and any transport error otherwise
/// (including `WouldBlock`/`TimedOut` when the reader has a timeout set).
pub fn read_frame(reader: &mut impl Read, max_bytes: usize) -> io::Result<Option<Vec<u8>>> {
    read_frame_with(reader, max_bytes, &mut Err)
}

/// The one copy of the framing rules, shared by the blocking [`read_frame`]
/// and the server's shutdown-aware polling read.
///
/// `on_block` decides what a `WouldBlock`/`TimedOut` read means:
/// `Ok(true)` retries (poll again), `Ok(false)` abandons the frame — the
/// caller sees `Ok(None)`, the "connection over" signal — and `Err`
/// propagates the failure to the caller.
pub(crate) fn read_frame_with(
    reader: &mut impl Read,
    max_bytes: usize,
    on_block: &mut dyn FnMut(io::Error) -> io::Result<bool>,
) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-header",
                    ))
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if !on_block(e)? {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {max_bytes} byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if !on_block(e)? {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// A request, as decoded from one frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What the client wants done.
    pub kind: RequestKind,
}

/// The operations the service exposes — the `quclear_engine::Engine`
/// surface plus observability and lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestKind {
    /// Compile a rotation program (signed Pauli axes + one angle each).
    Compile {
        /// Signed Pauli axes, e.g. `["ZZII", "-XXYY"]`.
        program: Vec<String>,
        /// One rotation angle per axis.
        angles: Vec<f64>,
    },
    /// Compile a program's structure once and bind many angle sets.
    Sweep {
        /// Signed Pauli axes shared by every binding.
        program: Vec<String>,
        /// The angle sets to bind, one result per set.
        angle_sets: Vec<Vec<f64>>,
    },
    /// Compile OpenQASM 2.0 text through the lift front-end.
    CompileQasm {
        /// The QASM source.
        qasm: String,
    },
    /// Compile QASM text with its rotation angles overridden.
    BindQasm {
        /// The QASM source.
        qasm: String,
        /// Replacement angles, one per rotation gate in the source.
        angles: Vec<f64>,
    },
    /// CA-Pre: rewrite an observable set through a program's extracted
    /// Clifford (served from the template cache's memo when warm).
    Absorb {
        /// Signed Pauli axes of the program (angles are irrelevant to
        /// absorption).
        program: Vec<String>,
        /// Signed Pauli observables to rewrite.
        observables: Vec<String>,
    },
    /// Sampled simultaneous measurement: bind the program, build the
    /// measurement-reduction plan (commuting groups + diagonalizing
    /// Cliffords + composed affine readout maps), draw one seeded shot batch
    /// per group from the simulated optimized circuit, and return every
    /// observable's estimate. Deterministic in `(program, angles,
    /// observables, shots, seed)`, hence idempotent and safely retryable.
    Estimate {
        /// Signed Pauli axes of the program.
        program: Vec<String>,
        /// One rotation angle per axis.
        angles: Vec<f64>,
        /// Signed Pauli observables to estimate.
        observables: Vec<String>,
        /// Shots sampled per commuting group.
        shots: u64,
        /// Base RNG seed; group `g` samples with a per-group derivation.
        seed: u64,
    },
    /// Engine + server counters.
    Stats,
    /// Full telemetry snapshot: every engine + serve counter, gauge and
    /// latency histogram, suitable for rendering as Prometheus text
    /// ([`quclear_telemetry::MetricsSnapshot::to_prometheus_text`]).
    Metrics,
    /// Cheap liveness probe.
    Health,
    /// Ask the server to shut down gracefully (honored only when the server
    /// was configured to allow it).
    Shutdown,
}

impl RequestKind {
    /// The wire name of this request kind.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RequestKind::Compile { .. } => "compile",
            RequestKind::Sweep { .. } => "sweep",
            RequestKind::CompileQasm { .. } => "compile_qasm",
            RequestKind::BindQasm { .. } => "bind_qasm",
            RequestKind::Absorb { .. } => "absorb",
            RequestKind::Estimate { .. } => "estimate",
            RequestKind::Stats => "stats",
            RequestKind::Metrics => "metrics",
            RequestKind::Health => "health",
            RequestKind::Shutdown => "shutdown",
        }
    }

    /// Whether repeating this request after an ambiguous failure is safe.
    ///
    /// This is what a [`crate::RetryPolicy`] consults before re-sending: an
    /// idempotent request executed twice (because the first response was
    /// lost in transit) observes the same state transitions as executed
    /// once. Compilation requests are pure functions of their payload served
    /// through an idempotent cache; observability reads (`stats`, `metrics`,
    /// `health`) have no side effects worth guarding. Only `shutdown` is
    /// excluded — not because stopping twice is harmful, but because a
    /// lifecycle command should never fire more times than the operator
    /// asked for.
    #[must_use]
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, RequestKind::Shutdown)
    }
}

/// A structured error carried by a failure response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable category (e.g. `"qasm_parse"`, `"panicked"`,
    /// `"bad_request"`).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    #[must_use]
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> Self {
        WireError {
            kind: kind.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// Summary of one compiled circuit, as returned over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledSummary {
    /// The optimized circuit `U'`, as OpenQASM 2.0 text.
    pub optimized_qasm: String,
    /// The extracted Clifford `U_CL` (never executed; absorbed), as QASM.
    pub extracted_qasm: String,
    /// Register size.
    pub num_qubits: usize,
    /// CNOT count of the optimized circuit.
    pub cnot_count: usize,
    /// Total gate count of the optimized circuit.
    pub gate_count: usize,
}

/// Latency digest of one request kind, folded into [`StatsSummary`].
///
/// A compressed view of the full per-kind latency histogram the `metrics`
/// request exposes: enough for a dashboard's headline numbers without
/// shipping bucket arrays on every `stats` poll.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestLatencySummary {
    /// Request kind name (e.g. `"compile"`).
    pub kind: String,
    /// Requests of this kind the server has answered.
    pub count: u64,
    /// Median handling latency, in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile handling latency, in nanoseconds.
    pub p99_ns: u64,
}

/// Engine + server counters, as returned by a `stats` request.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSummary {
    /// Template-cache hits.
    pub hits: u64,
    /// Template-cache misses.
    pub misses: u64,
    /// Lookups that waited on an in-flight compilation instead of racing it.
    pub coalesced_waits: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Successful binds.
    pub binds: u64,
    /// Cached templates.
    pub entries: usize,
    /// Cache capacity.
    pub capacity: usize,
    /// Cache hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Requests the server has answered (all kinds, including failures).
    pub requests_served: u64,
    /// Connections the server has accepted.
    pub connections_accepted: u64,
    /// Connections shed at admission because the queue was full
    /// ([`crate::ServerConfig::max_queued_connections`]). Zero when talking
    /// to a server from before overload protection — decoding tolerates the
    /// field's absence.
    pub shed_connections: u64,
    /// Requests answered `deadline_exceeded` because their
    /// [`crate::ServerConfig::request_deadline`] budget ran out. Zero when
    /// the field is absent (pre-overload-protection server).
    pub deadline_exceeded: u64,
    /// Lane width of the server's bit-plane kernels in 64-bit words (1 =
    /// scalar fallback). Zero when the field is absent (a server from before
    /// the wide-lane kernels).
    pub lane_words: u64,
    /// Worker threads available to the server's parallel plane sweeps. Zero
    /// when the field is absent (pre-wide-lane server).
    pub sweep_threads: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Per-request-kind latency digests (kinds the server has actually
    /// answered, sorted by kind name). Empty when talking to a server from
    /// before this field existed — decoding tolerates its absence.
    pub request_latencies: Vec<RequestLatencySummary>,
}

/// A response, as decoded from one frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// The outcome.
    pub body: Result<ResponseBody, WireError>,
}

/// The success payloads, one per request kind.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// Answer to `compile`, `compile_qasm` and `bind_qasm`.
    Compiled(CompiledSummary),
    /// Answer to `sweep`: one result per angle set, order preserved,
    /// failures isolated per set.
    Sweep(Vec<Result<CompiledSummary, WireError>>),
    /// Answer to `absorb`: the rewritten observables (as signed Pauli
    /// strings, input order) and their greedy commuting groups.
    Absorbed {
        /// Rewritten observables `C† O C`.
        observables: Vec<String>,
        /// Indices of mutually commuting observables, greedily grouped.
        groups: Vec<Vec<usize>>,
    },
    /// Answer to `estimate`: sampled per-observable expectations plus the
    /// grouping that produced them.
    Estimated {
        /// Estimated `⟨O_i⟩` in input observable order, signs included.
        expectations: Vec<f64>,
        /// Member indices of each commuting group (one shot batch each).
        groups: Vec<Vec<usize>>,
        /// `observables / groups` — the shot-budget saving of grouping.
        shot_budget_divisor: f64,
    },
    /// Answer to `stats`.
    Stats(StatsSummary),
    /// Answer to `metrics`: the full telemetry snapshot.
    Metrics(MetricsSnapshot),
    /// Answer to `health`.
    Health {
        /// Milliseconds since the server started.
        uptime_ms: u64,
    },
    /// Answer to `shutdown`: the server acknowledges and then stops
    /// accepting new work.
    ShuttingDown,
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn str_array(items: &[String]) -> Json {
    Json::Array(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn f64_array(items: &[f64]) -> Json {
    Json::Array(items.iter().map(|&x| Json::Float(x)).collect())
}

fn groups_json(groups: &[Vec<usize>]) -> Json {
    Json::Array(
        groups
            .iter()
            .map(|g| Json::Array(g.iter().map(|&i| Json::Uint(i as u64)).collect()))
            .collect(),
    )
}

fn groups_from_json(tree: &Json) -> Result<Vec<Vec<usize>>, WireError> {
    let raw = tree
        .get("groups")
        .and_then(Json::as_array)
        .ok_or_else(|| WireError::new("bad_response", "missing `groups`"))?;
    let mut groups = Vec::with_capacity(raw.len());
    for group in raw {
        let indices = group
            .as_array()
            .ok_or_else(|| WireError::new("bad_response", "group is not an array"))?
            .iter()
            .map(|i| {
                i.as_u64()
                    .map(|i| i as usize)
                    .ok_or_else(|| WireError::new("bad_response", "group index is not an integer"))
            })
            .collect::<Result<Vec<usize>, WireError>>()?;
        groups.push(indices);
    }
    Ok(groups)
}

impl Request {
    /// Encodes the request as one JSON frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut entries = vec![
            ("id", Json::Uint(self.id)),
            ("kind", Json::Str(self.kind.name().to_string())),
        ];
        match &self.kind {
            RequestKind::Compile { program, angles } => {
                entries.push(("program", str_array(program)));
                entries.push(("angles", f64_array(angles)));
            }
            RequestKind::Sweep {
                program,
                angle_sets,
            } => {
                entries.push(("program", str_array(program)));
                entries.push((
                    "angle_sets",
                    Json::Array(angle_sets.iter().map(|set| f64_array(set)).collect()),
                ));
            }
            RequestKind::CompileQasm { qasm } => {
                entries.push(("qasm", Json::Str(qasm.clone())));
            }
            RequestKind::BindQasm { qasm, angles } => {
                entries.push(("qasm", Json::Str(qasm.clone())));
                entries.push(("angles", f64_array(angles)));
            }
            RequestKind::Absorb {
                program,
                observables,
            } => {
                entries.push(("program", str_array(program)));
                entries.push(("observables", str_array(observables)));
            }
            RequestKind::Estimate {
                program,
                angles,
                observables,
                shots,
                seed,
            } => {
                entries.push(("program", str_array(program)));
                entries.push(("angles", f64_array(angles)));
                entries.push(("observables", str_array(observables)));
                entries.push(("shots", Json::Uint(*shots)));
                entries.push(("seed", Json::Uint(*seed)));
            }
            RequestKind::Stats
            | RequestKind::Metrics
            | RequestKind::Health
            | RequestKind::Shutdown => {}
        }
        render(&obj(entries))
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] (kind `"bad_request"`) describing the first
    /// malformed or missing field.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let tree = parse(payload)?;
        let id = field_u64(&tree, "id")?;
        let kind_name = field_str(&tree, "kind")?;
        let kind = match kind_name.as_str() {
            "compile" => RequestKind::Compile {
                program: field_strings(&tree, "program")?,
                angles: field_f64s(&tree, "angles")?,
            },
            "sweep" => RequestKind::Sweep {
                program: field_strings(&tree, "program")?,
                angle_sets: field_f64_sets(&tree, "angle_sets")?,
            },
            "compile_qasm" => RequestKind::CompileQasm {
                qasm: field_str(&tree, "qasm")?,
            },
            "bind_qasm" => RequestKind::BindQasm {
                qasm: field_str(&tree, "qasm")?,
                angles: field_f64s(&tree, "angles")?,
            },
            "absorb" => RequestKind::Absorb {
                program: field_strings(&tree, "program")?,
                observables: field_strings(&tree, "observables")?,
            },
            "estimate" => RequestKind::Estimate {
                program: field_strings(&tree, "program")?,
                angles: field_f64s(&tree, "angles")?,
                observables: field_strings(&tree, "observables")?,
                shots: field_u64(&tree, "shots")?,
                seed: field_u64(&tree, "seed")?,
            },
            "stats" => RequestKind::Stats,
            "metrics" => RequestKind::Metrics,
            "health" => RequestKind::Health,
            "shutdown" => RequestKind::Shutdown,
            other => {
                return Err(WireError::new(
                    "bad_request",
                    format!("unknown request kind `{other}`"),
                ))
            }
        };
        Ok(Request { id, kind })
    }
}

impl CompiledSummary {
    fn to_entries(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("optimized_qasm", Json::Str(self.optimized_qasm.clone())),
            ("extracted_qasm", Json::Str(self.extracted_qasm.clone())),
            ("num_qubits", Json::Uint(self.num_qubits as u64)),
            ("cnot_count", Json::Uint(self.cnot_count as u64)),
            ("gate_count", Json::Uint(self.gate_count as u64)),
        ]
    }

    fn from_json(tree: &Json) -> Result<Self, WireError> {
        Ok(CompiledSummary {
            optimized_qasm: field_str(tree, "optimized_qasm")?,
            extracted_qasm: field_str(tree, "extracted_qasm")?,
            num_qubits: field_u64(tree, "num_qubits")? as usize,
            cnot_count: field_u64(tree, "cnot_count")? as usize,
            gate_count: field_u64(tree, "gate_count")? as usize,
        })
    }
}

fn error_json(error: &WireError) -> Json {
    obj(vec![
        ("kind", Json::Str(error.kind.clone())),
        ("message", Json::Str(error.message.clone())),
    ])
}

fn error_from_json(tree: &Json) -> Result<WireError, WireError> {
    Ok(WireError {
        kind: field_str(tree, "kind")?,
        message: field_str(tree, "message")?,
    })
}

impl Response {
    /// Encodes the response as one JSON frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut entries = vec![("id", Json::Uint(self.id))];
        match &self.body {
            Err(error) => {
                entries.push(("ok", Json::Bool(false)));
                entries.push(("error", error_json(error)));
            }
            Ok(body) => {
                entries.push(("ok", Json::Bool(true)));
                match body {
                    ResponseBody::Compiled(summary) => {
                        entries.push(("kind", Json::Str("compiled".into())));
                        entries.extend(summary.to_entries());
                    }
                    ResponseBody::Sweep(results) => {
                        entries.push(("kind", Json::Str("sweep".into())));
                        let items: Vec<Json> = results
                            .iter()
                            .map(|result| match result {
                                Ok(summary) => {
                                    let mut e = vec![("ok", Json::Bool(true))];
                                    e.extend(summary.to_entries());
                                    obj(e)
                                }
                                Err(error) => obj(vec![
                                    ("ok", Json::Bool(false)),
                                    ("error", error_json(error)),
                                ]),
                            })
                            .collect();
                        entries.push(("results", Json::Array(items)));
                    }
                    ResponseBody::Absorbed {
                        observables,
                        groups,
                    } => {
                        entries.push(("kind", Json::Str("absorbed".into())));
                        entries.push(("observables", str_array(observables)));
                        entries.push(("groups", groups_json(groups)));
                    }
                    ResponseBody::Estimated {
                        expectations,
                        groups,
                        shot_budget_divisor,
                    } => {
                        entries.push(("kind", Json::Str("estimated".into())));
                        entries.push(("expectations", f64_array(expectations)));
                        entries.push(("groups", groups_json(groups)));
                        entries.push(("shot_budget_divisor", Json::Float(*shot_budget_divisor)));
                    }
                    ResponseBody::Stats(stats) => {
                        entries.push(("kind", Json::Str("stats".into())));
                        entries.push(("hits", Json::Uint(stats.hits)));
                        entries.push(("misses", Json::Uint(stats.misses)));
                        entries.push(("coalesced_waits", Json::Uint(stats.coalesced_waits)));
                        entries.push(("evictions", Json::Uint(stats.evictions)));
                        entries.push(("binds", Json::Uint(stats.binds)));
                        entries.push(("entries", Json::Uint(stats.entries as u64)));
                        entries.push(("capacity", Json::Uint(stats.capacity as u64)));
                        entries.push(("hit_rate", Json::Float(stats.hit_rate)));
                        entries.push(("requests_served", Json::Uint(stats.requests_served)));
                        entries.push((
                            "connections_accepted",
                            Json::Uint(stats.connections_accepted),
                        ));
                        entries.push(("shed_connections", Json::Uint(stats.shed_connections)));
                        entries.push(("deadline_exceeded", Json::Uint(stats.deadline_exceeded)));
                        entries.push(("lane_words", Json::Uint(stats.lane_words)));
                        entries.push(("sweep_threads", Json::Uint(stats.sweep_threads)));
                        entries.push(("uptime_ms", Json::Uint(stats.uptime_ms)));
                        entries.push((
                            "request_latencies",
                            Json::Array(
                                stats
                                    .request_latencies
                                    .iter()
                                    .map(|digest| {
                                        obj(vec![
                                            ("kind", Json::Str(digest.kind.clone())),
                                            ("count", Json::Uint(digest.count)),
                                            ("p50_ns", Json::Uint(digest.p50_ns)),
                                            ("p99_ns", Json::Uint(digest.p99_ns)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                    ResponseBody::Metrics(snapshot) => {
                        entries.push(("kind", Json::Str("metrics".into())));
                        entries.push(("snapshot", snapshot.to_json()));
                    }
                    ResponseBody::Health { uptime_ms } => {
                        entries.push(("kind", Json::Str("health".into())));
                        entries.push(("status", Json::Str("ok".into())));
                        entries.push(("uptime_ms", Json::Uint(*uptime_ms)));
                    }
                    ResponseBody::ShuttingDown => {
                        entries.push(("kind", Json::Str("shutting_down".into())));
                    }
                }
            }
        }
        render(&obj(entries))
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] (kind `"bad_response"`) for malformed frames.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        // The shared field helpers report `bad_request` (their common use is
        // request decoding); on this side every malformed frame is the
        // *server's* fault, so normalize the kind before it reaches callers
        // that dispatch on it.
        Self::decode_inner(payload).map_err(|e| WireError::new("bad_response", e.message))
    }

    fn decode_inner(payload: &[u8]) -> Result<Response, WireError> {
        let tree = parse(payload).map_err(|e| WireError::new("bad_response", e.message))?;
        let id = field_u64(&tree, "id")?;
        let ok = tree
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| WireError::new("bad_response", "missing boolean `ok`"))?;
        if !ok {
            let error = tree
                .get("error")
                .ok_or_else(|| WireError::new("bad_response", "failure without `error`"))?;
            return Ok(Response {
                id,
                body: Err(error_from_json(error)?),
            });
        }
        let kind = field_str(&tree, "kind")?;
        let body = match kind.as_str() {
            "compiled" => ResponseBody::Compiled(CompiledSummary::from_json(&tree)?),
            "sweep" => {
                let items = tree
                    .get("results")
                    .and_then(Json::as_array)
                    .ok_or_else(|| WireError::new("bad_response", "missing `results` array"))?;
                let mut results = Vec::with_capacity(items.len());
                for item in items {
                    let ok = item
                        .get("ok")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| WireError::new("bad_response", "sweep item without `ok`"))?;
                    if ok {
                        results.push(Ok(CompiledSummary::from_json(item)?));
                    } else {
                        let error = item.get("error").ok_or_else(|| {
                            WireError::new("bad_response", "failed sweep item without `error`")
                        })?;
                        results.push(Err(error_from_json(error)?));
                    }
                }
                ResponseBody::Sweep(results)
            }
            "absorbed" => ResponseBody::Absorbed {
                observables: field_strings(&tree, "observables")?,
                groups: groups_from_json(&tree)?,
            },
            "estimated" => ResponseBody::Estimated {
                expectations: field_f64s(&tree, "expectations")?,
                groups: groups_from_json(&tree)?,
                shot_budget_divisor: field_f64(&tree, "shot_budget_divisor")?,
            },
            "stats" => ResponseBody::Stats(StatsSummary {
                hits: field_u64(&tree, "hits")?,
                misses: field_u64(&tree, "misses")?,
                coalesced_waits: field_u64(&tree, "coalesced_waits")?,
                evictions: field_u64(&tree, "evictions")?,
                binds: field_u64(&tree, "binds")?,
                entries: field_u64(&tree, "entries")? as usize,
                capacity: field_u64(&tree, "capacity")? as usize,
                hit_rate: field_f64(&tree, "hit_rate")?,
                requests_served: field_u64(&tree, "requests_served")?,
                connections_accepted: field_u64(&tree, "connections_accepted")?,
                shed_connections: field_u64_or_zero(&tree, "shed_connections")?,
                deadline_exceeded: field_u64_or_zero(&tree, "deadline_exceeded")?,
                lane_words: field_u64_or_zero(&tree, "lane_words")?,
                sweep_threads: field_u64_or_zero(&tree, "sweep_threads")?,
                uptime_ms: field_u64(&tree, "uptime_ms")?,
                request_latencies: latency_digests(&tree)?,
            }),
            "metrics" => {
                let snapshot = tree
                    .get("snapshot")
                    .ok_or_else(|| WireError::new("bad_response", "missing `snapshot`"))?;
                ResponseBody::Metrics(
                    MetricsSnapshot::from_json(snapshot)
                        .map_err(|e| WireError::new("bad_response", e))?,
                )
            }
            "health" => ResponseBody::Health {
                uptime_ms: field_u64(&tree, "uptime_ms")?,
            },
            "shutting_down" => ResponseBody::ShuttingDown,
            other => {
                return Err(WireError::new(
                    "bad_response",
                    format!("unknown response kind `{other}`"),
                ))
            }
        };
        Ok(Response { id, body: Ok(body) })
    }
}

// ---------------------------------------------------------------------------
// JSON field helpers
// ---------------------------------------------------------------------------

fn render(tree: &Json) -> Vec<u8> {
    // Fast path: almost every tree is already finite — serialize it in
    // place. Only a tree that actually holds a NaN/inf angle pays the
    // sanitizing rebuild.
    let text = match serde_json::value_to_string(tree) {
        Ok(text) => text,
        Err(_) => serde_json::value_to_string(&sanitize(tree))
            .expect("sanitize() removed every non-finite float"),
    };
    text.into_bytes()
}

/// Replaces non-finite floats with `null` so encoding is total: JSON has no
/// spelling for NaN/inf, and callers pass arbitrary `f64` angles. The
/// receiver's typed field parsing then rejects the `null` with a structured
/// `… must be numbers` error instead of the sender panicking.
fn sanitize(tree: &Json) -> Json {
    match tree {
        Json::Float(x) if !x.is_finite() => Json::Null,
        Json::Array(items) => Json::Array(items.iter().map(sanitize).collect()),
        Json::Object(entries) => Json::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), sanitize(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

fn parse(payload: &[u8]) -> Result<Json, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| WireError::new("bad_request", "frame is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| WireError::new("bad_request", e.to_string()))
}

fn field<'a>(tree: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    tree.get(key)
        .ok_or_else(|| WireError::new("bad_request", format!("missing field `{key}`")))
}

fn field_u64(tree: &Json, key: &str) -> Result<u64, WireError> {
    field(tree, key)?
        .as_u64()
        .ok_or_else(|| WireError::new("bad_request", format!("field `{key}` is not an integer")))
}

fn field_f64(tree: &Json, key: &str) -> Result<f64, WireError> {
    field(tree, key)?
        .as_f64()
        .ok_or_else(|| WireError::new("bad_request", format!("field `{key}` is not a number")))
}

/// Like [`field_u64`] but tolerating absence (decodes as 0) for counters
/// added to the stats payload after the first protocol release; a *present*
/// non-integer value is still an error.
fn field_u64_or_zero(tree: &Json, key: &str) -> Result<u64, WireError> {
    match tree.get(key) {
        None => Ok(0),
        Some(value) => value.as_u64().ok_or_else(|| {
            WireError::new("bad_request", format!("field `{key}` is not an integer"))
        }),
    }
}

fn field_str(tree: &Json, key: &str) -> Result<String, WireError> {
    Ok(field(tree, key)?
        .as_str()
        .ok_or_else(|| WireError::new("bad_request", format!("field `{key}` is not a string")))?
        .to_string())
}

fn field_strings(tree: &Json, key: &str) -> Result<Vec<String>, WireError> {
    field(tree, key)?
        .as_array()
        .ok_or_else(|| WireError::new("bad_request", format!("field `{key}` is not an array")))?
        .iter()
        .map(|item| {
            item.as_str().map(str::to_string).ok_or_else(|| {
                WireError::new("bad_request", format!("`{key}` items must be strings"))
            })
        })
        .collect()
}

fn field_f64s(tree: &Json, key: &str) -> Result<Vec<f64>, WireError> {
    field(tree, key)?
        .as_array()
        .ok_or_else(|| WireError::new("bad_request", format!("field `{key}` is not an array")))?
        .iter()
        .map(|item| {
            item.as_f64().ok_or_else(|| {
                WireError::new("bad_request", format!("`{key}` items must be numbers"))
            })
        })
        .collect()
}

/// Decodes the optional `request_latencies` array of a `stats` response.
/// Absence (a pre-telemetry server) decodes as empty; a present-but-
/// malformed array is an error.
fn latency_digests(tree: &Json) -> Result<Vec<RequestLatencySummary>, WireError> {
    let Some(raw) = tree.get("request_latencies") else {
        return Ok(Vec::new());
    };
    let items = raw
        .as_array()
        .ok_or_else(|| WireError::new("bad_request", "`request_latencies` is not an array"))?;
    items
        .iter()
        .map(|item| {
            Ok(RequestLatencySummary {
                kind: field_str(item, "kind")?,
                count: field_u64(item, "count")?,
                p50_ns: field_u64(item, "p50_ns")?,
                p99_ns: field_u64(item, "p99_ns")?,
            })
        })
        .collect()
}

fn field_f64_sets(tree: &Json, key: &str) -> Result<Vec<Vec<f64>>, WireError> {
    field(tree, key)?
        .as_array()
        .ok_or_else(|| WireError::new("bad_request", format!("field `{key}` is not an array")))?
        .iter()
        .map(|set| {
            set.as_array()
                .ok_or_else(|| {
                    WireError::new("bad_request", format!("`{key}` items must be arrays"))
                })?
                .iter()
                .map(|item| {
                    item.as_f64().ok_or_else(|| {
                        WireError::new("bad_request", format!("`{key}` entries must be numbers"))
                    })
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A non-trivial telemetry snapshot: one of each metric kind, with and
    /// without labels, so the wire encoding of all three sections is covered.
    fn sample_snapshot() -> quclear_telemetry::MetricsSnapshot {
        let registry = quclear_telemetry::MetricsRegistry::new();
        registry.counter("reqs_total", "requests").add(7);
        registry
            .counter_labeled("errs_total", "errors", ("kind", "compile"))
            .add(2);
        registry.gauge("queue_depth", "queued connections").set(3);
        let latency = registry.histogram_labeled("latency_ns", "latency", ("kind", "compile"));
        for v in [100, 900, 4_000] {
            latency.record(v);
        }
        registry.snapshot()
    }

    fn roundtrip_request(kind: RequestKind) {
        let request = Request { id: 42, kind };
        let decoded = Request::decode(&request.encode()).expect("must decode");
        assert_eq!(decoded, request);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(RequestKind::Compile {
            program: vec!["ZZII".into(), "-XXYY".into()],
            angles: vec![0.25, -1.5],
        });
        roundtrip_request(RequestKind::Sweep {
            program: vec!["ZZ".into()],
            angle_sets: vec![vec![0.1], vec![0.2], vec![]],
        });
        roundtrip_request(RequestKind::CompileQasm {
            qasm: "qreg q[2];\ncx q[0], q[1];\n".into(),
        });
        roundtrip_request(RequestKind::BindQasm {
            qasm: "qreg q[1];\nrz(0.5) q[0];\n".into(),
            angles: vec![2.5],
        });
        roundtrip_request(RequestKind::Absorb {
            program: vec!["ZZ".into()],
            observables: vec!["+ZI".into(), "-IZ".into()],
        });
        roundtrip_request(RequestKind::Estimate {
            program: vec!["ZZ".into(), "XX".into()],
            angles: vec![0.25, -1.5],
            observables: vec!["+ZI".into(), "-IZ".into()],
            shots: 4096,
            seed: 17,
        });
        roundtrip_request(RequestKind::Stats);
        roundtrip_request(RequestKind::Metrics);
        roundtrip_request(RequestKind::Health);
        roundtrip_request(RequestKind::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        let summary = CompiledSummary {
            optimized_qasm: "OPENQASM 2.0;\n".into(),
            extracted_qasm: String::new(),
            num_qubits: 4,
            cnot_count: 3,
            gate_count: 9,
        };
        let bodies = vec![
            ResponseBody::Compiled(summary.clone()),
            ResponseBody::Sweep(vec![
                Ok(summary.clone()),
                Err(WireError::new("angle_count", "expected 2, got 1")),
            ]),
            ResponseBody::Absorbed {
                observables: vec!["+ZZ".into(), "-XI".into()],
                groups: vec![vec![0, 1], vec![]],
            },
            ResponseBody::Estimated {
                expectations: vec![0.5, -0.25, 1.0],
                groups: vec![vec![0, 2], vec![1]],
                shot_budget_divisor: 1.5,
            },
            ResponseBody::Stats(StatsSummary {
                hits: 10,
                misses: 2,
                coalesced_waits: 3,
                evictions: 0,
                binds: 12,
                entries: 2,
                capacity: 64,
                hit_rate: 10.0 / 12.0,
                requests_served: 15,
                connections_accepted: 4,
                shed_connections: 2,
                deadline_exceeded: 1,
                lane_words: 4,
                sweep_threads: 8,
                uptime_ms: 12345,
                request_latencies: vec![
                    RequestLatencySummary {
                        kind: "compile".into(),
                        count: 12,
                        p50_ns: 1_500,
                        p99_ns: 90_000,
                    },
                    RequestLatencySummary {
                        kind: "stats".into(),
                        count: 3,
                        p50_ns: 200,
                        p99_ns: 400,
                    },
                ],
            }),
            ResponseBody::Metrics(sample_snapshot()),
            ResponseBody::Health { uptime_ms: 1 },
            ResponseBody::ShuttingDown,
        ];
        for body in bodies {
            let response = Response {
                id: 7,
                body: Ok(body),
            };
            let decoded = Response::decode(&response.encode()).expect("must decode");
            assert_eq!(decoded, response);
        }
        let failure = Response {
            id: 8,
            body: Err(WireError::new("panicked", "compilation panicked: boom")),
        };
        assert_eq!(Response::decode(&failure.encode()).unwrap(), failure);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world").unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(
            read_frame(&mut reader, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut reader, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert_eq!(
            read_frame(&mut reader, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some(&b"world"[..])
        );
        assert_eq!(read_frame(&mut reader, MAX_FRAME_BYTES).unwrap(), None);
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        // A length prefix beyond the cap must be rejected before allocating.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut reader = wire.as_slice();
        assert!(read_frame(&mut reader, MAX_FRAME_BYTES).is_err());

        // A frame cut mid-payload is an UnexpectedEof, not a clean end.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"truncated").unwrap();
        wire.truncate(wire.len() - 3);
        let mut reader = wire.as_slice();
        let err = read_frame(&mut reader, MAX_FRAME_BYTES).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Writing above the cap fails locally.
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
    }

    #[test]
    fn non_finite_angles_encode_without_panicking_and_fail_decode() {
        // JSON has no NaN/inf spelling; they encode as null, and the typed
        // decode rejects the null with a structured error (no panic on
        // either side of the wire).
        let request = Request {
            id: 1,
            kind: RequestKind::Compile {
                program: vec!["ZZ".into()],
                angles: vec![f64::NAN, f64::INFINITY],
            },
        };
        let err = Request::decode(&request.encode()).unwrap_err();
        assert_eq!(err.kind, "bad_request");
        assert!(err.message.contains("angles"), "{err}");
    }

    #[test]
    fn stats_without_request_latencies_still_decode() {
        // A response from a server predating the latency digests must
        // decode, with the new field defaulting to empty.
        let legacy = br#"{"id": 5, "ok": true, "kind": "stats",
            "hits": 1, "misses": 2, "coalesced_waits": 0, "evictions": 0,
            "binds": 3, "entries": 1, "capacity": 64, "hit_rate": 0.333,
            "requests_served": 6, "connections_accepted": 1, "uptime_ms": 9}"#;
        let decoded = Response::decode(legacy).expect("legacy stats must decode");
        match decoded.body {
            Ok(ResponseBody::Stats(stats)) => {
                assert_eq!(stats.hits, 1);
                assert!(stats.request_latencies.is_empty());
                // Overload counters from after this payload's vintage
                // default to zero.
                assert_eq!(stats.shed_connections, 0);
                assert_eq!(stats.deadline_exceeded, 0);
                // So do the kernel-configuration fields.
                assert_eq!(stats.lane_words, 0);
                assert_eq!(stats.sweep_threads, 0);
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn only_shutdown_is_not_idempotent() {
        assert!(RequestKind::Compile {
            program: vec!["ZZ".into()],
            angles: vec![0.1],
        }
        .is_idempotent());
        assert!(RequestKind::Sweep {
            program: vec!["ZZ".into()],
            angle_sets: vec![],
        }
        .is_idempotent());
        assert!(RequestKind::CompileQasm {
            qasm: String::new()
        }
        .is_idempotent());
        assert!(RequestKind::BindQasm {
            qasm: String::new(),
            angles: vec![],
        }
        .is_idempotent());
        assert!(RequestKind::Absorb {
            program: vec![],
            observables: vec![],
        }
        .is_idempotent());
        // Estimation is deterministic in its seed, hence safely retryable.
        assert!(RequestKind::Estimate {
            program: vec![],
            angles: vec![],
            observables: vec![],
            shots: 1,
            seed: 0,
        }
        .is_idempotent());
        assert!(RequestKind::Stats.is_idempotent());
        assert!(RequestKind::Metrics.is_idempotent());
        assert!(RequestKind::Health.is_idempotent());
        assert!(!RequestKind::Shutdown.is_idempotent());
    }

    #[test]
    fn malformed_responses_report_bad_response_not_bad_request() {
        for bad in [
            &b"not json"[..],
            br#"{"id": 1}"#,
            br#"{"id": 1, "ok": true, "kind": "stats"}"#,
            br#"{"id": 1, "ok": true, "kind": "wat"}"#,
        ] {
            let err = Response::decode(bad).unwrap_err();
            assert_eq!(err.kind, "bad_response", "payload {bad:?}: {err}");
        }
    }

    #[test]
    fn write_frame_with_limit_honors_the_cap() {
        let payload = vec![0u8; 512];
        assert!(write_frame_with_limit(&mut Vec::new(), &payload, 256).is_err());
        let mut wire = Vec::new();
        write_frame_with_limit(&mut wire, &payload, 1024).unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(
            read_frame(&mut reader, 1024).unwrap().map(|p| p.len()),
            Some(512)
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        let err = Request::decode(b"not json").unwrap_err();
        assert_eq!(err.kind, "bad_request");

        let err = Request::decode(br#"{"id": 1, "kind": "launch_missiles"}"#).unwrap_err();
        assert!(err.message.contains("launch_missiles"));

        let err =
            Request::decode(br#"{"id": 1, "kind": "compile", "program": ["ZZ"]}"#).unwrap_err();
        assert!(err.message.contains("angles"));

        let err = Request::decode(br#"{"kind": "stats"}"#).unwrap_err();
        assert!(err.message.contains("id"));
    }
}

//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] describes *transport-level* misbehavior the server
//! inflicts on its own connections — read stalls, write stalls, torn
//! response frames, mid-response disconnects — from one seed, so a chaos
//! run is reproducible byte for byte. Engine-level faults (compile panics
//! and delays) are injected through the engine's existing seams
//! (`Engine::inject_lookup_panic`, `Engine::inject_compile_delay`); the
//! chaos suite arms both layers together.
//!
//! Everything here compiles only under `cfg(any(test, feature = "faults"))`:
//! production builds carry no fault hooks, while `tests/chaos.rs` gets them
//! through the crate's self dev-dependency (which enables the `faults`
//! feature for test builds only).
//!
//! # Determinism
//!
//! Each accepted connection draws its faults from its own SplitMix64 stream,
//! seeded from `plan.seed` and the connection's admission index. The
//! schedule therefore depends only on (seed, connection index, draw index) —
//! not on thread interleaving — so a failing chaos run replays exactly from
//! its seed even though connections are served concurrently.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded, deterministic schedule of transport faults for every
/// connection a server serves.
///
/// All probabilities are per *event* (per frame read, per response write),
/// in `[0, 1]`; the default plan injects nothing.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of the whole schedule. Two servers configured with the same
    /// plan inflict identical fault sequences on their n-th connections.
    pub seed: u64,
    /// Probability that a frame read stalls for [`FaultPlan::read_delay`]
    /// before the worker starts waiting on the socket.
    pub read_delay_probability: f64,
    /// How long a delayed read stalls.
    pub read_delay: Duration,
    /// Probability that a response write stalls for
    /// [`FaultPlan::write_delay`] before any byte is sent.
    pub write_delay_probability: f64,
    /// How long a delayed write stalls.
    pub write_delay: Duration,
    /// Probability that a response frame is torn: the length header promises
    /// more bytes than are sent, then the connection closes. The client
    /// observes an `UnexpectedEof` mid-frame — the classic half-written
    /// crash.
    pub torn_frame_probability: f64,
    /// Probability that the connection drops with no response bytes at all
    /// (mid-response disconnect from the client's point of view: request
    /// sent, socket died).
    pub disconnect_probability: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            read_delay_probability: 0.0,
            read_delay: Duration::ZERO,
            write_delay_probability: 0.0,
            write_delay: Duration::ZERO,
            torn_frame_probability: 0.0,
            disconnect_probability: 0.0,
        }
    }
}

impl FaultPlan {
    /// The fault stream of one connection, keyed by its admission index.
    #[must_use]
    pub(crate) fn connection(&self, index: u64) -> ConnectionFaults {
        // Decorrelate per-connection streams: adjacent indices land far
        // apart in SplitMix64 state space (golden-ratio increment).
        let seed = self
            .seed
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ConnectionFaults {
            plan: self.clone(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// What to do to the next response write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WriteFault {
    /// Write normally.
    None,
    /// Stall, then write normally.
    Delay(Duration),
    /// Send a frame header promising more bytes than follow, then close.
    TearFrame,
    /// Close without sending a byte.
    Disconnect,
}

/// One connection's deterministic fault stream.
#[derive(Clone, Debug)]
pub(crate) struct ConnectionFaults {
    plan: FaultPlan,
    rng: StdRng,
}

impl ConnectionFaults {
    /// The stall (if any) to apply before waiting for the next frame.
    pub(crate) fn read_stall(&mut self) -> Option<Duration> {
        (self.plan.read_delay_probability > 0.0
            && self.rng.gen_bool(self.plan.read_delay_probability))
        .then_some(self.plan.read_delay)
    }

    /// The fault (if any) to apply to the next response write. Terminal
    /// faults (tear, disconnect) are drawn before the stall so a torn frame
    /// is torn promptly — the deadline budget, not the fault schedule,
    /// governs how long a request may take.
    pub(crate) fn write_fault(&mut self) -> WriteFault {
        if self.plan.disconnect_probability > 0.0
            && self.rng.gen_bool(self.plan.disconnect_probability)
        {
            return WriteFault::Disconnect;
        }
        if self.plan.torn_frame_probability > 0.0
            && self.rng.gen_bool(self.plan.torn_frame_probability)
        {
            return WriteFault::TearFrame;
        }
        if self.plan.write_delay_probability > 0.0
            && self.rng.gen_bool(self.plan.write_delay_probability)
        {
            return WriteFault::Delay(self.plan.write_delay);
        }
        WriteFault::None
    }
}

/// Writes a deliberately torn frame: a header promising `declared` bytes
/// followed by fewer, then lets the caller close the stream. The peer's
/// framed read fails with `UnexpectedEof` mid-frame.
pub(crate) fn write_torn_frame(stream: &mut impl std::io::Write) -> std::io::Result<()> {
    let fragment = br#"{"torn": true"#;
    let declared = fragment.len() as u32 + 64;
    stream.write_all(&declared.to_be_bytes())?;
    stream.write_all(fragment)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            read_delay_probability: 0.3,
            read_delay: Duration::from_millis(1),
            write_delay_probability: 0.3,
            write_delay: Duration::from_millis(1),
            torn_frame_probability: 0.2,
            disconnect_probability: 0.2,
        }
    }

    #[test]
    fn default_plan_injects_nothing() {
        let mut faults = FaultPlan::default().connection(0);
        for _ in 0..100 {
            assert_eq!(faults.read_stall(), None);
            assert_eq!(faults.write_fault(), WriteFault::None);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = chaotic_plan(42).connection(3);
        let mut b = chaotic_plan(42).connection(3);
        for _ in 0..200 {
            assert_eq!(a.read_stall(), b.read_stall());
            assert_eq!(a.write_fault(), b.write_fault());
        }
    }

    #[test]
    fn different_connections_get_different_schedules() {
        let plan = chaotic_plan(42);
        let (mut a, mut b) = (plan.connection(0), plan.connection(1));
        let schedule = |faults: &mut ConnectionFaults| {
            (0..64).map(|_| faults.write_fault()).collect::<Vec<_>>()
        };
        assert_ne!(schedule(&mut a), schedule(&mut b));
    }

    #[test]
    fn chaotic_plan_eventually_draws_every_fault() {
        let mut faults = chaotic_plan(7).connection(0);
        let mut seen_stall = false;
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen_stall |= faults.read_stall().is_some();
            match faults.write_fault() {
                WriteFault::None => seen[0] = true,
                WriteFault::Delay(_) => seen[1] = true,
                WriteFault::TearFrame => seen[2] = true,
                WriteFault::Disconnect => seen[3] = true,
            }
        }
        assert!(seen_stall && seen.iter().all(|&s| s));
    }

    #[test]
    fn torn_frames_promise_more_than_they_deliver() {
        let mut wire = Vec::new();
        write_torn_frame(&mut wire).unwrap();
        let declared = u32::from_be_bytes(wire[..4].try_into().unwrap()) as usize;
        assert!(declared > wire.len() - 4, "the tear must under-deliver");
        // A framed read of the tear fails mid-frame, not cleanly.
        let err = crate::protocol::read_frame(&mut wire.as_slice(), 1 << 20).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}

//! `quclear-serve`: a long-running compilation service over
//! [`quclear_engine::Engine`].
//!
//! QuCLEAR's value proposition is *compile once, serve many*: Clifford
//! Extraction is angle-independent, so the expensive part of compiling a
//! variational circuit can be cached and every later query with new angles
//! is a cheap bind. This crate turns that per-process cache into **shared
//! serving infrastructure**: a TCP server (plain `std::net`, no external
//! dependencies) in front of one engine, so many clients — a VQE sweep
//! here, a QAOA grid there — warm and reuse the *same* template cache.
//!
//! * [`Server`] — accept loop + fixed worker thread pool, graceful
//!   shutdown, per-request panic containment (a panicking compilation
//!   answers *that* request with an error and keeps serving);
//! * [`Client`] — a small blocking client for the same wire format;
//! * [`protocol`] — the length-prefixed JSON frame format (built on the
//!   in-tree `serde`/`serde_json` stand-ins), covering `compile`, `sweep`,
//!   `compile_qasm`, `bind_qasm`, `absorb`, `stats`, `metrics`, `health`
//!   and `shutdown`;
//! * **request coalescing** — concurrent compiles of the same structure are
//!   single-flighted by the engine ([`quclear_engine::singleflight`]): one
//!   extraction runs, every concurrent identical request waits for it and
//!   shares the result ([`quclear_engine::EngineStats::coalesced_waits`]
//!   counts how often that saved a redundant compile);
//! * **observability** — every request kind is timed into a lock-free
//!   latency histogram, frame sizes, queue depth, connection states,
//!   idle reclamations and contained panics are instrumented, and the
//!   `metrics` request returns one coherent
//!   [`quclear_telemetry::MetricsSnapshot`] covering the serve layer *and*
//!   the engine's pipeline stages (renderable as Prometheus text);
//! * **overload protection** — admission is bounded
//!   ([`ServerConfig::max_queued_connections`]): connections beyond the
//!   queue cap are *shed* with a retryable `overloaded` error instead of
//!   queueing without bound, and every admitted request runs under a
//!   cooperative deadline ([`ServerConfig::request_deadline`]) answered as
//!   `deadline_exceeded` when the budget runs out — both counted
//!   (`quclear_serve_shed_total`, `quclear_serve_deadline_exceeded_total`);
//! * **client resilience** — [`RetryPolicy`] gives the blocking [`Client`]
//!   seeded exponential backoff with jitter, automatic reconnection, and
//!   retries restricted to idempotent requests
//!   ([`RequestKind::is_idempotent`]) failing transiently.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use quclear_engine::Engine;
//! use quclear_serve::{Client, Server, ServerConfig};
//!
//! let engine = Arc::new(Engine::new(256));
//! let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default())?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! let compiled = client.compile(&["ZZZZ", "YYXX"], &[0.3, 0.7])?;
//! assert!(compiled.cnot_count <= 4);
//! assert_eq!(client.stats()?.misses, 1);
//!
//! server.stop(); // graceful: drains workers, joins every thread
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
#[cfg(any(test, feature = "faults"))]
pub mod faults;
pub mod protocol;
mod server;
mod sync;

pub use client::{Client, ClientError, RetryPolicy};
#[cfg(any(test, feature = "faults"))]
pub use faults::FaultPlan;
pub use protocol::{
    CompiledSummary, Request, RequestKind, RequestLatencySummary, Response, ResponseBody,
    StatsSummary, WireError,
};
pub use server::{
    Server, ServerConfig, SERVE_ERROR_METRIC, SERVE_FRAME_METRIC, SERVE_REQUEST_METRIC,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Server>();
        assert_send::<Client>();
        assert_send::<ClientError>();
        assert_send::<RequestKind>();
        assert_send::<ResponseBody>();
    }
}

//! Crate-local alias for the sync primitives the server's stop/drain and
//! admission machinery uses.
//!
//! In production builds (the default) every name here is exactly its
//! `std::sync` counterpart — this module compiles away to re-exports. With
//! the `sched-model` feature the same names come from `quclear-sched`,
//! whose drop-in types route every acquire/release/atomic access through a
//! deterministic scheduler for the model-check suite
//! (`tests/sched_models.rs`). The server's `mpsc` channel, thread spawns,
//! and wall-clock `Instant`s stay `std`: the real accept loop needs real
//! sockets, so the drain protocol is modeled abstractly in the test suite
//! rather than by running `Server` under the scheduler.

#[cfg(feature = "sched-model")]
pub(crate) use quclear_sched::sync::{atomic, Arc, Mutex, PoisonError};

#[cfg(not(feature = "sched-model"))]
pub(crate) use std::sync::{atomic, Arc, Mutex, PoisonError};

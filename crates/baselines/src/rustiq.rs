//! A Rustiq-like baseline: greedy Pauli-network synthesis.
//!
//! Rustiq (de Brugière & Martiel, 2024) synthesizes a Hamiltonian-simulation
//! circuit bottom-up: it keeps a Clifford frame, reduces each Pauli rotation
//! to a single-qubit `Rz` with a small Clifford, pushes that Clifford into the
//! frame, and finally emits one terminal Clifford circuit for the accumulated
//! frame. Unlike QuCLEAR it does **not** absorb that terminal Clifford — it
//! is synthesized to gates and counted (the `rcount` configuration the paper
//! compares against).
//!
//! This re-implementation uses the same Clifford-frame structure but a
//! simpler greedy reduction (no lookahead, chain-ordered trees), followed by
//! Aaronson–Gottesman synthesis of the terminal Clifford and a peephole pass.

use quclear_circuit::{optimize, Circuit};
use quclear_core::{extract_clifford, ExtractionConfig};
use quclear_pauli::PauliRotation;
use quclear_tableau::{synthesize_clifford, CliffordTableau};

/// Synthesizes a rotation program in the Rustiq style: a Pauli network plus a
/// terminal Clifford circuit (which is re-synthesized compactly rather than
/// kept as raw mirrored gates).
///
/// # Panics
///
/// Panics if the rotations act on different register sizes.
///
/// # Examples
///
/// ```
/// use quclear_baselines::{synthesize_naive, synthesize_rustiq_like};
/// use quclear_pauli::PauliRotation;
///
/// let program = vec![
///     PauliRotation::parse("ZZZZ", 0.3)?,
///     PauliRotation::parse("YYXX", 0.7)?,
/// ];
/// let rustiq = synthesize_rustiq_like(&program);
/// assert!(rustiq.cnot_count() <= synthesize_naive(&program).cnot_count());
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn synthesize_rustiq_like(rotations: &[PauliRotation]) -> Circuit {
    // Greedy frame-based reduction = Clifford extraction without the
    // recursive lookahead or commuting-block reordering.
    let config = ExtractionConfig {
        recursive_tree: false,
        reorder_commuting: false,
        lookahead_depth: 1,
    };
    let extraction = extract_clifford(rotations, &config);

    // Rustiq must implement the full unitary, so the terminal Clifford is
    // synthesized back to gates from its tableau (much more compact than the
    // raw mirrored ladders) and appended.
    let terminal = CliffordTableau::from_circuit(&extraction.extracted);
    let terminal_circuit = synthesize_clifford(&terminal);

    let mut full = extraction.optimized;
    full.append(&terminal_circuit);
    optimize(&full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::synthesize_naive;
    use quclear_sim::StateVector;

    fn rot(s: &str, a: f64) -> PauliRotation {
        PauliRotation::parse(s, a).unwrap()
    }

    #[test]
    fn implements_the_same_unitary_as_naive() {
        let program = vec![rot("ZZZI", 0.4), rot("IXXY", -0.7), rot("YZIZ", 0.2)];
        let naive = synthesize_naive(&program);
        let rustiq = synthesize_rustiq_like(&program);
        let a = StateVector::from_circuit(&naive);
        let b = StateVector::from_circuit(&rustiq);
        assert!(
            a.approx_eq_up_to_phase(&b, 1e-9),
            "rustiq baseline changed the unitary"
        );
    }

    #[test]
    fn beats_naive_on_dense_chemistry_blocks() {
        let paulis = [
            "XXXY", "XXYX", "XYXX", "YXXX", "YYYX", "YYXY", "YXYY", "XYYY",
        ];
        let program: Vec<PauliRotation> = paulis.iter().map(|p| rot(p, 0.2)).collect();
        let rustiq = synthesize_rustiq_like(&program);
        let naive = synthesize_naive(&program);
        assert!(rustiq.cnot_count() < naive.cnot_count());
    }

    #[test]
    fn pays_for_the_terminal_clifford_unlike_quclear() {
        use quclear_core::{compile, QuClearConfig};
        let program = vec![rot("ZZZZ", 0.3), rot("YYXX", 0.7), rot("XZXZ", 0.1)];
        let rustiq = synthesize_rustiq_like(&program);
        let quclear = compile(&program, &QuClearConfig::default());
        assert!(
            quclear.cnot_count() <= rustiq.cnot_count(),
            "QuCLEAR ({}) should not exceed Rustiq-like ({}) since it absorbs the Clifford",
            quclear.cnot_count(),
            rustiq.cnot_count()
        );
    }

    #[test]
    fn empty_program_is_empty_circuit() {
        assert!(synthesize_rustiq_like(&[]).is_empty());
    }
}

//! Naive (textbook) synthesis of Pauli-rotation programs, plus the
//! peephole-optimized variant that stands in for "Qiskit" in the evaluation.

use quclear_circuit::{optimize, Circuit};
use quclear_pauli::PauliRotation;

/// Synthesizes the textbook V-shaped circuit for every rotation: basis
/// changes, a CNOT ladder down the support, the `Rz`, and the mirrored
/// uncomputation. No optimization is applied — this is the "native" gate
/// count of Table II.
///
/// # Panics
///
/// Panics if the rotations act on different register sizes.
///
/// # Examples
///
/// ```
/// use quclear_baselines::synthesize_naive;
/// use quclear_pauli::PauliRotation;
///
/// let program = vec![PauliRotation::parse("ZZZZ", 0.3)?];
/// assert_eq!(synthesize_naive(&program).cnot_count(), 6);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn synthesize_naive(rotations: &[PauliRotation]) -> Circuit {
    let n = rotations
        .first()
        .map_or(0, quclear_pauli::PauliRotation::num_qubits);
    let mut qc = Circuit::new(n);
    for rotation in rotations {
        assert_eq!(rotation.num_qubits(), n, "register size mismatch");
        if rotation.is_trivial() {
            continue;
        }
        append_v_shape(&mut qc, rotation, None);
    }
    qc
}

/// The "Qiskit-like" baseline: naive synthesis followed by the peephole
/// optimizer (inverse cancellation, rotation merging, single-qubit fusion).
/// This plays the role of Qiskit optimization level 3 in Table III.
#[must_use]
pub fn synthesize_qiskit_like(rotations: &[PauliRotation]) -> Circuit {
    optimize(&synthesize_naive(rotations))
}

/// Appends one V-shaped Pauli-rotation gadget. The CNOT ladder runs down the
/// support in ascending qubit order unless an explicit order is given.
pub(crate) fn append_v_shape(qc: &mut Circuit, rotation: &PauliRotation, order: Option<&[usize]>) {
    let n = rotation.num_qubits();
    let basis = quclear_core_basis(n, rotation);
    let support = match order {
        Some(order) => order.to_vec(),
        None => rotation.pauli().support(),
    };
    let mut ladder = Circuit::new(n);
    for pair in support.windows(2) {
        ladder.cx(pair[0], pair[1]);
    }
    qc.append(&basis);
    qc.append(&ladder);
    qc.rz(
        *support.last().expect("non-trivial rotation has support"),
        rotation.angle(),
    );
    qc.append(&ladder.inverse());
    qc.append(&basis.inverse());
}

/// Basis-change layer (H for X, S†H for Y) for a rotation.
fn quclear_core_basis(n: usize, rotation: &PauliRotation) -> Circuit {
    let mut circuit = Circuit::new(n);
    for (q, op) in rotation.pauli().ops() {
        match op {
            quclear_pauli::PauliOp::X => circuit.h(q),
            quclear_pauli::PauliOp::Y => {
                circuit.sdg(q);
                circuit.h(q);
            }
            _ => {}
        }
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rot(s: &str, a: f64) -> PauliRotation {
        PauliRotation::parse(s, a).unwrap()
    }

    #[test]
    fn native_counts_match_rotation_cost_model() {
        let program = vec![rot("ZZZZ", 0.1), rot("XYZI", 0.2), rot("IIXX", 0.3)];
        let circuit = synthesize_naive(&program);
        let expected_cnots: usize = program.iter().map(PauliRotation::native_cnot_cost).sum();
        let expected_singles: usize = program
            .iter()
            .map(PauliRotation::native_single_qubit_cost)
            .sum();
        assert_eq!(circuit.cnot_count(), expected_cnots);
        assert_eq!(circuit.single_qubit_count(), expected_singles);
    }

    #[test]
    fn trivial_rotations_are_skipped() {
        let program = vec![rot("III", 0.5), rot("ZZI", 0.0)];
        assert!(synthesize_naive(&program).is_empty());
    }

    #[test]
    fn qiskit_like_cancels_adjacent_identical_gadgets() {
        // Two identical ZZ gadgets: the inner CX pair cancels and the Rz merge.
        let program = vec![rot("ZZ", 0.3), rot("ZZ", 0.4)];
        let naive = synthesize_naive(&program);
        let optimized = synthesize_qiskit_like(&program);
        assert_eq!(naive.cnot_count(), 4);
        assert_eq!(optimized.cnot_count(), 2);
    }

    #[test]
    fn qiskit_like_never_increases_counts() {
        let program = vec![
            rot("XXII", 0.1),
            rot("IXXI", 0.2),
            rot("IIXX", 0.3),
            rot("ZZZZ", 0.4),
        ];
        let naive = synthesize_naive(&program);
        let optimized = synthesize_qiskit_like(&program);
        assert!(optimized.cnot_count() <= naive.cnot_count());
        assert!(optimized.single_qubit_count() <= naive.single_qubit_count());
    }

    #[test]
    fn empty_program_is_empty_circuit() {
        assert!(synthesize_naive(&[]).is_empty());
    }
}

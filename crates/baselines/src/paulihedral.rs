//! A Paulihedral-like baseline: block-wise synthesis with gate cancellation.
//!
//! Paulihedral (Li et al., ASPLOS 2022) groups rotations into blocks of
//! mutually commuting Pauli strings and orders/synthesizes them so that the
//! CNOT ladders of adjacent gadgets share structure and cancel. This
//! re-implementation captures that core idea:
//!
//! 1. rotations are grouped into commuting blocks,
//! 2. inside each block the rotations are ordered greedily to maximize
//!    support overlap between neighbours,
//! 3. each gadget's CNOT ladder is ordered so that qubits shared with the
//!    next gadget sit at the bottom of the ladder (maximizing suffix/prefix
//!    cancellation),
//! 4. the peephole pass removes the cancelled gate pairs.
//!
//! Like the original, it preserves the full unitary: nothing is deferred to
//! classical post-processing.

use quclear_circuit::{optimize, Circuit};
use quclear_core::CommutingBlocks;
use quclear_pauli::{PauliRotation, PauliString};

use crate::naive::append_v_shape;

/// Synthesizes a rotation program with the Paulihedral-like block-wise
/// strategy (including the final peephole clean-up).
///
/// # Panics
///
/// Panics if the rotations act on different register sizes.
///
/// # Examples
///
/// ```
/// use quclear_baselines::{synthesize_naive, synthesize_paulihedral_like};
/// use quclear_pauli::PauliRotation;
///
/// let program = vec![
///     PauliRotation::parse("ZZZI", 0.3)?,
///     PauliRotation::parse("IZZZ", 0.5)?,
/// ];
/// let ph = synthesize_paulihedral_like(&program);
/// assert!(ph.cnot_count() <= synthesize_naive(&program).cnot_count());
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn synthesize_paulihedral_like(rotations: &[PauliRotation]) -> Circuit {
    let n = rotations
        .first()
        .map_or(0, quclear_pauli::PauliRotation::num_qubits);
    let blocks = CommutingBlocks::from_rotations(rotations);

    let mut qc = Circuit::new(n);
    for block in blocks.blocks() {
        let ordered = order_block(block);
        for (i, rotation) in ordered.iter().enumerate() {
            if rotation.is_trivial() {
                continue;
            }
            let next_support: Option<Vec<usize>> = ordered.get(i + 1).map(|r| r.pauli().support());
            let order = ladder_order(rotation.pauli(), next_support.as_deref());
            append_v_shape(&mut qc, rotation, Some(&order));
        }
    }
    optimize(&qc)
}

/// Orders the rotations of a commuting block greedily by support overlap with
/// the previously placed rotation (a lexicographic tie-break keeps the result
/// deterministic).
fn order_block(block: &[PauliRotation]) -> Vec<PauliRotation> {
    if block.len() <= 2 {
        return block.to_vec();
    }
    let mut remaining: Vec<PauliRotation> = block.to_vec();
    let mut ordered = Vec::with_capacity(block.len());
    // Start from the first rotation (input order matters for determinism).
    ordered.push(remaining.remove(0));
    while !remaining.is_empty() {
        let last = ordered
            .last()
            .expect("ordered is non-empty")
            .pauli()
            .clone();
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, r)| (i, overlap_score(&last, r.pauli())))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("remaining is non-empty");
        ordered.push(remaining.remove(best_idx));
    }
    ordered
}

/// Number of qubits where both strings carry the *same* non-identity
/// operator (those are the positions whose ladder gates can cancel), plus a
/// smaller credit for shared support with different operators.
fn overlap_score(a: &PauliString, b: &PauliString) -> usize {
    let mut same = 0;
    let mut shared = 0;
    for (qa, op_a) in a.ops() {
        let op_b = b.op(qa);
        if op_a.is_identity() || op_b.is_identity() {
            continue;
        }
        shared += 1;
        if op_a == op_b {
            same += 1;
        }
    }
    2 * same + shared
}

/// Orders a gadget's support so that the qubits shared with the next gadget
/// come first. The mirrored half of the gadget ends with the CNOTs over those
/// shared qubits, placing them directly against the next gadget's ladder head
/// so the peephole pass can cancel them.
fn ladder_order(pauli: &PauliString, next_support: Option<&[usize]>) -> Vec<usize> {
    let mut support = pauli.support();
    let Some(next) = next_support else {
        return support;
    };
    support.sort_by_key(|q| (!next.contains(q), *q));
    support
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::synthesize_naive;

    fn rot(s: &str, a: f64) -> PauliRotation {
        PauliRotation::parse(s, a).unwrap()
    }

    #[test]
    fn cancels_between_similar_neighbours() {
        // ZZZI and IZZZ share qubits 1,2 with identical operators; the
        // block-wise ladders should cancel at least one CNOT pair.
        let program = vec![rot("ZZZI", 0.3), rot("IZZZ", 0.5)];
        let ph = synthesize_paulihedral_like(&program);
        let naive = synthesize_naive(&program);
        assert!(
            ph.cnot_count() < naive.cnot_count(),
            "{} vs {}",
            ph.cnot_count(),
            naive.cnot_count()
        );
    }

    #[test]
    fn reorders_within_commuting_blocks_for_cancellation() {
        // The middle rotation is unrelated; reordering within the commuting
        // block should put the two ZZ-type rotations next to each other.
        let program = vec![rot("ZZII", 0.3), rot("IIZZ", 0.1), rot("ZZZZ", 0.5)];
        let ph = synthesize_paulihedral_like(&program);
        let naive = synthesize_naive(&program);
        assert!(ph.cnot_count() < naive.cnot_count());
    }

    #[test]
    fn never_worse_than_naive_on_uccsd_blocks() {
        let paulis = [
            "XXXY", "XXYX", "XYXX", "YXXX", "YYYX", "YYXY", "YXYY", "XYYY",
        ];
        let program: Vec<PauliRotation> = paulis.iter().map(|p| rot(p, 0.2)).collect();
        let ph = synthesize_paulihedral_like(&program);
        let naive = synthesize_naive(&program);
        assert!(ph.cnot_count() <= naive.cnot_count());
    }

    #[test]
    fn empty_and_trivial_programs() {
        assert!(synthesize_paulihedral_like(&[]).is_empty());
        assert!(synthesize_paulihedral_like(&[rot("II", 0.4)]).is_empty());
    }

    #[test]
    fn overlap_score_prefers_identical_operators() {
        let a: PauliString = "ZZXI".parse().unwrap();
        let b: PauliString = "ZZYI".parse().unwrap();
        let c: PauliString = "IIXZ".parse().unwrap();
        assert!(overlap_score(&a, &b) > overlap_score(&a, &c));
    }
}

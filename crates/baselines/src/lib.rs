//! Re-implementations of the compilers QuCLEAR is compared against.
//!
//! The paper's Table III compares QuCLEAR with Qiskit, t|ket⟩, Paulihedral,
//! Rustiq and Tetris. Those are external Python/C++/Rust packages; this crate
//! re-implements the *algorithmic core* of each so that the evaluation can
//! run inside a self-contained Rust workspace (see DESIGN.md §2.4 for the
//! mapping and the caveats):
//!
//! * [`synthesize_naive`] — textbook per-rotation synthesis (the "native"
//!   gate counts of Table II),
//! * [`synthesize_qiskit_like`] — naive synthesis + peephole optimization
//!   (the "Qiskit" column),
//! * [`synthesize_paulihedral_like`] — block-wise gate cancellation
//!   (the "PH" column),
//! * [`synthesize_rustiq_like`] — greedy Pauli-network synthesis with a
//!   terminal Clifford paid in gates (the "Rustiq" column),
//! * [`synthesize_tket_like`] — simultaneous diagonalization of commuting
//!   sets (the "tket" column).
//!
//! Every baseline implements the *full* unitary of the input program (unlike
//! QuCLEAR, which defers its terminal Clifford to classical post-processing);
//! this is verified against the state-vector simulator in the tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod naive;
mod paulihedral;
mod rustiq;
mod tket;

pub use naive::{synthesize_naive, synthesize_qiskit_like};
pub use paulihedral::synthesize_paulihedral_like;
pub use rustiq::synthesize_rustiq_like;
pub use tket::{diagonalize_commuting_set, synthesize_tket_like, Diagonalization};

/// The compilation methods compared in the evaluation, including QuCLEAR
/// itself (useful for iterating over all columns of Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// QuCLEAR (Clifford Extraction + Absorption).
    QuClear,
    /// Naive synthesis + peephole ("Qiskit").
    QiskitLike,
    /// Greedy Pauli-network synthesis ("Rustiq").
    RustiqLike,
    /// Block-wise gate cancellation ("Paulihedral").
    PaulihedralLike,
    /// Simultaneous diagonalization ("tket").
    TketLike,
}

impl Method {
    /// All methods, in the column order of Table III.
    pub const ALL: [Method; 5] = [
        Method::QuClear,
        Method::QiskitLike,
        Method::RustiqLike,
        Method::PaulihedralLike,
        Method::TketLike,
    ];

    /// Short display name (matching the paper's column headers).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Method::QuClear => "QuCLEAR",
            Method::QiskitLike => "Qiskit",
            Method::RustiqLike => "Rustiq",
            Method::PaulihedralLike => "PH",
            Method::TketLike => "tket",
        }
    }

    /// Compiles a rotation program with this method and returns the circuit
    /// whose gate counts the evaluation reports. For QuCLEAR this is the
    /// optimized circuit *after* Clifford absorption (the extracted Clifford
    /// is processed classically); for every baseline it is the full circuit.
    #[must_use]
    pub fn compile(&self, rotations: &[quclear_pauli::PauliRotation]) -> quclear_circuit::Circuit {
        match self {
            Method::QuClear => {
                quclear_core::compile(rotations, &quclear_core::QuClearConfig::default()).optimized
            }
            Method::QiskitLike => synthesize_qiskit_like(rotations),
            Method::RustiqLike => synthesize_rustiq_like(rotations),
            Method::PaulihedralLike => synthesize_paulihedral_like(rotations),
            Method::TketLike => synthesize_tket_like(rotations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_match_paper_columns() {
        let names: Vec<&str> = Method::ALL.iter().map(Method::name).collect();
        assert_eq!(names, vec!["QuCLEAR", "Qiskit", "Rustiq", "PH", "tket"]);
    }

    #[test]
    fn all_methods_compile_a_small_program() {
        let program = vec![
            quclear_pauli::PauliRotation::parse("ZZI", 0.3).unwrap(),
            quclear_pauli::PauliRotation::parse("IXX", 0.5).unwrap(),
        ];
        for method in Method::ALL {
            let circuit = method.compile(&program);
            assert!(circuit.num_qubits() == 3, "{}", method.name());
        }
    }
}

//! A t|ket⟩-like baseline: simultaneous diagonalization of commuting Pauli
//! sets (Cowtan et al., "Phase gadget synthesis" / "A generic compilation
//! strategy for the UCC ansatz").
//!
//! Rotations are grouped into blocks of mutually commuting Pauli strings.
//! For each block a Clifford circuit `C` is constructed such that every
//! string in the block becomes Z-only under conjugation; the block is then
//! implemented as `C · (Z-rotation ladders) · C†`, with the peephole pass
//! cancelling gates between adjacent ladders.

use quclear_circuit::{optimize, Circuit, Gate};
use quclear_core::CommutingBlocks;
use quclear_pauli::{PauliOp, PauliRotation, SignedPauli};
use quclear_tableau::conjugate_pauli_by_gate;

/// Synthesizes a rotation program with the simultaneous-diagonalization
/// strategy (including the final peephole clean-up).
///
/// # Panics
///
/// Panics if the rotations act on different register sizes.
///
/// # Examples
///
/// ```
/// use quclear_baselines::synthesize_tket_like;
/// use quclear_pauli::PauliRotation;
///
/// let program = vec![
///     PauliRotation::parse("XXI", 0.3)?,
///     PauliRotation::parse("IXX", 0.5)?,
/// ];
/// let circuit = synthesize_tket_like(&program);
/// assert!(circuit.cnot_count() <= 8);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn synthesize_tket_like(rotations: &[PauliRotation]) -> Circuit {
    let n = rotations
        .first()
        .map_or(0, quclear_pauli::PauliRotation::num_qubits);
    let blocks = CommutingBlocks::from_rotations(rotations);

    let mut qc = Circuit::new(n);
    for block in blocks.blocks() {
        let non_trivial: Vec<&PauliRotation> = block.iter().filter(|r| !r.is_trivial()).collect();
        if non_trivial.is_empty() {
            continue;
        }
        let paulis: Vec<SignedPauli> = non_trivial
            .iter()
            .map(|r| SignedPauli::positive(r.pauli().clone()))
            .collect();
        let diag = diagonalize_commuting_set(n, &paulis);

        // Block implementation: C, the diagonal rotations, then C†.
        qc.append(&diag.circuit);
        for (rotation, diagonalized) in non_trivial.iter().zip(&diag.transformed) {
            let angle = rotation.angle() * diagonalized.sign();
            let support = diagonalized.pauli().support();
            if support.is_empty() {
                continue;
            }
            let mut ladder = Circuit::new(n);
            for pair in support.windows(2) {
                ladder.cx(pair[0], pair[1]);
            }
            qc.append(&ladder);
            qc.rz(*support.last().expect("non-empty support"), angle);
            qc.append(&ladder.inverse());
        }
        qc.append(&diag.circuit.inverse());
    }
    optimize(&qc)
}

/// The result of diagonalizing a commuting Pauli set.
#[derive(Clone, Debug)]
pub struct Diagonalization {
    /// The Clifford circuit `C` such that `C P C†` is Z-only for every input.
    pub circuit: Circuit,
    /// The transformed (Z-only, signed) Pauli strings, in input order.
    pub transformed: Vec<SignedPauli>,
}

/// Finds a Clifford circuit that simultaneously maps every Pauli in a
/// mutually commuting set to a Z-only string.
///
/// # Panics
///
/// Panics if the input strings do not all commute pairwise or act on
/// different register sizes.
#[must_use]
pub fn diagonalize_commuting_set(n: usize, paulis: &[SignedPauli]) -> Diagonalization {
    for (i, a) in paulis.iter().enumerate() {
        assert_eq!(a.num_qubits(), n, "register size mismatch");
        for b in &paulis[i + 1..] {
            assert!(
                a.commutes_with(b),
                "diagonalize_commuting_set requires a mutually commuting set ({a} vs {b})"
            );
        }
    }

    let mut working: Vec<SignedPauli> = paulis.to_vec();
    let mut gates: Vec<Gate> = Vec::new();
    let apply = |gate: Gate, working: &mut Vec<SignedPauli>, gates: &mut Vec<Gate>| {
        for p in working.iter_mut() {
            *p = conjugate_pauli_by_gate(p, &gate);
        }
        gates.push(gate);
    };

    for q in 0..n {
        // Find a Pauli with an X component at q (an unprocessed column).
        let Some(idx) = working
            .iter()
            .position(|p| matches!(p.pauli().op(q), PauliOp::X | PauliOp::Y))
        else {
            continue;
        };
        // Make the pivot carry a plain X at q.
        if working[idx].pauli().op(q) == PauliOp::Y {
            apply(Gate::S(q), &mut working, &mut gates);
        }
        // Clear the pivot's other columns: X/Y via CX(q→j), Z via CZ(q, j).
        loop {
            let pivot = working[idx].pauli().clone();
            let mut changed = false;
            for j in 0..n {
                if j == q {
                    continue;
                }
                match pivot.op(j) {
                    PauliOp::X | PauliOp::Y => {
                        if pivot.op(j) == PauliOp::Y {
                            apply(Gate::S(j), &mut working, &mut gates);
                        }
                        apply(
                            Gate::Cx {
                                control: q,
                                target: j,
                            },
                            &mut working,
                            &mut gates,
                        );
                        changed = true;
                        break;
                    }
                    PauliOp::Z => {
                        apply(Gate::Cz { a: q, b: j }, &mut working, &mut gates);
                        changed = true;
                        break;
                    }
                    PauliOp::I => {}
                }
            }
            if !changed {
                break;
            }
        }
        // The pivot now has q as its only non-identity column among the
        // unprocessed qubits (the ladder CNOTs may have turned the X back
        // into a Y); normalize to X and turn it into Z with a Hadamard.
        // Every other member commutes with the pivot, so after the Hadamard
        // all members are I/Z at q.
        if working[idx].pauli().op(q) == PauliOp::Y {
            apply(Gate::S(q), &mut working, &mut gates);
        }
        apply(Gate::H(q), &mut working, &mut gates);
    }

    debug_assert!(
        working.iter().all(|p| p.pauli().x_bits().is_zero()),
        "diagonalization failed to clear all X components"
    );

    // The conjugations applied were P ↦ g P g† in time order, so the final
    // strings satisfy P' = C P C† with C the accumulated gate list as a
    // circuit. Since exp(-iθ/2·P) = C† · exp(-iθ/2·P') · C, a block is
    // implemented as the circuit [C][Z-rotation ladders][C†] in time order,
    // which is exactly how `synthesize_tket_like` uses the result.
    let mut forward = Circuit::new(n);
    forward.extend(gates.iter().copied());
    let transformed = working;
    Diagonalization {
        circuit: forward,
        transformed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::synthesize_naive;
    use quclear_sim::StateVector;
    use quclear_tableau::CliffordTableau;

    fn rot(s: &str, a: f64) -> PauliRotation {
        PauliRotation::parse(s, a).unwrap()
    }

    #[test]
    fn diagonalization_produces_z_only_strings() {
        let set: Vec<SignedPauli> = ["XXII", "IXXI", "IIXX", "ZZZZ"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let diag = diagonalize_commuting_set(4, &set);
        for p in &diag.transformed {
            assert!(p.pauli().x_bits().is_zero(), "{p} is not Z-only");
        }
        // The transformation must match the returned circuit: P' = C P C†.
        let map = CliffordTableau::from_circuit(&diag.circuit);
        for (orig, trans) in set.iter().zip(&diag.transformed) {
            assert_eq!(&map.apply_signed(orig), trans);
        }
    }

    #[test]
    fn diagonalization_of_single_string() {
        let set: Vec<SignedPauli> = vec!["XYZX".parse().unwrap()];
        let diag = diagonalize_commuting_set(4, &set);
        assert!(diag.transformed[0].pauli().x_bits().is_zero());
    }

    #[test]
    fn tket_like_implements_the_same_unitary() {
        let program = vec![
            rot("XXI", 0.4),
            rot("IXX", -0.3),
            rot("ZZZ", 0.8),
            rot("YIY", 0.25),
        ];
        let reference = StateVector::from_circuit(&synthesize_naive(&program));
        let tket = StateVector::from_circuit(&synthesize_tket_like(&program));
        assert!(reference.approx_eq_up_to_phase(&tket, 1e-9));
    }

    #[test]
    fn tket_like_beats_naive_on_commuting_families() {
        // Large commuting family (QAOA problem layer on a dense graph).
        let mut program = Vec::new();
        for a in 0..5usize {
            for b in a + 1..5 {
                let mut p = quclear_pauli::PauliString::identity(5);
                p.set_op(a, PauliOp::Z);
                p.set_op(b, PauliOp::Z);
                program.push(PauliRotation::new(p, 0.2 + 0.01 * (a + b) as f64));
            }
        }
        let naive = synthesize_naive(&program);
        let tket = synthesize_tket_like(&program);
        assert!(tket.cnot_count() <= naive.cnot_count());
    }

    #[test]
    #[should_panic(expected = "commuting")]
    fn rejects_anticommuting_sets() {
        let set: Vec<SignedPauli> = vec!["XI".parse().unwrap(), "ZI".parse().unwrap()];
        let _ = diagonalize_commuting_set(2, &set);
    }

    #[test]
    fn empty_program_is_empty_circuit() {
        assert!(synthesize_tket_like(&[]).is_empty());
    }
}

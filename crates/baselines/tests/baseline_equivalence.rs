//! Every baseline must implement exactly the unitary of the input program;
//! this is checked against the naive reference with the state-vector
//! simulator on random programs.

use proptest::prelude::*;
use quclear_baselines::{
    synthesize_naive, synthesize_paulihedral_like, synthesize_qiskit_like, synthesize_rustiq_like,
    synthesize_tket_like,
};
use quclear_pauli::{PauliOp, PauliRotation, PauliString};
use quclear_sim::StateVector;

fn rotation_strategy(n: usize, len: usize) -> impl Strategy<Value = Vec<PauliRotation>> {
    let single = (prop::collection::vec(0u8..4, n), -2.5f64..2.5).prop_map(move |(ops, angle)| {
        let ops: Vec<PauliOp> = ops
            .into_iter()
            .map(|v| match v {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        PauliRotation::new(PauliString::from_ops(&ops), angle)
    });
    prop::collection::vec(single, 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn qiskit_like_preserves_the_unitary(program in rotation_strategy(4, 6)) {
        let reference = StateVector::from_circuit(&synthesize_naive(&program));
        let circuit = synthesize_qiskit_like(&program);
        prop_assert!(StateVector::from_circuit(&circuit).approx_eq_up_to_phase(&reference, 1e-8));
    }

    #[test]
    fn paulihedral_like_preserves_the_unitary(program in rotation_strategy(4, 6)) {
        let reference = StateVector::from_circuit(&synthesize_naive(&program));
        let circuit = synthesize_paulihedral_like(&program);
        prop_assert!(StateVector::from_circuit(&circuit).approx_eq_up_to_phase(&reference, 1e-8));
    }

    #[test]
    fn rustiq_like_preserves_the_unitary(program in rotation_strategy(4, 6)) {
        let reference = StateVector::from_circuit(&synthesize_naive(&program));
        let circuit = synthesize_rustiq_like(&program);
        prop_assert!(StateVector::from_circuit(&circuit).approx_eq_up_to_phase(&reference, 1e-8));
    }

    #[test]
    fn tket_like_preserves_the_unitary(program in rotation_strategy(4, 6)) {
        let reference = StateVector::from_circuit(&synthesize_naive(&program));
        let circuit = synthesize_tket_like(&program);
        prop_assert!(StateVector::from_circuit(&circuit).approx_eq_up_to_phase(&reference, 1e-8));
    }
}

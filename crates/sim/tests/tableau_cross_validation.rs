//! Cross-validation of the Clifford tableau against the state-vector
//! simulator: for random Clifford circuits `U` and random Pauli strings `P`,
//! the tableau's claim `U·P·U† = ±P'` must hold as an operator identity on
//! states.

use proptest::prelude::*;
use quclear_circuit::Circuit;
use quclear_pauli::{PauliOp, PauliString};
use quclear_sim::StateVector;
use quclear_tableau::{random_clifford_circuit, synthesize_clifford, CliffordTableau};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4;

fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(0u8..4, n).prop_map(|ops| {
        let ops: Vec<PauliOp> = ops
            .into_iter()
            .map(|v| match v {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        PauliString::from_ops(&ops)
    })
}

/// Builds a random non-Clifford state-preparation circuit so that the check
/// is not trivially satisfied on stabilizer states.
fn preparation_circuit(seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = random_clifford_circuit(N, 6, &mut rng);
    c.rz(0, 0.37);
    c.ry(1, 1.21);
    c.rx(2, 2.05);
    c.rz(3, 0.64);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ⟨ψ|U† P U|ψ⟩ computed through the tableau (as ±P' on U|ψ⟩… wait, as
    /// the conjugated observable on |ψ⟩) matches direct simulation.
    #[test]
    fn tableau_conjugation_matches_statevector(
        seed in 0u64..512,
        pauli in pauli_string(N),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let clifford = random_clifford_circuit(N, 18, &mut rng);
        let prep = preparation_circuit(seed.wrapping_mul(31).wrapping_add(7));

        // Direct: ⟨ψ| U† P U |ψ⟩ where |ψ⟩ = prep|0⟩.
        let mut with_clifford = prep.clone();
        with_clifford.append(&clifford);
        let state_after_clifford = StateVector::from_circuit(&with_clifford);
        let direct = state_after_clifford.expectation(&pauli);

        // Via the tableau: ⟨ψ| (U† P U) |ψ⟩ with U† P U from the Heisenberg map.
        let heisenberg = CliffordTableau::heisenberg_from_circuit(&clifford);
        let conjugated = heisenberg.apply(&pauli);
        let state = StateVector::from_circuit(&prep);
        let via_tableau = state.expectation_signed(&conjugated);

        prop_assert!(
            (direct - via_tableau).abs() < 1e-9,
            "direct {direct} vs tableau {via_tableau} for {pauli}"
        );
    }

    /// Synthesizing a tableau gives a circuit that acts identically on
    /// non-stabilizer states (up to global phase).
    #[test]
    fn synthesis_matches_statevector(seed in 0u64..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let clifford = random_clifford_circuit(N, 15, &mut rng);
        let resynth = synthesize_clifford(&CliffordTableau::from_circuit(&clifford));

        let prep = preparation_circuit(seed.wrapping_add(99));
        let mut original = prep.clone();
        original.append(&clifford);
        let mut rebuilt = prep;
        rebuilt.append(&resynth);

        let a = StateVector::from_circuit(&original);
        let b = StateVector::from_circuit(&rebuilt);
        prop_assert!(a.approx_eq_up_to_phase(&b, 1e-9));
    }

    /// The word-parallel frame conjugation (the bit-plane kernel behind both
    /// the tableau and the extraction lookahead) is validated against the
    /// state-vector simulator: for every row `P` of a random batch, the
    /// frame's claim `U·P·U† = ±P'` must hold as an expectation identity
    /// ⟨ψ|U P U†|ψ⟩ = ±⟨ψ|P'|ψ⟩ on non-stabilizer states.
    #[test]
    fn frame_conjugation_matches_statevector(
        seed in 0u64..256,
        rows in prop::collection::vec(pauli_string(N), 1..8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(13).wrapping_add(41));
        let clifford = random_clifford_circuit(N, 15, &mut rng);
        let signed: Vec<quclear_pauli::SignedPauli> =
            rows.iter().cloned().map(quclear_pauli::SignedPauli::positive).collect();
        let mut frame = quclear_pauli::PauliFrame::from_signed(N, &signed);
        for gate in clifford.gates() {
            quclear_tableau::conjugate_all_by_gate(&mut frame, gate);
        }

        let prep = preparation_circuit(seed.wrapping_mul(7).wrapping_add(3));
        let psi = StateVector::from_circuit(&prep);
        // |φ⟩ = U†|ψ⟩ so that ⟨φ|P|φ⟩ = ⟨ψ|U P U†|ψ⟩.
        let mut prep_then_u_dagger = prep.clone();
        prep_then_u_dagger.append(&clifford.inverse());
        let phi = StateVector::from_circuit(&prep_then_u_dagger);

        for (i, row) in rows.iter().enumerate() {
            let direct = phi.expectation(row);
            let via_frame = psi.expectation_signed(&frame.get(i));
            prop_assert!(
                (direct - via_frame).abs() < 1e-9,
                "row {i}: direct {direct} vs frame {via_frame}"
            );
        }
    }

    /// The peephole optimizer preserves the unitary action on states.
    #[test]
    fn peephole_optimizer_preserves_state(seed in 0u64..256) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(5000));
        let mut circuit = random_clifford_circuit(N, 20, &mut rng);
        circuit.rz(0, 0.3);
        circuit.rz(0, 0.4);
        circuit.cx(0, 1);
        circuit.cx(0, 1);
        circuit.rx(2, -0.3);
        let optimized = quclear_circuit::optimize(&circuit);
        let a = StateVector::from_circuit(&circuit);
        let b = StateVector::from_circuit(&optimized);
        prop_assert!(a.approx_eq_up_to_phase(&b, 1e-9), "optimizer changed the state");
        prop_assert!(optimized.len() <= circuit.len());
    }
}

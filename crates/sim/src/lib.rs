//! Dense state-vector simulator for the QuCLEAR reproduction.
//!
//! The simulator is the correctness oracle of the workspace: every
//! optimization (Clifford Extraction, Clifford Absorption, the peephole
//! optimizer, the baselines) is validated by checking that the optimized
//! circuit — together with any classical post-processing — reproduces the
//! original circuit's expectation values and probability distributions on
//! small instances.
//!
//! # Examples
//!
//! ```
//! use quclear_circuit::Circuit;
//! use quclear_sim::StateVector;
//!
//! let mut qc = Circuit::new(2);
//! qc.h(0);
//! qc.cx(0, 1);
//! let state = StateVector::from_circuit(&qc);
//! let probs = state.probabilities();
//! assert!((probs[0] - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod state;

pub use state::StateVector;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_vector_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StateVector>();
    }
}

//! Dense state-vector simulation.

use quclear_circuit::math::{single_qubit_matrix, C64};
use quclear_circuit::{Circuit, Gate};
use quclear_pauli::{PauliRotation, PauliString, SignedPauli};
use rand::Rng;

/// A dense `2^n`-amplitude quantum state.
///
/// Basis-state indexing is little-endian in the qubit number: qubit `q`
/// corresponds to bit `q` of the index, so index `0b011` on three qubits means
/// qubit 0 = 1, qubit 1 = 1, qubit 2 = 0. Helper methods convert to the
/// left-to-right bitstring convention used for Pauli strings.
///
/// # Examples
///
/// ```
/// use quclear_circuit::Circuit;
/// use quclear_sim::StateVector;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0);
/// bell.cx(0, 1);
/// let state = StateVector::from_circuit(&bell);
/// let zz: quclear_pauli::PauliString = "ZZ".parse()?;
/// assert!((state.expectation(&zz) - 1.0).abs() < 1e-12);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, Debug)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 26` (guarding against accidental huge
    /// allocations in tests and benches).
    #[must_use]
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 26,
            "state vector of {num_qubits} qubits is too large"
        );
        let mut amps = vec![C64::ZERO; 1 << num_qubits];
        amps[0] = C64::ONE;
        StateVector { num_qubits, amps }
    }

    /// Runs `circuit` on `|0…0⟩` and returns the resulting state.
    #[must_use]
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut state = StateVector::zero_state(circuit.num_qubits());
        state.apply_circuit(circuit);
        state
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitudes (little-endian basis ordering).
    #[must_use]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies a single gate in place.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match *gate {
            Gate::Cx { control, target } => {
                let cm = 1usize << control;
                let tm = 1usize << target;
                for i in 0..self.amps.len() {
                    if i & cm != 0 && i & tm == 0 {
                        self.amps.swap(i, i | tm);
                    }
                }
            }
            Gate::Cz { a, b } => {
                let am = 1usize << a;
                let bm = 1usize << b;
                for (i, amp) in self.amps.iter_mut().enumerate() {
                    if i & am != 0 && i & bm != 0 {
                        *amp = -*amp;
                    }
                }
            }
            Gate::Swap { a, b } => {
                let am = 1usize << a;
                let bm = 1usize << b;
                for i in 0..self.amps.len() {
                    if i & am != 0 && i & bm == 0 {
                        self.amps.swap(i, (i & !am) | bm);
                    }
                }
            }
            ref g => {
                let q = g.qubits()[0];
                let u = single_qubit_matrix(g);
                let qm = 1usize << q;
                for i in 0..self.amps.len() {
                    if i & qm == 0 {
                        let a0 = self.amps[i];
                        let a1 = self.amps[i | qm];
                        self.amps[i] = u.m[0][0] * a0 + u.m[0][1] * a1;
                        self.amps[i | qm] = u.m[1][0] * a0 + u.m[1][1] * a1;
                    }
                }
            }
        }
    }

    /// Applies every gate of a circuit in time order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit acts on a different number of qubits.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "circuit qubit count does not match the state"
        );
        for gate in circuit.gates() {
            self.apply_gate(gate);
        }
    }

    /// Applies a Pauli string to the state, returning a new state `P|ψ⟩`.
    #[must_use]
    pub fn apply_pauli(&self, pauli: &PauliString) -> StateVector {
        assert_eq!(pauli.num_qubits(), self.num_qubits);
        let mut x_mask = 0usize;
        let mut z_mask = 0usize;
        let mut y_count = 0u32;
        for (q, op) in pauli.ops() {
            let (x, z) = op.xz();
            if x {
                x_mask |= 1 << q;
            }
            if z {
                z_mask |= 1 << q;
            }
            if x && z {
                y_count += 1;
            }
        }
        // Global i^{#Y} factor of the literal Pauli.
        let global = match y_count % 4 {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        };
        let mut out = vec![C64::ZERO; self.amps.len()];
        for (i, amp) in self.amps.iter().enumerate() {
            let z_parity = (i & z_mask).count_ones() % 2;
            let phase = if z_parity == 1 { -C64::ONE } else { C64::ONE };
            out[i ^ x_mask] = global * phase * *amp;
        }
        StateVector {
            num_qubits: self.num_qubits,
            amps: out,
        }
    }

    /// Applies the Pauli rotation `exp(-i·θ/2·P)` to the state in place:
    /// `cos(θ/2)·|ψ⟩ − i·sin(θ/2)·P|ψ⟩`.
    ///
    /// This simulates a rotation *exactly* (one Pauli application and a
    /// linear combination) without synthesizing it into gates, so rotation
    /// programs — including the lifted programs produced by
    /// `quclear_core::lift` — can be validated directly against circuits.
    ///
    /// # Panics
    ///
    /// Panics if the rotation acts on a different number of qubits.
    ///
    /// # Examples
    ///
    /// ```
    /// use quclear_circuit::Circuit;
    /// use quclear_pauli::PauliRotation;
    /// use quclear_sim::StateVector;
    ///
    /// // A weight-1 Z rotation is literally an Rz gate.
    /// let mut via_rotation = StateVector::zero_state(1);
    /// let mut h = Circuit::new(1);
    /// h.h(0);
    /// via_rotation.apply_circuit(&h);
    /// via_rotation.apply_rotation(&PauliRotation::parse("Z", 0.7)?);
    ///
    /// let mut circuit = Circuit::new(1);
    /// circuit.h(0);
    /// circuit.rz(0, 0.7);
    /// let via_circuit = StateVector::from_circuit(&circuit);
    /// assert!(via_rotation.approx_eq_up_to_phase(&via_circuit, 1e-12));
    /// # Ok::<(), quclear_pauli::ParsePauliError>(())
    /// ```
    pub fn apply_rotation(&mut self, rotation: &PauliRotation) {
        assert_eq!(
            rotation.num_qubits(),
            self.num_qubits,
            "rotation qubit count does not match the state"
        );
        if rotation.is_trivial() && !rotation.pauli().is_identity() {
            return;
        }
        if rotation.pauli().is_identity() {
            // exp(-i·θ/2·I) is a global phase.
            let phase = C64 {
                re: (rotation.angle() / 2.0).cos(),
                im: -(rotation.angle() / 2.0).sin(),
            };
            for amp in &mut self.amps {
                *amp = phase * *amp;
            }
            return;
        }
        let p_psi = self.apply_pauli(rotation.pauli());
        let c = (rotation.angle() / 2.0).cos();
        let s = (rotation.angle() / 2.0).sin();
        let minus_i_s = C64 { re: 0.0, im: -s };
        for (amp, p_amp) in self.amps.iter_mut().zip(&p_psi.amps) {
            *amp = amp.scale(c) + minus_i_s * *p_amp;
        }
    }

    /// Applies every rotation of a program in time order.
    ///
    /// # Panics
    ///
    /// Panics if any rotation acts on a different number of qubits.
    pub fn apply_rotations(&mut self, rotations: &[PauliRotation]) {
        for rotation in rotations {
            self.apply_rotation(rotation);
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different sizes.
    #[must_use]
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Expectation value `⟨ψ|P|ψ⟩` of a (Hermitian) Pauli string.
    #[must_use]
    pub fn expectation(&self, pauli: &PauliString) -> f64 {
        let p_psi = self.apply_pauli(pauli);
        self.inner_product(&p_psi).re
    }

    /// Expectation value of a signed Pauli observable.
    #[must_use]
    pub fn expectation_signed(&self, observable: &SignedPauli) -> f64 {
        observable.sign() * self.expectation(observable.pauli())
    }

    /// Measurement probabilities of every computational basis state.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sq()).collect()
    }

    /// Probability of measuring the given basis index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    #[must_use]
    pub fn probability_of(&self, index: usize) -> f64 {
        self.amps[index].norm_sq()
    }

    /// Returns `true` if the two states are equal up to a global phase.
    #[must_use]
    pub fn approx_eq_up_to_phase(&self, other: &StateVector, tol: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        // |⟨a|b⟩| must be 1 for pure states equal up to phase.
        let overlap = self.inner_product(other).norm();
        (overlap - 1.0).abs() < tol
    }

    /// Converts a basis index into the left-to-right bitstring convention
    /// (character `q` of the returned string is the value of qubit `q`).
    #[must_use]
    pub fn index_to_bitstring(&self, index: usize) -> String {
        (0..self.num_qubits)
            .map(|q| if index & (1 << q) != 0 { '1' } else { '0' })
            .collect()
    }

    /// Parses a left-to-right bitstring into a basis index.
    ///
    /// # Panics
    ///
    /// Panics if the string length does not match the qubit count or contains
    /// characters other than `0`/`1`.
    #[must_use]
    pub fn bitstring_to_index(&self, bits: &str) -> usize {
        assert_eq!(bits.len(), self.num_qubits, "bitstring length mismatch");
        let mut index = 0usize;
        for (q, c) in bits.chars().enumerate() {
            match c {
                '1' => index |= 1 << q,
                '0' => {}
                _ => panic!("invalid bitstring character `{c}`"),
            }
        }
        index
    }

    /// Total squared norm (should be 1 for a valid state).
    #[must_use]
    pub fn norm_sq(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sq()).sum()
    }

    /// Samples `shots` computational-basis measurement outcomes from the
    /// state's probability distribution (inverse-CDF sampling, one binary
    /// search per shot). Returned indices use the same little-endian
    /// convention as [`Self::probability_of`], so they can be packed
    /// directly into a bit-plane shot batch for CA-Post processing.
    #[must_use]
    pub fn sample_indices<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Vec<u64> {
        // Cumulative distribution; the final entry is clamped to 1 so a draw
        // of ~1.0 can never fall off the end from rounding.
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0f64;
        for amp in &self.amps {
            acc += amp.norm_sq();
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = f64::max(*last, 1.0);
        }
        (0..shots)
            .map(|_| {
                let draw: f64 = rng.gen_range(0.0..1.0);
                cdf.partition_point(|&c| c <= draw) as u64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> StateVector {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        StateVector::from_circuit(&c)
    }

    #[test]
    fn zero_state_probabilities() {
        let s = StateVector::zero_state(3);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
        assert!((s.norm_sq() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_tracks_the_distribution() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let state = bell();
        let mut rng = StdRng::seed_from_u64(11);
        let shots = state.sample_indices(4000, &mut rng);
        assert_eq!(shots.len(), 4000);
        // A Bell state only ever measures |00⟩ or |11⟩, roughly half-half.
        let ones = shots.iter().filter(|&&s| s == 0b11).count();
        assert!(shots.iter().all(|&s| s == 0 || s == 0b11));
        assert!((1500..=2500).contains(&ones), "{ones} out of 4000");
        // Deterministic in the seed.
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(state.sample_indices(4000, &mut rng), shots);
    }

    #[test]
    fn bell_state_has_correct_correlations() {
        let s = bell();
        let probs = s.probabilities();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[3] - 0.5).abs() < 1e-12);
        assert!(probs[1].abs() < 1e-12 && probs[2].abs() < 1e-12);
        assert!((s.expectation(&"ZZ".parse().unwrap()) - 1.0).abs() < 1e-12);
        assert!((s.expectation(&"XX".parse().unwrap()) - 1.0).abs() < 1e-12);
        assert!((s.expectation(&"YY".parse().unwrap()) + 1.0).abs() < 1e-12);
        assert!(s.expectation(&"ZI".parse().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn x_gate_flips_probability() {
        let mut c = Circuit::new(2);
        c.x(1);
        let s = StateVector::from_circuit(&c);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rz_only_adds_phase() {
        let mut c = Circuit::new(1);
        c.rz(0, 1.234);
        let s = StateVector::from_circuit(&c);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rx_rotation_probability() {
        let theta = 0.7f64;
        let mut c = Circuit::new(1);
        c.rx(0, theta);
        let s = StateVector::from_circuit(&c);
        assert!((s.probability_of(1) - (theta / 2.0).sin().powi(2)).abs() < 1e-12);
        // ⟨Z⟩ = cos θ.
        assert!((s.expectation(&"Z".parse().unwrap()) - theta.cos()).abs() < 1e-12);
    }

    #[test]
    fn pauli_rotation_expectation_matches_theory() {
        // exp(-iθ/2 Z⊗Z) on |++⟩: ⟨X⊗X⟩ stays 1? No — check ⟨Z⊗Z⟩ = 0 and
        // ⟨Y⊗X⟩ relation instead: e^{-iθ/2 ZZ} |++⟩ gives ⟨XX⟩ = cos... use a
        // simpler check: ⟨XI⟩ = cos θ.
        let theta = 0.9;
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        c.cx(0, 1);
        c.rz(1, theta);
        c.cx(0, 1);
        let s = StateVector::from_circuit(&c);
        assert!((s.expectation(&"XI".parse().unwrap()) - theta.cos()).abs() < 1e-10);
        assert!((s.expectation(&"IX".parse().unwrap()) - theta.cos()).abs() < 1e-10);
        assert!((s.expectation(&"XX".parse().unwrap()) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn swap_and_cz_act_correctly() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.swap(0, 1);
        let s = StateVector::from_circuit(&c);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);

        // CZ phase shows up in the X basis.
        let mut c = Circuit::new(2);
        c.h(0);
        c.x(1);
        c.cz(0, 1);
        c.h(0);
        let s = StateVector::from_circuit(&c);
        assert!((s.probability_of(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_pauli_y_phases() {
        let s = StateVector::zero_state(1);
        let y_applied = s.apply_pauli(&"Y".parse().unwrap());
        // Y|0⟩ = i|1⟩.
        assert!((y_applied.amplitudes()[1] - C64::I).norm() < 1e-12);
    }

    #[test]
    fn expectation_signed_flips_sign() {
        let s = bell();
        let obs: SignedPauli = "-ZZ".parse().unwrap();
        assert!((s.expectation_signed(&obs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn bitstring_conversion_roundtrip() {
        let s = StateVector::zero_state(4);
        for idx in [0usize, 1, 5, 15, 8] {
            let bits = s.index_to_bitstring(idx);
            assert_eq!(s.bitstring_to_index(&bits), idx);
        }
        assert_eq!(s.index_to_bitstring(0b0001), "1000");
    }

    #[test]
    fn circuit_and_inverse_give_identity() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rz(1, 0.8);
        c.ry(2, 0.4);
        c.cx(1, 2);
        let mut state = StateVector::from_circuit(&c);
        state.apply_circuit(&c.inverse());
        let zero = StateVector::zero_state(3);
        assert!(state.approx_eq_up_to_phase(&zero, 1e-10));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_circuit_panics() {
        let mut s = StateVector::zero_state(2);
        let c = Circuit::new(3);
        s.apply_circuit(&c);
    }
}

//! Scalar-oracle property tests for the wide-lane kernels.
//!
//! Every slice kernel of the `simd` shim is compared against its width-1
//! (plain `u64`) instantiation — the scalar oracle — at **every** supported
//! lane width, on lengths that are not multiples of any lane width. The
//! `BitVec` layer is then checked against a `Vec<bool>` oracle on lengths
//! that are not multiples of 64, so the masked final partial word and the
//! tail-padding invariant are exercised on every operation.

use proptest::prelude::*;
use quclear_pauli::BitVec;

/// Applies `f` to a fresh copy of `dst` and returns the result.
fn on_copy(dst: &[u64], f: impl Fn(&mut Vec<u64>)) -> Vec<u64> {
    let mut out = dst.to_vec();
    f(&mut out);
    out
}

fn bitvec(bools: &[bool]) -> BitVec {
    BitVec::from_bools(bools.iter().copied())
}

proptest! {
    /// Every in-place slice kernel agrees with the scalar (width-1) oracle
    /// at widths 2, 4 and 8, including on lengths with a partial final lane.
    #[test]
    fn slice_kernels_match_scalar_oracle(
        data in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..131),
    ) {
        let a: Vec<u64> = data.iter().map(|t| t.0).collect();
        let b: Vec<u64> = data.iter().map(|t| t.1).collect();
        let c: Vec<u64> = data.iter().map(|t| t.2).collect();
        let len = a.len();

        macro_rules! check2 {
            ($name:ident, $($src:expr),*) => {{
                let oracle = on_copy(&a, |d| simd::$name::<1>(d, $($src),*));
                prop_assert_eq!(&on_copy(&a, |d| simd::$name::<2>(d, $($src),*)), &oracle);
                prop_assert_eq!(&on_copy(&a, |d| simd::$name::<4>(d, $($src),*)), &oracle);
                prop_assert_eq!(&on_copy(&a, |d| simd::$name::<8>(d, $($src),*)), &oracle);
            }};
        }
        check2!(xor_into_w, &b);
        check2!(and_into_w, &b);
        check2!(or_into_w, &b);
        check2!(xor_and_into_w, &b, &c);
        check2!(xor_andnot_into_w, &b, &c);
        check2!(xor_many_into_w, &[&b[..], &c[..], &b[..]]);

        let pop_oracle = simd::popcount_w::<1>(&a);
        let and_oracle = simd::and_popcount_w::<1>(&a, &b);
        let fold_oracle = simd::xor_popcount_w::<1>(&[&a, &b, &c], len);
        prop_assert_eq!(simd::popcount_w::<2>(&a), pop_oracle);
        prop_assert_eq!(simd::popcount_w::<4>(&a), pop_oracle);
        prop_assert_eq!(simd::popcount_w::<8>(&a), pop_oracle);
        prop_assert_eq!(simd::and_popcount_w::<2>(&a, &b), and_oracle);
        prop_assert_eq!(simd::and_popcount_w::<4>(&a, &b), and_oracle);
        prop_assert_eq!(simd::and_popcount_w::<8>(&a, &b), and_oracle);
        prop_assert_eq!(simd::xor_popcount_w::<2>(&[&a, &b, &c], len), fold_oracle);
        prop_assert_eq!(simd::xor_popcount_w::<4>(&[&a, &b, &c], len), fold_oracle);
        prop_assert_eq!(simd::xor_popcount_w::<8>(&[&a, &b, &c], len), fold_oracle);
        // Empty source set: parity identically zero at every width.
        prop_assert_eq!(simd::xor_popcount_w::<8>(&[], len), 0);
    }

    /// The `BitVec` bulk operations agree with a per-bit `Vec<bool>` oracle
    /// on lengths with a masked final partial word, and all of them preserve
    /// the tail-padding invariant.
    #[test]
    fn bitvec_ops_match_bool_oracle(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 0..200),
    ) {
        let ab: Vec<bool> = pairs.iter().map(|p| p.0).collect();
        let bb: Vec<bool> = pairs.iter().map(|p| p.1).collect();
        let len = ab.len();
        let a = bitvec(&ab);
        let b = bitvec(&bb);

        prop_assert_eq!(a.count_ones(), ab.iter().filter(|&&x| x).count());
        let and_want = (0..len).filter(|&i| ab[i] && bb[i]).count();
        prop_assert_eq!(a.and_popcount(&b), and_want);
        prop_assert_eq!(a.and_parity(&b), and_want % 2 == 1);

        let mut x = a.clone();
        x.xor_with(&b);
        prop_assert_eq!(&x, &bitvec(&(0..len).map(|i| ab[i] ^ bb[i]).collect::<Vec<_>>()));
        prop_assert!(x.tail_is_clear());

        let mut o = a.clone();
        o.or_with(&b);
        prop_assert_eq!(&o, &bitvec(&(0..len).map(|i| ab[i] | bb[i]).collect::<Vec<_>>()));
        prop_assert!(o.tail_is_clear());

        let mut s = BitVec::zeros(len);
        s.xor_with_and(&a, &b);
        prop_assert_eq!(&s, &bitvec(&(0..len).map(|i| ab[i] & bb[i]).collect::<Vec<_>>()));
        let mut s = BitVec::zeros(len);
        s.xor_with_andnot(&a, &b);
        prop_assert_eq!(&s, &bitvec(&(0..len).map(|i| ab[i] & !bb[i]).collect::<Vec<_>>()));
        prop_assert!(s.tail_is_clear());

        let mut f = a.clone();
        f.flip_all();
        prop_assert_eq!(&f, &bitvec(&ab.iter().map(|&x| !x).collect::<Vec<_>>()));
        prop_assert!(f.tail_is_clear());
    }

    /// `xor_range` (masked ends + wide-lane interior) agrees with a per-bit
    /// oracle on arbitrary sub-ranges, including empty and full ranges.
    #[test]
    fn xor_range_matches_bool_oracle(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..200),
        lo in 0usize..1000,
        hi in 0usize..1000,
    ) {
        let ab: Vec<bool> = pairs.iter().map(|p| p.0).collect();
        let bb: Vec<bool> = pairs.iter().map(|p| p.1).collect();
        let len = ab.len();
        let mut start = lo % (len + 1);
        let mut end = hi % (len + 1);
        if start > end {
            std::mem::swap(&mut start, &mut end);
        }
        let mut got = bitvec(&ab);
        got.xor_range(&bitvec(&bb), start, end);
        let want: Vec<bool> = (0..len)
            .map(|i| ab[i] ^ ((start..end).contains(&i) && bb[i]))
            .collect();
        prop_assert_eq!(&got, &bitvec(&want));
        prop_assert!(got.tail_is_clear());
    }
}

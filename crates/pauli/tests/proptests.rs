//! Property-based tests for the Pauli algebra.

use proptest::prelude::*;
use quclear_pauli::{PauliOp, PauliString, SignedPauli};

/// Strategy producing a random Pauli string on `n` qubits.
fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(0u8..4, n).prop_map(|ops| {
        let ops: Vec<PauliOp> = ops
            .into_iter()
            .map(|v| match v {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        PauliString::from_ops(&ops)
    })
}

proptest! {
    /// Parsing the display form gives back the same Pauli string.
    #[test]
    fn display_parse_roundtrip(p in pauli_string(12)) {
        let parsed: PauliString = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    /// The commutation relation is symmetric.
    #[test]
    fn commutation_is_symmetric(a in pauli_string(8), b in pauli_string(8)) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
    }

    /// Every Pauli commutes with itself and with the identity.
    #[test]
    fn commutes_with_self_and_identity(a in pauli_string(10)) {
        prop_assert!(a.commutes_with(&a));
        prop_assert!(a.commutes_with(&PauliString::identity(10)));
    }

    /// P·P = I with no phase.
    #[test]
    fn self_product_is_identity(a in pauli_string(9)) {
        let (prod, phase) = a.mul(&a);
        prop_assert!(prod.is_identity());
        prop_assert_eq!(phase, 0);
    }

    /// Multiplication is associative, including phases.
    #[test]
    fn multiplication_is_associative(
        a in pauli_string(6),
        b in pauli_string(6),
        c in pauli_string(6),
    ) {
        let (ab, k_ab) = a.mul(&b);
        let (ab_c, k_ab_c) = ab.mul(&c);
        let left_phase = (k_ab + k_ab_c) % 4;

        let (bc, k_bc) = b.mul(&c);
        let (a_bc, k_a_bc) = a.mul(&bc);
        let right_phase = (k_bc + k_a_bc) % 4;

        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(left_phase, right_phase);
    }

    /// Commutation matches the phase relation: A·B = ±B·A, with + iff they
    /// commute.
    #[test]
    fn commutation_matches_product_phases(a in pauli_string(7), b in pauli_string(7)) {
        let (p1, k1) = a.mul(&b);
        let (p2, k2) = b.mul(&a);
        prop_assert_eq!(p1, p2);
        if a.commutes_with(&b) {
            prop_assert_eq!(k1, k2);
        } else {
            prop_assert_eq!((k1 + 2) % 4, k2);
        }
    }

    /// Weight equals the size of the support and is bounded by qubit count.
    #[test]
    fn weight_equals_support_len(a in pauli_string(11)) {
        prop_assert_eq!(a.weight(), a.support().len());
        prop_assert!(a.weight() <= a.num_qubits());
    }

    /// The op histogram sums to the number of qubits.
    #[test]
    fn histogram_sums_to_qubits(a in pauli_string(13)) {
        let (i, x, y, z) = a.op_histogram();
        prop_assert_eq!(i + x + y + z, 13);
        prop_assert_eq!(x + y + z, a.weight());
    }

    /// Signed Pauli multiplication by the identity is a no-op.
    #[test]
    fn signed_identity_is_neutral(a in pauli_string(5), neg in any::<bool>()) {
        let sp = SignedPauli::new(a, neg);
        let id = SignedPauli::identity(5);
        prop_assert_eq!(sp.mul(&id), sp.clone());
        prop_assert_eq!(id.mul(&sp), sp);
    }

    /// Restricting to the support and re-embedding reproduces the string.
    #[test]
    fn restrict_embed_roundtrip(a in pauli_string(10)) {
        let sup = a.support();
        if !sup.is_empty() {
            let r = a.restrict(&sup);
            prop_assert_eq!(r.embed(10, &sup), a);
        }
    }
}

//! Single-qubit Pauli operators.

use std::fmt;

/// A single-qubit Pauli operator.
///
/// The symplectic encoding used throughout the workspace is
/// `(x, z)` with `I = (0,0)`, `X = (1,0)`, `Y = (1,1)`, `Z = (0,1)`,
/// i.e. `Y` stands for the literal Hermitian Pauli `Y = i·X·Z`.
///
/// # Examples
///
/// ```
/// use quclear_pauli::PauliOp;
///
/// assert_eq!(PauliOp::from_xz(true, true), PauliOp::Y);
/// assert_eq!(PauliOp::Y.xz(), (true, true));
/// assert!(!PauliOp::X.commutes_with(PauliOp::Z));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum PauliOp {
    /// The identity operator.
    #[default]
    I,
    /// The Pauli X operator.
    X,
    /// The Pauli Y operator.
    Y,
    /// The Pauli Z operator.
    Z,
}

impl PauliOp {
    /// All four operators, in `I, X, Y, Z` order.
    pub const ALL: [PauliOp; 4] = [PauliOp::I, PauliOp::X, PauliOp::Y, PauliOp::Z];

    /// Builds an operator from its symplectic `(x, z)` bits.
    #[must_use]
    pub fn from_xz(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => PauliOp::I,
            (true, false) => PauliOp::X,
            (true, true) => PauliOp::Y,
            (false, true) => PauliOp::Z,
        }
    }

    /// Returns the symplectic `(x, z)` bits of the operator.
    #[must_use]
    pub fn xz(self) -> (bool, bool) {
        match self {
            PauliOp::I => (false, false),
            PauliOp::X => (true, false),
            PauliOp::Y => (true, true),
            PauliOp::Z => (false, true),
        }
    }

    /// Returns `true` for the identity operator.
    #[must_use]
    pub fn is_identity(self) -> bool {
        self == PauliOp::I
    }

    /// Returns `true` if the two single-qubit operators commute.
    ///
    /// Two non-identity Paulis commute exactly when they are equal.
    #[must_use]
    pub fn commutes_with(self, other: PauliOp) -> bool {
        self == PauliOp::I || other == PauliOp::I || self == other
    }

    /// Multiplies two single-qubit Paulis.
    ///
    /// Returns the resulting operator together with the exponent `k` (mod 4)
    /// such that `self · other = i^k · result`.
    ///
    /// # Examples
    ///
    /// ```
    /// use quclear_pauli::PauliOp;
    /// // X · Y = i Z
    /// assert_eq!(PauliOp::X.mul(PauliOp::Y), (PauliOp::Z, 1));
    /// // Y · X = -i Z
    /// assert_eq!(PauliOp::Y.mul(PauliOp::X), (PauliOp::Z, 3));
    /// ```
    #[must_use]
    #[allow(clippy::should_implement_trait)] // returns a phase alongside the product
    pub fn mul(self, other: PauliOp) -> (PauliOp, u8) {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        let result = PauliOp::from_xz(x1 ^ x2, z1 ^ z2);
        let g = phase_exponent(x1, z1, x2, z2);
        (result, g)
    }

    /// Parses an operator from its single-character name.
    ///
    /// Accepts upper- or lower-case `I`, `X`, `Y`, `Z`. Returns `None` for any
    /// other character.
    #[must_use]
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'I' => Some(PauliOp::I),
            'X' => Some(PauliOp::X),
            'Y' => Some(PauliOp::Y),
            'Z' => Some(PauliOp::Z),
            _ => None,
        }
    }

    /// Returns the single-character name of the operator.
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            PauliOp::I => 'I',
            PauliOp::X => 'X',
            PauliOp::Y => 'Y',
            PauliOp::Z => 'Z',
        }
    }
}

/// Phase exponent contribution of multiplying literal single-qubit Paulis.
///
/// Returns `k` (mod 4) such that `P1 · P2 = i^k · P3` where `P1 = (x1, z1)`,
/// `P2 = (x2, z2)` and `P3 = (x1^x2, z1^z2)` are literal Paulis
/// (`Y` meaning the Hermitian `Y`).
#[must_use]
pub(crate) fn phase_exponent(x1: bool, z1: bool, x2: bool, z2: bool) -> u8 {
    // Signed contribution in {-1, 0, 1}, following Aaronson & Gottesman's `g`.
    let g: i8 = match (x1, z1) {
        (false, false) => 0,
        (true, true) => i8::from(z2) - i8::from(x2),
        (true, false) => {
            if z2 {
                2 * i8::from(x2) - 1
            } else {
                0
            }
        }
        (false, true) => {
            if x2 {
                1 - 2 * i8::from(z2)
            } else {
                0
            }
        }
    };
    g.rem_euclid(4) as u8
}

impl fmt::Display for PauliOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xz_roundtrip() {
        for op in PauliOp::ALL {
            let (x, z) = op.xz();
            assert_eq!(PauliOp::from_xz(x, z), op);
        }
    }

    #[test]
    fn char_roundtrip() {
        for op in PauliOp::ALL {
            assert_eq!(PauliOp::from_char(op.to_char()), Some(op));
        }
        assert_eq!(PauliOp::from_char('x'), Some(PauliOp::X));
        assert_eq!(PauliOp::from_char('Q'), None);
    }

    #[test]
    fn commutation_table() {
        use PauliOp::*;
        assert!(X.commutes_with(X));
        assert!(I.commutes_with(Z));
        assert!(!X.commutes_with(Y));
        assert!(!Y.commutes_with(Z));
        assert!(!Z.commutes_with(X));
    }

    /// Check the full single-qubit multiplication table against the
    /// textbook relations.
    #[test]
    fn multiplication_table() {
        use PauliOp::*;
        // (a, b, result, i-exponent)
        let table = [
            (I, I, I, 0),
            (I, X, X, 0),
            (X, I, X, 0),
            (X, X, I, 0),
            (Y, Y, I, 0),
            (Z, Z, I, 0),
            (X, Y, Z, 1),
            (Y, X, Z, 3),
            (Y, Z, X, 1),
            (Z, Y, X, 3),
            (Z, X, Y, 1),
            (X, Z, Y, 3),
            (I, Y, Y, 0),
            (Y, I, Y, 0),
            (I, Z, Z, 0),
            (Z, I, Z, 0),
        ];
        for (a, b, want, phase) in table {
            assert_eq!(a.mul(b), (want, phase), "{a} * {b}");
        }
    }

    /// Anti-commutation: for distinct non-identity Paulis, P·Q = -Q·P.
    #[test]
    fn anticommutation_phases_are_opposite() {
        use PauliOp::*;
        for a in [X, Y, Z] {
            for b in [X, Y, Z] {
                if a == b {
                    continue;
                }
                let (r1, p1) = a.mul(b);
                let (r2, p2) = b.mul(a);
                assert_eq!(r1, r2);
                assert_eq!((p1 + 2) % 4, p2, "{a}{b} should anticommute");
            }
        }
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(PauliOp::default(), PauliOp::I);
        assert!(PauliOp::I.is_identity());
        assert!(!PauliOp::X.is_identity());
    }
}

//! Word-parallel batches of signed Pauli strings ("Pauli frames").
//!
//! A [`PauliFrame`] stores `m` signed Pauli strings **column-major**: for
//! every qubit there is one X bit-plane and one Z bit-plane over the batch
//! dimension, plus one sign plane. In this layout, conjugating *every* Pauli
//! in the batch by a single Clifford gate touches only the planes of the one
//! or two qubits the gate acts on, and each update is a handful of
//! XOR/AND/NOT word operations over `m`-bit vectors — `O(m/64)` words per
//! gate instead of `m` separate string conjugations.
//!
//! This is the storage layout behind the bit-plane
//! `CliffordTableau` (a frame of the `2n` generator images) and behind the
//! extraction engine's lookahead window (a frame of all pending rotation
//! axes conjugated through the Clifford extracted so far).
//!
//! The per-gate update rules are the Aaronson–Gottesman tableau rules
//! expressed on bit-planes; writing `X`/`Z` for the planes of the touched
//! qubit and `S` for the sign plane:
//!
//! | gate      | plane update                         | sign update                  |
//! |-----------|--------------------------------------|------------------------------|
//! | `H`       | swap `X`, `Z`                        | `S ^= X & Z`                 |
//! | `S`       | `Z ^= X`                             | `S ^= X & Z`                 |
//! | `S†`      | `Z ^= X`                             | `S ^= X & !Z`                |
//! | `√X`      | `X ^= Z`                             | `S ^= Z & !X`                |
//! | `√X†`     | `X ^= Z`                             | `S ^= Z & X`                 |
//! | `X`       | —                                    | `S ^= Z`                     |
//! | `Y`       | —                                    | `S ^= X ^ Z`                 |
//! | `Z`       | —                                    | `S ^= X`                     |
//! | `CX(c,t)` | `Xt ^= Xc`, `Zc ^= Zt`               | `S ^= Xc & Zt & !(Xt ^ Zc)`  |
//! | `CZ(a,b)` | `Za ^= Xb`, `Zb ^= Xa`               | `S ^= Xa & Xb & (Za ^ Zb)`   |
//! | `SWAP`    | swap planes of `a` and `b`           | —                            |
//!
//! (sign updates read the *pre-update* planes).

use std::fmt;

use simd::Lane;

use crate::bits::{transpose64_top, BitVec};
use crate::op::PauliOp;
use crate::signed::SignedPauli;
use crate::string::PauliString;

/// Lane width of the in-crate sweep kernels. The fused two-qubit sweeps
/// keep five to six planes live per loop iteration, so lanes wider than one
/// vector register spill to the stack and run slower than scalar. With AVX2
/// a 4-word lane is one ymm register and everything stays resident, so the
/// workspace-wide `simd::LANE_WORDS` knob applies up to 4; on narrower ISAs
/// (SSE2/NEON baseline) these sweeps stay scalar.
const LW: usize = if cfg!(target_feature = "avx2") {
    if simd::LANE_WORDS < 4 {
        simd::LANE_WORDS
    } else {
        4
    }
} else {
    1
};

/// Disjoint mutable borrows of two planes of the same axis.
fn pair_mut(planes: &mut [BitVec], a: usize, b: usize) -> (&mut BitVec, &mut BitVec) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = planes.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = planes.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// The fused CX conjugation sweep over raw plane words (pre-update reads):
/// `S ^= Xc & Zt & !(Xt ^ Zc)`, `Xt ^= Xc`, `Zc ^= Zt`.
fn cx_sweep<const W: usize>(s: &mut [u64], xc: &[u64], xt: &mut [u64], zc: &mut [u64], zt: &[u64]) {
    let len = s.len();
    let mut i = 0;
    while i + W <= len {
        let lxc = Lane::<W>::load(&xc[i..]);
        let lzt = Lane::<W>::load(&zt[i..]);
        let lxt = Lane::<W>::load(&xt[i..]);
        let lzc = Lane::<W>::load(&zc[i..]);
        let ls = Lane::<W>::load(&s[i..]);
        (ls ^ (lxc & lzt).andnot(lxt ^ lzc)).store(&mut s[i..]);
        (lxt ^ lxc).store(&mut xt[i..]);
        (lzc ^ lzt).store(&mut zc[i..]);
        i += W;
    }
    while i < len {
        let (wxc, wzt, wxt, wzc) = (xc[i], zt[i], xt[i], zc[i]);
        s[i] ^= wxc & wzt & !(wxt ^ wzc);
        xt[i] = wxt ^ wxc;
        zc[i] = wzc ^ wzt;
        i += 1;
    }
}

/// The fused CZ conjugation sweep over raw plane words (pre-update reads):
/// `S ^= Xa & Xb & (Za ^ Zb)`, `Za ^= Xb`, `Zb ^= Xa`.
fn cz_sweep<const W: usize>(s: &mut [u64], xa: &[u64], xb: &[u64], za: &mut [u64], zb: &mut [u64]) {
    let len = s.len();
    let mut i = 0;
    while i + W <= len {
        let lxa = Lane::<W>::load(&xa[i..]);
        let lxb = Lane::<W>::load(&xb[i..]);
        let lza = Lane::<W>::load(&za[i..]);
        let lzb = Lane::<W>::load(&zb[i..]);
        let ls = Lane::<W>::load(&s[i..]);
        (ls ^ (lxa & lxb & (lza ^ lzb))).store(&mut s[i..]);
        (lza ^ lxb).store(&mut za[i..]);
        (lzb ^ lxa).store(&mut zb[i..]);
        i += W;
    }
    while i < len {
        let (wxa, wxb, wza, wzb) = (xa[i], xb[i], za[i], zb[i]);
        s[i] ^= wxa & wxb & (wza ^ wzb);
        za[i] = wza ^ wxb;
        zb[i] = wzb ^ wxa;
        i += 1;
    }
}

/// A batch of signed Pauli strings stored as per-qubit bit-planes.
///
/// # Examples
///
/// ```
/// use quclear_pauli::{PauliFrame, SignedPauli};
///
/// let rows: Vec<SignedPauli> = vec!["XI".parse()?, "-ZZ".parse()?];
/// let mut frame = PauliFrame::from_signed(2, &rows);
/// frame.conj_h(0); // conjugate every row by H on qubit 0
/// assert_eq!(frame.get(0).to_string(), "+ZI");
/// assert_eq!(frame.get(1).to_string(), "-XZ");
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct PauliFrame {
    n: usize,
    rows: usize,
    /// `x[q]` bit `i` = row `i` has an X component at qubit `q`.
    x: Vec<BitVec>,
    /// `z[q]` bit `i` = row `i` has a Z component at qubit `q`.
    z: Vec<BitVec>,
    /// Bit `i` = row `i` carries a −1 sign.
    signs: BitVec,
}

impl PauliFrame {
    /// Creates a frame of `rows` positive identity strings on `n` qubits.
    #[must_use]
    pub fn identities(n: usize, rows: usize) -> Self {
        PauliFrame {
            n,
            rows,
            x: (0..n).map(|_| BitVec::zeros(rows)).collect(),
            z: (0..n).map(|_| BitVec::zeros(rows)).collect(),
            signs: BitVec::zeros(rows),
        }
    }

    /// Builds a frame from phase-free Pauli strings (all signs positive).
    ///
    /// The row-major → column-major layout change runs through
    /// [`transpose64_top`] blocks (64 rows × 64 qubits at a time), so loading
    /// a large batch never touches individual bits.
    ///
    /// # Panics
    ///
    /// Panics if any string is not on `n` qubits.
    #[must_use]
    pub fn from_paulis(n: usize, paulis: &[PauliString]) -> Self {
        let mut frame = PauliFrame::identities(n, paulis.len());
        frame.fill_planes(paulis, |p| (p.x_bits(), p.z_bits()));
        frame
    }

    /// Builds a frame from signed Pauli strings (word-parallel transpose
    /// ingestion, like [`Self::from_paulis`]).
    ///
    /// # Panics
    ///
    /// Panics if any string is not on `n` qubits.
    #[must_use]
    pub fn from_signed(n: usize, paulis: &[SignedPauli]) -> Self {
        let mut frame = PauliFrame::identities(n, paulis.len());
        frame.fill_planes(paulis, |p| (p.pauli().x_bits(), p.pauli().z_bits()));
        let mut word = 0u64;
        for (i, p) in paulis.iter().enumerate() {
            word |= u64::from(p.is_negative()) << (i % 64);
            if i % 64 == 63 {
                frame.signs.words_mut()[i / 64] = word;
                word = 0;
            }
        }
        if !paulis.len().is_multiple_of(64) {
            frame.signs.words_mut()[paulis.len() / 64] = word;
        }
        debug_assert!(
            frame.signs.tail_is_clear(),
            "sign ingestion must not write past the row count"
        );
        frame
    }

    /// Fills the X/Z planes from row-major symplectic bit vectors via
    /// 64×64 block transposes.
    fn fill_planes<T>(&mut self, rows: &[T], bits: impl Fn(&T) -> (&BitVec, &BitVec)) {
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                bits(row).0.len(),
                self.n,
                "qubit count mismatch in PauliFrame row {i}"
            );
        }
        let col_words = self.n.div_ceil(64);
        let row_blocks = rows.len().div_ceil(64);
        let mut block = [0u64; 64];
        for c in 0..col_words {
            // Only the qubits covered by this column word become planes, so
            // the block transpose is pruned to that prefix.
            let out_rows = self.n.min(c * 64 + 64) - c * 64;
            for pick in [0usize, 1] {
                for rb in 0..row_blocks {
                    let base = rb * 64;
                    let take = rows.len().min(base + 64) - base;
                    for (i, row) in rows[base..base + take].iter().enumerate() {
                        let (x, z) = bits(row);
                        block[i] = if pick == 0 {
                            x.words()[c]
                        } else {
                            z.words()[c]
                        };
                    }
                    block[take..].fill(0);
                    transpose64_top(&mut block, out_rows);
                    for (j, &word) in block.iter().enumerate().take(out_rows) {
                        let plane = if pick == 0 {
                            &mut self.x[c * 64 + j]
                        } else {
                            &mut self.z[c * 64 + j]
                        };
                        plane.words_mut()[rb] = word;
                    }
                }
            }
        }
        debug_assert!(
            self.x.iter().chain(&self.z).all(BitVec::tail_is_clear),
            "plane transpose must not write past the row count"
        );
    }

    /// Overwrites row `i` with the given Pauli and sign.
    ///
    /// # Panics
    ///
    /// Panics if the Pauli is not on `n` qubits or `i` is out of range.
    pub fn load_row(&mut self, i: usize, pauli: &PauliString, negative: bool) {
        assert_eq!(
            pauli.num_qubits(),
            self.n,
            "qubit count mismatch in PauliFrame::load_row"
        );
        for q in 0..self.n {
            let (xb, zb) = pauli.op(q).xz();
            self.x[q].set(i, xb);
            self.z[q].set(i, zb);
        }
        self.signs.set(i, negative);
    }

    /// Number of qubits each row acts on.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of rows in the batch.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// The operator of row `i` at qubit `q`.
    #[must_use]
    pub fn op(&self, i: usize, q: usize) -> PauliOp {
        PauliOp::from_xz(self.x[q].get(i), self.z[q].get(i))
    }

    /// Sets the operator of row `i` at qubit `q`.
    pub fn set_op(&mut self, i: usize, q: usize, op: PauliOp) {
        let (xb, zb) = op.xz();
        self.x[q].set(i, xb);
        self.z[q].set(i, zb);
    }

    /// The sign of row `i` (`true` = negative).
    #[must_use]
    pub fn sign(&self, i: usize) -> bool {
        self.signs.get(i)
    }

    /// Sets the sign of row `i`.
    pub fn set_sign(&mut self, i: usize, negative: bool) {
        self.signs.set(i, negative);
    }

    /// Extracts row `i` as a phase-free Pauli string.
    #[must_use]
    pub fn row_pauli(&self, i: usize) -> PauliString {
        let mut x = BitVec::zeros(self.n);
        let mut z = BitVec::zeros(self.n);
        for q in 0..self.n {
            if self.x[q].get(i) {
                x.set(q, true);
            }
            if self.z[q].get(i) {
                z.set(q, true);
            }
        }
        PauliString::from_xz(x, z)
    }

    /// Extracts row `i` as a signed Pauli.
    #[must_use]
    pub fn get(&self, i: usize) -> SignedPauli {
        SignedPauli::new(self.row_pauli(i), self.signs.get(i))
    }

    /// Writes row `i` into an existing string (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `out` is not on `n` qubits.
    pub fn read_row_into(&self, i: usize, out: &mut PauliString) {
        assert_eq!(
            out.num_qubits(),
            self.n,
            "qubit count mismatch in PauliFrame::read_row_into"
        );
        for q in 0..self.n {
            out.set_op(q, self.op(i, q));
        }
    }

    /// The X-support of row `i` as a qubit mask (bit `q` = row `i` has an X
    /// component at qubit `q`) — the transpose view of [`Self::x_plane`].
    #[must_use]
    pub fn row_x_support(&self, i: usize) -> BitVec {
        let mut support = BitVec::zeros(self.n);
        for q in 0..self.n {
            if self.x[q].get(i) {
                support.set(q, true);
            }
        }
        support
    }

    /// The Z-support of row `i` as a qubit mask (bit `q` = row `i` has a Z
    /// component at qubit `q`). For a Z-diagonal row this is exactly the
    /// parity mask a `ShotBatch` expectation needs.
    #[must_use]
    pub fn row_z_support(&self, i: usize) -> BitVec {
        let mut support = BitVec::zeros(self.n);
        for q in 0..self.n {
            if self.z[q].get(i) {
                support.set(q, true);
            }
        }
        support
    }

    /// Pauli weight of row `i` (number of non-identity operators).
    #[must_use]
    pub fn weight(&self, i: usize) -> usize {
        (0..self.n)
            .filter(|&q| self.x[q].get(i) || self.z[q].get(i))
            .count()
    }

    /// Returns `true` if row `i` is the identity string.
    #[must_use]
    pub fn is_identity_row(&self, i: usize) -> bool {
        (0..self.n).all(|q| !self.x[q].get(i) && !self.z[q].get(i))
    }

    /// The X bit-plane of qubit `q` (bit `i` = row `i` has an X component).
    #[must_use]
    pub fn x_plane(&self, q: usize) -> &BitVec {
        &self.x[q]
    }

    /// The Z bit-plane of qubit `q`.
    #[must_use]
    pub fn z_plane(&self, q: usize) -> &BitVec {
        &self.z[q]
    }

    /// The sign plane (bit `i` = row `i` is negative).
    #[must_use]
    pub fn sign_plane(&self) -> &BitVec {
        &self.signs
    }

    /// Mutable X bit-plane of qubit `q`, for out-of-crate word-parallel
    /// kernels (e.g. `CliffordTableau::apply_frame`). Callers must preserve
    /// the plane length and keep bits at positions `>= num_rows()` zero.
    #[must_use]
    pub fn x_plane_mut(&mut self, q: usize) -> &mut BitVec {
        &mut self.x[q]
    }

    /// Mutable Z bit-plane of qubit `q`; same invariants as
    /// [`Self::x_plane_mut`].
    #[must_use]
    pub fn z_plane_mut(&mut self, q: usize) -> &mut BitVec {
        &mut self.z[q]
    }

    /// Mutable sign plane; same invariants as [`Self::x_plane_mut`].
    #[must_use]
    pub fn sign_plane_mut(&mut self) -> &mut BitVec {
        &mut self.signs
    }

    /// Gathers the given rows (in order) into a new, smaller frame.
    ///
    /// Used to compact a frame after many rows have been consumed.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn select_rows(&self, rows: &[usize]) -> PauliFrame {
        let mut out = PauliFrame::identities(self.n, rows.len());
        for (new_i, &old_i) in rows.iter().enumerate() {
            for q in 0..self.n {
                out.x[q].set(new_i, self.x[q].get(old_i));
                out.z[q].set(new_i, self.z[q].get(old_i));
            }
            out.signs.set(new_i, self.signs.get(old_i));
        }
        out
    }

    // --- word-parallel conjugation kernels -------------------------------

    /// Conjugates every row by `H` on qubit `q`.
    pub fn conj_h(&mut self, q: usize) {
        self.signs.xor_with_and(&self.x[q], &self.z[q]);
        let (x, z) = (&mut self.x[q], &mut self.z[q]);
        std::mem::swap(x, z);
    }

    /// Conjugates every row by `S` on qubit `q`.
    pub fn conj_s(&mut self, q: usize) {
        self.signs.xor_with_and(&self.x[q], &self.z[q]);
        self.z[q].xor_with(&self.x[q]);
    }

    /// Conjugates every row by `S†` on qubit `q`.
    pub fn conj_sdg(&mut self, q: usize) {
        // S ^= X & !Z, then Z ^= X.
        self.signs.xor_with_andnot(&self.x[q], &self.z[q]);
        self.z[q].xor_with(&self.x[q]);
    }

    /// Conjugates every row by `√X` on qubit `q`.
    pub fn conj_sqrt_x(&mut self, q: usize) {
        // S ^= Z & !X, then X ^= Z.
        self.signs.xor_with_andnot(&self.z[q], &self.x[q]);
        self.x[q].xor_with(&self.z[q]);
    }

    /// Conjugates every row by `√X†` on qubit `q`.
    pub fn conj_sqrt_xdg(&mut self, q: usize) {
        self.signs.xor_with_and(&self.z[q], &self.x[q]);
        self.x[q].xor_with(&self.z[q]);
    }

    /// Conjugates every row by the Pauli `X` gate on qubit `q`.
    pub fn conj_x(&mut self, q: usize) {
        self.signs.xor_with(&self.z[q]);
    }

    /// Conjugates every row by the Pauli `Y` gate on qubit `q`.
    pub fn conj_y(&mut self, q: usize) {
        self.signs.xor_with(&self.x[q]);
        self.signs.xor_with(&self.z[q]);
    }

    /// Conjugates every row by the Pauli `Z` gate on qubit `q`.
    pub fn conj_z(&mut self, q: usize) {
        self.signs.xor_with(&self.x[q]);
    }

    /// Conjugates every row by `CNOT(control → target)`.
    ///
    /// # Panics
    ///
    /// Panics if `control == target`.
    pub fn conj_cx(&mut self, control: usize, target: usize) {
        assert_ne!(control, target, "CX control and target must differ");
        // Pre-update values: S ^= Xc & Zt & !(Xt ^ Zc), Xt ^= Xc, Zc ^= Zt.
        let (xc, xt) = pair_mut(&mut self.x, control, target);
        let (zc, zt) = pair_mut(&mut self.z, control, target);
        cx_sweep::<LW>(
            self.signs.words_mut(),
            xc.words(),
            xt.words_mut(),
            zc.words_mut(),
            zt.words(),
        );
        debug_assert!(
            self.signs.tail_is_clear() && xt.tail_is_clear() && zc.tail_is_clear(),
            "CX sweep must not set bits past the row count"
        );
    }

    /// Conjugates every row by `CZ(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn conj_cz(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "CZ qubits must differ");
        // Pre-update values: S ^= Xa & Xb & (Za ^ Zb), Za ^= Xb, Zb ^= Xa.
        let (xa, xb) = pair_mut(&mut self.x, a, b);
        let (za, zb) = pair_mut(&mut self.z, a, b);
        cz_sweep::<LW>(
            self.signs.words_mut(),
            xa.words(),
            xb.words(),
            za.words_mut(),
            zb.words_mut(),
        );
        debug_assert!(
            self.signs.tail_is_clear() && za.tail_is_clear() && zb.tail_is_clear(),
            "CZ sweep must not set bits past the row count"
        );
    }

    /// Conjugates every row by `SWAP(a, b)`.
    pub fn conj_swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.x.swap(a, b);
        self.z.swap(a, b);
    }
}

impl fmt::Debug for PauliFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PauliFrame({} rows on {} qubits):", self.rows, self.n)?;
        for i in 0..self.rows {
            writeln!(f, "  {}", self.get(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(rows: &[&str]) -> PauliFrame {
        let signed: Vec<SignedPauli> = rows.iter().map(|s| s.parse().unwrap()).collect();
        PauliFrame::from_signed(signed[0].num_qubits(), &signed)
    }

    #[test]
    fn roundtrip_rows() {
        let f = frame(&["XIZY", "-ZZZZ", "+IIII"]);
        assert_eq!(f.num_rows(), 3);
        assert_eq!(f.num_qubits(), 4);
        assert_eq!(f.get(0).to_string(), "+XIZY");
        assert_eq!(f.get(1).to_string(), "-ZZZZ");
        assert!(f.is_identity_row(2));
        assert_eq!(f.weight(0), 3);
        assert_eq!(f.weight(1), 4);
    }

    #[test]
    fn single_qubit_conjugations_match_rules() {
        // H: X→Z, Z→X, Y→−Y.
        let mut f = frame(&["X", "Z", "Y", "I"]);
        f.conj_h(0);
        assert_eq!(f.get(0).to_string(), "+Z");
        assert_eq!(f.get(1).to_string(), "+X");
        assert_eq!(f.get(2).to_string(), "-Y");
        assert_eq!(f.get(3).to_string(), "+I");

        // S: X→Y, Y→−X, Z→Z.
        let mut f = frame(&["X", "Y", "Z"]);
        f.conj_s(0);
        assert_eq!(f.get(0).to_string(), "+Y");
        assert_eq!(f.get(1).to_string(), "-X");
        assert_eq!(f.get(2).to_string(), "+Z");

        // S†: X→−Y, Y→X.
        let mut f = frame(&["X", "Y"]);
        f.conj_sdg(0);
        assert_eq!(f.get(0).to_string(), "-Y");
        assert_eq!(f.get(1).to_string(), "+X");

        // √X: Y→Z, Z→−Y, X→X.
        let mut f = frame(&["Y", "Z", "X"]);
        f.conj_sqrt_x(0);
        assert_eq!(f.get(0).to_string(), "+Z");
        assert_eq!(f.get(1).to_string(), "-Y");
        assert_eq!(f.get(2).to_string(), "+X");

        // √X†: Y→−Z, Z→Y.
        let mut f = frame(&["Y", "Z"]);
        f.conj_sqrt_xdg(0);
        assert_eq!(f.get(0).to_string(), "-Z");
        assert_eq!(f.get(1).to_string(), "+Y");

        // Pauli gates only flip signs of anticommuting rows.
        let mut f = frame(&["X", "Y", "Z"]);
        f.conj_x(0);
        assert_eq!(f.get(0).to_string(), "+X");
        assert_eq!(f.get(1).to_string(), "-Y");
        assert_eq!(f.get(2).to_string(), "-Z");
        let mut f = frame(&["X", "Y", "Z"]);
        f.conj_y(0);
        assert_eq!(f.get(0).to_string(), "-X");
        assert_eq!(f.get(1).to_string(), "+Y");
        assert_eq!(f.get(2).to_string(), "-Z");
        let mut f = frame(&["X", "Y", "Z"]);
        f.conj_z(0);
        assert_eq!(f.get(0).to_string(), "-X");
        assert_eq!(f.get(1).to_string(), "-Y");
        assert_eq!(f.get(2).to_string(), "+Z");
    }

    #[test]
    fn cx_conjugation_matches_table_i() {
        // The 16-entry CNOT table of the paper (signs per Aaronson–Gottesman).
        let table = [
            ("II", "+II"),
            ("IX", "+IX"),
            ("IY", "+ZY"),
            ("IZ", "+ZZ"),
            ("XI", "+XX"),
            ("XX", "+XI"),
            ("XY", "+YZ"),
            ("XZ", "-YY"),
            ("YI", "+YX"),
            ("YX", "+YI"),
            ("YY", "-XZ"),
            ("YZ", "+XY"),
            ("ZI", "+ZI"),
            ("ZX", "+ZX"),
            ("ZY", "+IY"),
            ("ZZ", "+IZ"),
        ];
        let inputs: Vec<&str> = table.iter().map(|(i, _)| *i).collect();
        let mut f = frame(&inputs);
        f.conj_cx(0, 1);
        for (i, (input, want)) in table.iter().enumerate() {
            assert_eq!(f.get(i).to_string(), *want, "CX on {input}");
        }
    }

    #[test]
    fn cz_and_swap_conjugations() {
        let mut f = frame(&["XI", "IX", "ZI", "XX", "XY"]);
        f.conj_cz(0, 1);
        assert_eq!(f.get(0).to_string(), "+XZ");
        assert_eq!(f.get(1).to_string(), "+ZX");
        assert_eq!(f.get(2).to_string(), "+ZI");
        assert_eq!(f.get(3).to_string(), "+YY");
        assert_eq!(f.get(4).to_string(), "-YX");

        let mut f = frame(&["XZ", "-YI"]);
        f.conj_swap(0, 1);
        assert_eq!(f.get(0).to_string(), "+ZX");
        assert_eq!(f.get(1).to_string(), "-IY");
        f.conj_swap(1, 1); // no-op
        assert_eq!(f.get(0).to_string(), "+ZX");
    }

    #[test]
    fn conjugation_works_across_word_boundaries() {
        // 130 rows: the planes span three words.
        let rows: Vec<SignedPauli> = (0..130)
            .map(|i| {
                match i % 4 {
                    0 => "XI",
                    1 => "YZ",
                    2 => "-ZY",
                    _ => "II",
                }
                .parse()
                .unwrap()
            })
            .collect();
        let mut f = PauliFrame::from_signed(2, &rows);
        f.conj_h(0);
        f.conj_cx(0, 1);
        f.conj_s(1);
        // Spot-check a row in the last partial word against scalar rules.
        // Row 128 is "XI": H(0) → ZI, CX(0,1) → ZI, S(1) → ZI.
        assert_eq!(f.get(128).to_string(), "+ZI");
        // Row 129 is "YZ": H(0) → -YZ, CX(0,1) → -XY (YZ→XY), S(1) → +XX.
        assert_eq!(f.get(129).to_string(), "+XX");
    }

    #[test]
    fn two_qubit_sweeps_agree_at_every_lane_width() {
        fn words(len: usize, seed: u64) -> Vec<u64> {
            let mut s = seed;
            (0..len)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    s
                })
                .collect()
        }
        // 11 words: not a multiple of any lane width, exercising the tails.
        let len = 11;
        let run_cx = |w: usize| {
            let mut s = words(len, 1);
            let xc = words(len, 2);
            let mut xt = words(len, 3);
            let mut zc = words(len, 4);
            let zt = words(len, 5);
            match w {
                1 => cx_sweep::<1>(&mut s, &xc, &mut xt, &mut zc, &zt),
                2 => cx_sweep::<2>(&mut s, &xc, &mut xt, &mut zc, &zt),
                4 => cx_sweep::<4>(&mut s, &xc, &mut xt, &mut zc, &zt),
                _ => cx_sweep::<8>(&mut s, &xc, &mut xt, &mut zc, &zt),
            }
            (s, xt, zc)
        };
        let run_cz = |w: usize| {
            let mut s = words(len, 1);
            let xa = words(len, 2);
            let xb = words(len, 3);
            let mut za = words(len, 4);
            let mut zb = words(len, 5);
            match w {
                1 => cz_sweep::<1>(&mut s, &xa, &xb, &mut za, &mut zb),
                2 => cz_sweep::<2>(&mut s, &xa, &xb, &mut za, &mut zb),
                4 => cz_sweep::<4>(&mut s, &xa, &xb, &mut za, &mut zb),
                _ => cz_sweep::<8>(&mut s, &xa, &xb, &mut za, &mut zb),
            }
            (s, za, zb)
        };
        let cx_oracle = run_cx(1);
        let cz_oracle = run_cz(1);
        for w in [2usize, 4, 8] {
            assert_eq!(run_cx(w), cx_oracle, "cx_sweep at width {w}");
            assert_eq!(run_cz(w), cz_oracle, "cz_sweep at width {w}");
        }
    }

    #[test]
    fn select_rows_gathers_in_order() {
        let f = frame(&["XI", "-ZZ", "YY", "IZ"]);
        let g = f.select_rows(&[2, 0]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.get(0).to_string(), "+YY");
        assert_eq!(g.get(1).to_string(), "+XI");
    }

    #[test]
    fn load_row_overwrites() {
        let mut f = PauliFrame::identities(3, 2);
        assert!(f.is_identity_row(0));
        f.load_row(1, &"XYZ".parse().unwrap(), true);
        assert_eq!(f.get(1).to_string(), "-XYZ");
        assert!(f.is_identity_row(0));
    }
}

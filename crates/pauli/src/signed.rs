//! Pauli strings with a ±1 sign.

use std::fmt;
use std::ops::Neg;
use std::str::FromStr;

use crate::{ParsePauliError, PauliString};

/// A Pauli string together with a ±1 sign, i.e. an element of the Hermitian
/// part of the Pauli group.
///
/// This is the natural result type of conjugating a Pauli string by a Clifford
/// unitary: `C† P C = ± P'`. The phase can only be ±1 (never ±i) because
/// conjugation preserves Hermiticity.
///
/// # Examples
///
/// ```
/// use quclear_pauli::SignedPauli;
///
/// let p: SignedPauli = "-XIZ".parse()?;
/// assert!(p.is_negative());
/// assert_eq!((-p.clone()).to_string(), "+XIZ");
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SignedPauli {
    pauli: PauliString,
    negative: bool,
}

impl SignedPauli {
    /// Creates a signed Pauli with an explicit sign.
    #[must_use]
    pub fn new(pauli: PauliString, negative: bool) -> Self {
        SignedPauli { pauli, negative }
    }

    /// Creates a `+P` signed Pauli.
    #[must_use]
    pub fn positive(pauli: PauliString) -> Self {
        SignedPauli::new(pauli, false)
    }

    /// Creates a `-P` signed Pauli.
    #[must_use]
    pub fn negative(pauli: PauliString) -> Self {
        SignedPauli::new(pauli, true)
    }

    /// The positive identity on `n` qubits.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        SignedPauli::positive(PauliString::identity(n))
    }

    /// The underlying phase-free Pauli string.
    #[must_use]
    pub fn pauli(&self) -> &PauliString {
        &self.pauli
    }

    /// Consumes the value and returns the phase-free Pauli string.
    #[must_use]
    pub fn into_pauli(self) -> PauliString {
        self.pauli
    }

    /// Returns `true` if the sign is −1.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Returns the sign as `+1.0` or `-1.0`.
    #[must_use]
    pub fn sign(&self) -> f64 {
        if self.negative {
            -1.0
        } else {
            1.0
        }
    }

    /// Number of qubits the Pauli acts on.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.pauli.num_qubits()
    }

    /// Pauli weight (number of non-identity factors).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.pauli.weight()
    }

    /// Multiplies two signed Paulis.
    ///
    /// # Panics
    ///
    /// Panics if the product carries an imaginary phase (i.e. the operands
    /// anticommute at an odd number of positions), since `SignedPauli` can
    /// only represent Hermitian results, or if the qubit counts differ.
    #[must_use]
    pub fn mul(&self, other: &SignedPauli) -> SignedPauli {
        let (p, k) = self.pauli.mul(&other.pauli);
        assert!(
            k % 2 == 0,
            "product of signed Paulis has imaginary phase i^{k}; operands anticommute"
        );
        let negative = self.negative ^ other.negative ^ (k == 2);
        SignedPauli::new(p, negative)
    }

    /// Returns `true` if the two signed Paulis commute (signs are irrelevant).
    #[must_use]
    pub fn commutes_with(&self, other: &SignedPauli) -> bool {
        self.pauli.commutes_with(&other.pauli)
    }
}

impl Neg for SignedPauli {
    type Output = SignedPauli;

    fn neg(self) -> SignedPauli {
        SignedPauli {
            pauli: self.pauli,
            negative: !self.negative,
        }
    }
}

impl From<PauliString> for SignedPauli {
    fn from(pauli: PauliString) -> Self {
        SignedPauli::positive(pauli)
    }
}

impl fmt::Display for SignedPauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.negative { '-' } else { '+' }, self.pauli)
    }
}

impl FromStr for SignedPauli {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (negative, rest) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        Ok(SignedPauli::new(rest.parse()?, negative))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_and_without_sign() {
        let plus: SignedPauli = "XZ".parse().unwrap();
        let explicit_plus: SignedPauli = "+XZ".parse().unwrap();
        let minus: SignedPauli = "-XZ".parse().unwrap();
        assert_eq!(plus, explicit_plus);
        assert!(!plus.is_negative());
        assert!(minus.is_negative());
        assert_eq!(minus.pauli(), plus.pauli());
    }

    #[test]
    fn display_always_shows_sign() {
        let sp: SignedPauli = "XI".parse().unwrap();
        assert_eq!(sp.to_string(), "+XI");
        assert_eq!((-sp).to_string(), "-XI");
    }

    #[test]
    fn signed_multiplication() {
        let a: SignedPauli = "-ZI".parse().unwrap();
        let b: SignedPauli = "ZZ".parse().unwrap();
        let prod = a.mul(&b);
        assert_eq!(prod.to_string(), "-IZ");

        // (X⊗X)(Y⊗Y) = -(Z⊗Z): real phase, representable.
        let a: SignedPauli = "XX".parse().unwrap();
        let b: SignedPauli = "YY".parse().unwrap();
        assert_eq!(a.mul(&b).to_string(), "-ZZ");
    }

    #[test]
    #[should_panic(expected = "imaginary phase")]
    fn anticommuting_product_panics() {
        let a: SignedPauli = "X".parse().unwrap();
        let b: SignedPauli = "Y".parse().unwrap();
        let _ = a.mul(&b);
    }

    #[test]
    fn sign_value() {
        let a: SignedPauli = "-X".parse().unwrap();
        assert_eq!(a.sign(), -1.0);
        assert_eq!((-a).sign(), 1.0);
    }

    #[test]
    fn from_pauli_string_is_positive() {
        let p: PauliString = "XY".parse().unwrap();
        let sp = SignedPauli::from(p.clone());
        assert!(!sp.is_negative());
        assert_eq!(sp.into_pauli(), p);
    }
}

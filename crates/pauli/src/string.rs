//! Multi-qubit Pauli strings in symplectic (bit-packed) representation.

use std::fmt;
use std::str::FromStr;

use crate::bits::BitVec;
use crate::op::PauliOp;
use crate::ParsePauliError;

/// A phase-free Pauli string over `n` qubits.
///
/// Qubit `0` is the **leftmost** character in the textual representation, so
/// `"XIZ"` means `X` on qubit 0, `I` on qubit 1 and `Z` on qubit 2. This
/// matches the ordering used in the QuCLEAR paper (`P1: YZXXYZZ` puts `Y` on
/// qubit 0).
///
/// The string is stored as two bit vectors (the X block and the Z block of
/// the symplectic representation), so products, commutation checks and
/// Clifford conjugation are word-parallel.
///
/// # Examples
///
/// ```
/// use quclear_pauli::{PauliOp, PauliString};
///
/// let p: PauliString = "XIZY".parse()?;
/// assert_eq!(p.num_qubits(), 4);
/// assert_eq!(p.op(0), PauliOp::X);
/// assert_eq!(p.op(3), PauliOp::Y);
/// assert_eq!(p.weight(), 3);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    n: usize,
    x: BitVec,
    z: BitVec,
}

impl PauliString {
    /// Creates the identity Pauli string on `n` qubits.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        PauliString {
            n,
            x: BitVec::zeros(n),
            z: BitVec::zeros(n),
        }
    }

    /// Builds a Pauli string from a slice of single-qubit operators.
    ///
    /// # Examples
    ///
    /// ```
    /// use quclear_pauli::{PauliOp, PauliString};
    /// let p = PauliString::from_ops(&[PauliOp::Z, PauliOp::I, PauliOp::Z]);
    /// assert_eq!(p.to_string(), "ZIZ");
    /// ```
    #[must_use]
    pub fn from_ops(ops: &[PauliOp]) -> Self {
        let mut p = PauliString::identity(ops.len());
        for (q, &op) in ops.iter().enumerate() {
            p.set_op(q, op);
        }
        p
    }

    /// Builds a Pauli string with a single non-identity operator.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    #[must_use]
    pub fn single(n: usize, qubit: usize, op: PauliOp) -> Self {
        let mut p = PauliString::identity(n);
        p.set_op(qubit, op);
        p
    }

    /// Builds a Pauli string directly from its X and Z bit blocks.
    ///
    /// # Panics
    ///
    /// Panics if the two blocks have different lengths.
    #[must_use]
    pub fn from_xz(x: BitVec, z: BitVec) -> Self {
        assert_eq!(x.len(), z.len(), "X and Z blocks must have equal length");
        PauliString { n: x.len(), x, z }
    }

    /// Number of qubits the string is defined on.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The X block of the symplectic representation.
    #[must_use]
    pub fn x_bits(&self) -> &BitVec {
        &self.x
    }

    /// The Z block of the symplectic representation.
    #[must_use]
    pub fn z_bits(&self) -> &BitVec {
        &self.z
    }

    /// Returns the operator acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= self.num_qubits()`.
    #[must_use]
    pub fn op(&self, qubit: usize) -> PauliOp {
        PauliOp::from_xz(self.x.get(qubit), self.z.get(qubit))
    }

    /// Sets the operator acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= self.num_qubits()`.
    pub fn set_op(&mut self, qubit: usize, op: PauliOp) {
        let (x, z) = op.xz();
        self.x.set(qubit, x);
        self.z.set(qubit, z);
    }

    /// Iterator over `(qubit, operator)` pairs for every qubit.
    pub fn ops(&self) -> impl Iterator<Item = (usize, PauliOp)> + '_ {
        (0..self.n).map(move |q| (q, self.op(q)))
    }

    /// Number of non-identity operators (the Pauli weight).
    #[must_use]
    pub fn weight(&self) -> usize {
        let mut or = self.x.clone();
        or.xor_with(&self.z);
        // x | z = (x ^ z) | (x & z); count via the two pieces.
        or.count_ones() + self.x.and_count(&self.z)
    }

    /// Returns the indices of qubits with a non-identity operator, ascending.
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        (0..self.n).filter(|&q| !self.op(q).is_identity()).collect()
    }

    /// Returns `true` if every operator is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.z.is_zero()
    }

    /// Returns `true` if every non-identity operator equals `op`
    /// (identity-only strings return `true` for any `op`).
    #[must_use]
    pub fn is_uniform(&self, op: PauliOp) -> bool {
        self.ops().all(|(_, o)| o.is_identity() || o == op)
    }

    /// Returns `true` if the two Pauli strings commute.
    ///
    /// Uses the symplectic criterion: `P` and `Q` commute iff
    /// `|{q : P_q and Q_q anticommute}|` is even.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on a different number of qubits.
    #[must_use]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.n, other.n, "qubit count mismatch in commutes_with");
        // Anticommuting positions are those where x1·z2 + z1·x2 is odd.
        let p1 = self.x.and_parity(&other.z);
        let p2 = self.z.and_parity(&other.x);
        p1 == p2
    }

    /// Multiplies two Pauli strings.
    ///
    /// Returns `(R, k)` such that `self · other = i^k · R` with `k` taken
    /// modulo 4.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on a different number of qubits.
    #[must_use]
    pub fn mul(&self, other: &PauliString) -> (PauliString, u8) {
        assert_eq!(self.n, other.n, "qubit count mismatch in mul");
        // Word-parallel phase accumulation: the per-position Aaronson–
        // Gottesman `g` is +1 on cyclic pairs (X·Y, Y·Z, Z·X) and −1 on
        // anticyclic ones, so two popcounts per word give the exponent.
        let mut cyclic: i64 = 0;
        let mut anticyclic: i64 = 0;
        for (i, (ax, az)) in self.x.words().iter().zip(self.z.words()).enumerate() {
            let bx = other.x.words()[i];
            let bz = other.z.words()[i];
            let pos = (ax & !az & bx & bz) | (ax & az & !bx & bz) | (!ax & az & bx & !bz);
            let neg = (ax & !az & !bx & bz) | (ax & az & bx & !bz) | (!ax & az & bx & bz);
            cyclic += i64::from(pos.count_ones());
            anticyclic += i64::from(neg.count_ones());
        }
        let phase = (cyclic - anticyclic).rem_euclid(4) as u8;
        let mut x = self.x.clone();
        x.xor_with(&other.x);
        let mut z = self.z.clone();
        z.xor_with(&other.z);
        (PauliString { n: self.n, x, z }, phase)
    }

    /// Restricts the string to the given qubits, producing a smaller string
    /// whose qubit `i` is `self.op(qubits[i])`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn restrict(&self, qubits: &[usize]) -> PauliString {
        let ops: Vec<PauliOp> = qubits.iter().map(|&q| self.op(q)).collect();
        PauliString::from_ops(&ops)
    }

    /// Embeds the string into a larger register of `n` qubits, placing qubit
    /// `i` of `self` at position `positions[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != self.num_qubits()` or any position is out
    /// of range.
    #[must_use]
    pub fn embed(&self, n: usize, positions: &[usize]) -> PauliString {
        assert_eq!(positions.len(), self.n, "positions must match qubit count");
        let mut p = PauliString::identity(n);
        for (i, &pos) in positions.iter().enumerate() {
            p.set_op(pos, self.op(i));
        }
        p
    }

    /// Counts how many qubits carry each operator, returned as
    /// `(num_i, num_x, num_y, num_z)`.
    #[must_use]
    pub fn op_histogram(&self) -> (usize, usize, usize, usize) {
        let mut hist = (0usize, 0usize, 0usize, 0usize);
        for (_, op) in self.ops() {
            match op {
                PauliOp::I => hist.0 += 1,
                PauliOp::X => hist.1 += 1,
                PauliOp::Y => hist.2 += 1,
                PauliOp::Z => hist.3 += 1,
            }
        }
        hist
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in 0..self.n {
            write!(f, "{}", self.op(q).to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PauliString(\"{self}\")")
    }
}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut ops = Vec::with_capacity(s.len());
        for c in s.chars() {
            let op = PauliOp::from_char(c).ok_or(ParsePauliError::InvalidCharacter(c))?;
            ops.push(op);
        }
        if ops.is_empty() {
            return Err(ParsePauliError::Empty);
        }
        Ok(PauliString::from_ops(&ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["XIZY", "IIII", "ZZZZZZZ", "Y"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage_and_empty() {
        assert!(matches!(
            "XQZ".parse::<PauliString>(),
            Err(ParsePauliError::InvalidCharacter('Q'))
        ));
        assert!(matches!(
            "".parse::<PauliString>(),
            Err(ParsePauliError::Empty)
        ));
    }

    #[test]
    fn weight_and_support() {
        let s = p("XIZYI");
        assert_eq!(s.weight(), 3);
        assert_eq!(s.support(), vec![0, 2, 3]);
        assert!(p("IIII").is_identity());
        assert_eq!(p("IIII").weight(), 0);
        assert_eq!(p("YYYY").weight(), 4);
    }

    #[test]
    fn uniformity() {
        assert!(p("ZIZZ").is_uniform(PauliOp::Z));
        assert!(!p("ZIXZ").is_uniform(PauliOp::Z));
        assert!(p("IIII").is_uniform(PauliOp::X));
    }

    #[test]
    fn commutation_examples() {
        // ZZ and XX commute (two anticommuting positions).
        assert!(p("ZZ").commutes_with(&p("XX")));
        // ZI and XI anticommute.
        assert!(!p("ZI").commutes_with(&p("XI")));
        // Identity commutes with everything.
        assert!(p("II").commutes_with(&p("XY")));
        // The paper's example: ZZZZ and YYXX commute.
        assert!(p("ZZZZ").commutes_with(&p("YYXX")));
        // ...but ZZZZ and XXZZ also commute, while ZIII and XIII do not.
        assert!(!p("ZIII").commutes_with(&p("XIII")));
    }

    #[test]
    fn multiplication_matches_single_qubit_rules() {
        // (X ⊗ Z) · (Y ⊗ I) = (XY) ⊗ Z = iZ ⊗ Z
        let (r, k) = p("XZ").mul(&p("YI"));
        assert_eq!(r, p("ZZ"));
        assert_eq!(k, 1);
        // Self-product is the identity with no phase.
        let (r, k) = p("XYZ").mul(&p("XYZ"));
        assert!(r.is_identity());
        assert_eq!(k, 0);
    }

    #[test]
    fn multiplication_phase_accumulates() {
        // (X⊗X)·(Y⊗Y) = (iZ)⊗(iZ) = -(Z⊗Z)
        let (r, k) = p("XX").mul(&p("YY"));
        assert_eq!(r, p("ZZ"));
        assert_eq!(k, 2);
    }

    #[test]
    fn restrict_and_embed_are_inverse_on_support() {
        let s = p("XIZYI");
        let sup = s.support();
        let restricted = s.restrict(&sup);
        assert_eq!(restricted.to_string(), "XZY");
        let embedded = restricted.embed(5, &sup);
        assert_eq!(embedded, s);
    }

    #[test]
    fn op_histogram_counts() {
        assert_eq!(p("XXYZI").op_histogram(), (1, 2, 1, 1));
    }

    #[test]
    fn single_constructor() {
        let s = PauliString::single(4, 2, PauliOp::Y);
        assert_eq!(s.to_string(), "IIYI");
    }

    #[test]
    #[should_panic(expected = "qubit count mismatch")]
    fn mul_mismatched_sizes_panics() {
        let _ = p("XX").mul(&p("XXX"));
    }
}

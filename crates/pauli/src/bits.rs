//! A small fixed-length bit vector backed by `u64` words.
//!
//! [`BitVec`] is the storage primitive behind [`PauliString`](crate::PauliString):
//! a Pauli string over `n` qubits is a pair of length-`n` bit vectors (the X
//! block and the Z block of the symplectic representation). The type is kept
//! deliberately small — only the operations needed by the Pauli/Clifford
//! algebra are provided — but those operations are word-parallel so that
//! conjugating Pauli strings through large Clifford tableaus stays cheap.
//!
//! The bulk operations (`xor_with`, `and_popcount`, …) run on the wide-lane
//! kernels of the [`simd`] shim, so a single cargo feature on that crate
//! (`lane2`/`lane4`/`lane8`) selects how many words every kernel in the
//! workspace processes per step.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-length vector of bits.
///
/// The length is fixed at construction time; all binary operations panic if
/// the lengths disagree, which turns qubit-count mismatches into loud errors
/// instead of silent truncation.
///
/// # Examples
///
/// ```
/// use quclear_pauli::BitVec;
///
/// let mut bits = BitVec::zeros(70);
/// bits.set(3, true);
/// bits.set(69, true);
/// assert_eq!(bits.count_ones(), 2);
/// assert!(bits.get(69));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        let nwords = len.div_ceil(WORD_BITS);
        BitVec {
            len,
            words: vec![0; nwords],
        }
    }

    /// Creates a bit vector from an iterator of booleans.
    ///
    /// # Examples
    ///
    /// ```
    /// use quclear_pauli::BitVec;
    /// let bits = BitVec::from_bools([true, false, true]);
    /// assert_eq!(bits.len(), 3);
    /// assert_eq!(bits.count_ones(), 2);
    /// ```
    #[must_use]
    pub fn from_bools<I: IntoIterator<Item = bool>>(bools: I) -> Self {
        let bools: Vec<bool> = bools.into_iter().collect();
        let mut bv = BitVec::zeros(bools.len());
        for (i, b) in bools.iter().enumerate() {
            bv.set(i, *b);
        }
        bv
    }

    /// Number of bits in the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[must_use]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at position `idx` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx / WORD_BITS];
        let mask = 1u64 << (idx % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips the bit at position `idx`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn toggle(&mut self, idx: usize) -> bool {
        let new = !self.get(idx);
        self.set(idx, new);
        new
    }

    /// Number of bits set to one.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        debug_assert!(self.tail_is_clear(), "dirty tail word in count_ones");
        simd::popcount(&self.words) as usize
    }

    /// Returns `true` if no bit is set.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// XORs `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in BitVec::xor_with");
        simd::xor_into(&mut self.words, &other.words);
    }

    /// ORs `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in BitVec::or_with");
        simd::or_into(&mut self.words, &other.words);
    }

    /// Returns the number of positions where both vectors have a one bit,
    /// without materializing the AND.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and_popcount(&self, other: &BitVec) -> usize {
        assert_eq!(
            self.len, other.len,
            "length mismatch in BitVec::and_popcount"
        );
        debug_assert!(self.tail_is_clear(), "dirty tail word in and_popcount");
        debug_assert!(other.tail_is_clear(), "dirty tail word in and_popcount");
        simd::and_popcount(&self.words, &other.words) as usize
    }

    /// Alias of [`BitVec::and_popcount`], kept for the original call sites.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and_count(&self, other: &BitVec) -> usize {
        self.and_popcount(other)
    }

    /// Parity (XOR) of the AND of the two vectors; this is the symplectic
    /// building block used for commutation checks.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and_parity(&self, other: &BitVec) -> bool {
        self.and_count(other) % 2 == 1
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let base = wi * WORD_BITS;
            let len = self.len;
            IterWordOnes { word, base }.filter(move |&i| i < len)
        })
    }

    /// XORs the bit range `[start, end)` of `other` into the same range of
    /// `self`, touching whole words where possible and masking the partial
    /// words at the two ends.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or `start > end` or `end > self.len()`.
    pub fn xor_range(&mut self, other: &BitVec, start: usize, end: usize) {
        assert_eq!(self.len, other.len, "length mismatch in BitVec::xor_range");
        assert!(start <= end, "inverted range in BitVec::xor_range");
        assert!(end <= self.len, "range end {end} out of range {}", self.len);
        if start == end {
            return;
        }
        let first = start / WORD_BITS;
        let last = (end - 1) / WORD_BITS;
        // Masked partial words at the two ends, wide lanes for the interior.
        let mut lo = first;
        if !start.is_multiple_of(WORD_BITS) {
            let mut mask = u64::MAX << (start % WORD_BITS);
            if first == last {
                let tail = end % WORD_BITS;
                if tail != 0 {
                    mask &= u64::MAX >> (WORD_BITS - tail);
                }
            }
            self.words[first] ^= other.words[first] & mask;
            lo = first + 1;
        }
        if lo > last {
            return;
        }
        let mut hi = last + 1;
        let tail = end % WORD_BITS;
        if tail != 0 && last >= lo {
            self.words[last] ^= other.words[last] & (u64::MAX >> (WORD_BITS - tail));
            hi = last;
        }
        if lo < hi {
            simd::xor_into(&mut self.words[lo..hi], &other.words[lo..hi]);
        }
    }

    /// XORs the word-wise AND of `a` and `b` into `self`
    /// (`self ^= a & b`), the inner step of word-parallel sign updates.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with_and(&mut self, a: &BitVec, b: &BitVec) {
        assert_eq!(self.len, a.len, "length mismatch in BitVec::xor_with_and");
        assert_eq!(self.len, b.len, "length mismatch in BitVec::xor_with_and");
        simd::xor_and_into(&mut self.words, &a.words, &b.words);
    }

    /// XORs the word-wise AND-NOT of `a` and `b` into `self`
    /// (`self ^= a & !b`), the other sign-update primitive (`S†`/`√X`
    /// conjugation flips signs where one plane is set and the other clear).
    ///
    /// The complement of `b` only exists lane-by-lane inside the kernel, so
    /// its tail words never see the inverted padding bits — `self` stays
    /// canonical.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with_andnot(&mut self, a: &BitVec, b: &BitVec) {
        assert_eq!(
            self.len, a.len,
            "length mismatch in BitVec::xor_with_andnot"
        );
        assert_eq!(
            self.len, b.len,
            "length mismatch in BitVec::xor_with_andnot"
        );
        simd::xor_andnot_into(&mut self.words, &a.words, &b.words);
        // a & !b can set padding bits only where a's tail is dirty; a
        // canonical `a` keeps `self` canonical. Checked, not re-masked, so
        // the cost is debug-only.
        debug_assert!(self.tail_is_clear(), "dirty tail word in xor_with_andnot");
    }

    /// The backing `u64` words, least-significant bit first.
    ///
    /// Bits at positions `>= len()` are always zero, so the words are a
    /// canonical representation of the vector — suitable for word-at-a-time
    /// hashing (e.g. structural fingerprints of Pauli programs).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words for word-parallel kernels.
    ///
    /// Callers must keep bits at positions `>= len()` zero: every counting
    /// operation (`count_ones`, `and_parity`, …) assumes the tail bits are a
    /// canonical zero padding. Writing garbage above `len()` silently
    /// corrupts popcount-based results — debug builds catch it via the
    /// [`BitVec::tail_is_clear`] assertions in the counting ops.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Returns `true` if every bit at position `>= len()` in the final
    /// partial word is zero — the canonical-padding invariant that
    /// popcount-based operations rely on.
    ///
    /// Always `true` unless a [`BitVec::words_mut`] caller wrote past the
    /// logical length; counting operations `debug_assert!` it.
    #[must_use]
    pub fn tail_is_clear(&self) -> bool {
        let tail = self.len % WORD_BITS;
        if tail == 0 {
            return true;
        }
        match self.words.last() {
            Some(&last) => last & (u64::MAX << tail) == 0,
            None => true,
        }
    }

    /// Flips every bit in the vector (`self = !self`), masking the partial
    /// tail word so bits at positions `>= len()` stay zero.
    pub fn flip_all(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> (WORD_BITS - tail);
            }
        }
    }

    /// Resets every bit to zero.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }
}

/// Transposes a 64×64 bit matrix in place (the recursive block swap of
/// Hacker's Delight 7-3, mirrored for least-significant-bit-first
/// indexing): entry (bit `j` of word `i`) swaps with (bit `i` of word `j`).
///
/// This is the building block for word-parallel layout changes between
/// row-major bit vectors and column-major bit-planes (Pauli frames, shot
/// batches): 4096 bits move in ~6·64 word operations, never one at a time.
pub fn transpose64(a: &mut [u64; 64]) {
    transpose64_top(a, 64);
}

/// [`transpose64`], but only the first `rows` output words are produced;
/// the remaining words are left in an unspecified state.
///
/// Butterflies whose outputs all land past `rows` are skipped, so a partial
/// transpose costs roughly `rows/64` of the full ladder plus the shared
/// leading stages — packing `n`-qubit shot indices into `n < 64` planes
/// (the `ShotBatch` ingest path in `quclear-core`) never pays for the
/// 64 − n planes it is about to throw away. A stage with stride `j` only ever mixes rows
/// within an aligned `2j`-block, so the rows needed *at* that stage are
/// `rows` rounded up to the enclosing aligned `j`-blocks — everything below
/// that bound is computed exactly as in the full transpose.
///
/// # Panics
///
/// Panics if `rows` is 0 or greater than 64.
pub fn transpose64_top(a: &mut [u64; 64], rows: usize) {
    assert!((1..=64).contains(&rows), "rows must be in 1..=64");
    let mut j = 32;
    let mut m: u64 = 0xFFFF_FFFF_0000_0000;
    while j != 0 {
        // Output rows this stage must produce: the full aligned j-blocks
        // covering `rows` (later stages never reach outside their block).
        let needed = rows.div_ceil(j) * j;
        let mut k = 0;
        while k < needed {
            let t = (a[k] ^ (a[k | j] << j)) & m;
            a[k] ^= t;
            if (k | j) < needed {
                a[k | j] ^= t >> j;
            }
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m >> j;
    }
}

/// Transposes up to 64 source words into their first `rows ≤ 32` transposed
/// rows, fusing the source load with the stride-32 butterfly stage.
///
/// When at most 32 output rows are wanted, the stride-32 stage only keeps
/// the low half of every butterfly, so the 64 source words collapse into a
/// 32-word working block as they are first read — there is no 64-word copy
/// and the remaining ladder runs on half the state. This is the hot path of
/// shot-index packing (`ShotBatch::from_indices` in `quclear-core`) for
/// `n ≤ 32` qubits. Source words past `chunk.len()` are treated as zero (a
/// partial tail block of shots).
///
/// # Panics
///
/// Panics if `rows` is 0 or greater than 32, or `chunk` has more than 64
/// words.
#[must_use]
pub fn transpose64_pack32(chunk: &[u64], rows: usize) -> [u64; 32] {
    assert!((1..=32).contains(&rows), "rows must be in 1..=32");
    assert!(
        chunk.len() <= 64,
        "a transpose block holds at most 64 words"
    );
    let src = |i: usize| chunk.get(i).copied().unwrap_or(0);
    let mut a = [0u64; 32];
    // Stride-32 stage fused with the load: only the low output rows are
    // kept, so each pair (k, k+32) of source words produces one block word.
    let m32: u64 = 0xFFFF_FFFF_0000_0000;
    for (k, word) in a.iter_mut().enumerate() {
        let x = src(k);
        let t = (x ^ (src(k + 32) << 32)) & m32;
        *word = x ^ t;
    }
    // Remaining ladder, pruned exactly as in [`transpose64_top`].
    let mut j = 16;
    let mut m: u64 = 0xFFFF_0000_FFFF_0000;
    while j != 0 {
        let needed = rows.div_ceil(j) * j;
        let mut k = 0;
        while k < needed {
            let t = (a[k] ^ (a[k | j] << j)) & m;
            a[k] ^= t;
            if (k | j) < needed {
                a[k | j] ^= t >> j;
            }
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m >> j;
    }
    a
}

struct IterWordOnes {
    word: u64,
    base: usize,
}

impl Iterator for IterWordOnes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            None
        } else {
            let tz = self.word.trailing_zeros() as usize;
            self.word &= self.word - 1;
            Some(self.base + tz)
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_empty_of_ones() {
        let b = BitVec::zeros(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        assert!(b.is_zero());
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut b = BitVec::zeros(130);
        for idx in [0, 1, 63, 64, 65, 127, 128, 129] {
            b.set(idx, true);
            assert!(b.get(idx), "bit {idx} should be set");
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn toggle_flips() {
        let mut b = BitVec::zeros(5);
        assert!(b.toggle(2));
        assert!(!b.toggle(2));
        assert!(b.is_zero());
    }

    #[test]
    fn xor_with_combines() {
        let a = BitVec::from_bools([true, false, true, false]);
        let b = BitVec::from_bools([true, true, false, false]);
        let mut c = a.clone();
        c.xor_with(&b);
        assert_eq!(c, BitVec::from_bools([false, true, true, false]));
    }

    #[test]
    fn and_count_and_parity() {
        let a = BitVec::from_bools([true, true, true, false]);
        let b = BitVec::from_bools([true, true, false, true]);
        assert_eq!(a.and_count(&b), 2);
        assert!(!a.and_parity(&b));
        let c = BitVec::from_bools([true, false, false, false]);
        assert!(a.and_parity(&c));
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut b = BitVec::zeros(200);
        let idxs = [3, 64, 65, 150, 199];
        for &i in &idxs {
            b.set(i, true);
        }
        let collected: Vec<usize> = b.iter_ones().collect();
        assert_eq!(collected, idxs);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let b = BitVec::zeros(4);
        let _ = b.get(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        let mut a = BitVec::zeros(4);
        let b = BitVec::zeros(5);
        a.xor_with(&b);
    }

    #[test]
    fn clear_resets() {
        let mut b = BitVec::from_bools([true, true, true]);
        b.clear();
        assert!(b.is_zero());
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn xor_range_within_one_word() {
        let mut a = BitVec::zeros(40);
        let mut b = BitVec::zeros(40);
        for i in 0..40 {
            b.set(i, true);
        }
        a.xor_range(&b, 5, 9);
        let expected: Vec<usize> = (5..9).collect();
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn xor_range_across_word_boundary() {
        let mut a = BitVec::zeros(200);
        let mut b = BitVec::zeros(200);
        for i in 0..200 {
            b.set(i, i % 2 == 0);
        }
        a.xor_range(&b, 60, 131);
        for i in 0..200 {
            let expected = (60..131).contains(&i) && i % 2 == 0;
            assert_eq!(a.get(i), expected, "bit {i}");
        }
        // XORing the same range again cancels it.
        a.xor_range(&b, 60, 131);
        assert!(a.is_zero());
    }

    #[test]
    fn xor_range_trailing_partial_word() {
        // len = 70: the second word holds only 6 valid bits.
        let mut a = BitVec::zeros(70);
        let mut b = BitVec::zeros(70);
        for i in 0..70 {
            b.set(i, true);
        }
        a.xor_range(&b, 64, 70);
        assert_eq!(
            a.iter_ones().collect::<Vec<_>>(),
            vec![64, 65, 66, 67, 68, 69]
        );
        // Full-length range equals xor_with.
        let mut c = BitVec::zeros(70);
        c.xor_range(&b, 0, 70);
        assert_eq!(c, b);
        // Empty range is a no-op.
        c.xor_range(&b, 33, 33);
        assert_eq!(c, b);
    }

    #[test]
    fn and_count_across_word_boundaries() {
        let mut a = BitVec::zeros(130);
        let mut b = BitVec::zeros(130);
        for i in [0, 63, 64, 65, 127, 128, 129] {
            a.set(i, true);
        }
        for i in [63, 64, 100, 129] {
            b.set(i, true);
        }
        assert_eq!(a.and_count(&b), 3); // 63, 64, 129
        assert!(a.and_parity(&b));
    }

    #[test]
    fn xor_with_and_matches_bitwise_definition() {
        let a = BitVec::from_bools((0..100).map(|i| i % 3 == 0));
        let b = BitVec::from_bools((0..100).map(|i| i % 5 == 0));
        let mut s = BitVec::from_bools((0..100).map(|i| i % 7 == 0));
        let mut expected = s.clone();
        for i in 0..100 {
            expected.set(i, expected.get(i) ^ (a.get(i) & b.get(i)));
        }
        s.xor_with_and(&a, &b);
        assert_eq!(s, expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xor_range_out_of_range_panics() {
        let mut a = BitVec::zeros(10);
        let b = BitVec::zeros(10);
        a.xor_range(&b, 0, 11);
    }

    #[test]
    fn transpose64_moves_every_bit() {
        let mut a = [0u64; 64];
        let mut s = 0x1234_5678u64;
        for w in a.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *w = s;
        }
        let orig = a;
        transpose64(&mut a);
        for (i, &before) in orig.iter().enumerate() {
            for (j, &after) in a.iter().enumerate() {
                assert_eq!((after >> i) & 1, (before >> j) & 1, "entry ({i},{j})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn transpose64_top_matches_full_prefix_at_every_row_count() {
        let mut base = [0u64; 64];
        let mut s = 0x9e37_79b9u64;
        for w in base.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *w = s;
        }
        let mut full = base;
        transpose64(&mut full);
        for rows in 1..=64 {
            let mut partial = base;
            transpose64_top(&mut partial, rows);
            assert_eq!(partial[..rows], full[..rows], "rows = {rows}");
        }
    }

    #[test]
    fn transpose64_pack32_matches_full_at_every_row_count_and_chunk_len() {
        let mut base = [0u64; 64];
        let mut s = 0x51_7cc1u64;
        for w in base.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *w = s;
        }
        for chunk_len in [0usize, 1, 13, 31, 32, 33, 57, 63, 64] {
            let mut full = [0u64; 64];
            full[..chunk_len].copy_from_slice(&base[..chunk_len]);
            transpose64(&mut full);
            for rows in 1..=32 {
                let packed = transpose64_pack32(&base[..chunk_len], rows);
                assert_eq!(
                    packed[..rows],
                    full[..rows],
                    "chunk_len = {chunk_len}, rows = {rows}"
                );
            }
        }
    }

    #[test]
    fn flip_all_masks_the_tail() {
        let mut b = BitVec::zeros(70);
        b.set(3, true);
        b.set(69, true);
        b.flip_all();
        assert_eq!(b.count_ones(), 68);
        assert!(!b.get(3) && !b.get(69));
        assert!(b.get(0) && b.get(64) && b.get(68));
        // Double flip is the identity.
        b.flip_all();
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 69]);
        // Word-aligned length: no tail to mask.
        let mut c = BitVec::zeros(64);
        c.flip_all();
        assert_eq!(c.count_ones(), 64);
    }

    #[test]
    fn or_with_combines() {
        let mut a = BitVec::from_bools((0..130).map(|i| i % 3 == 0));
        let b = BitVec::from_bools((0..130).map(|i| i % 5 == 0));
        a.or_with(&b);
        for i in 0..130 {
            assert_eq!(a.get(i), i % 3 == 0 || i % 5 == 0, "bit {i}");
        }
    }

    #[test]
    fn and_popcount_matches_and_count() {
        let a = BitVec::from_bools((0..200).map(|i| i % 3 == 0));
        let b = BitVec::from_bools((0..200).map(|i| i % 4 == 0));
        let want = (0..200).filter(|i| i % 3 == 0 && i % 4 == 0).count();
        assert_eq!(a.and_popcount(&b), want);
        assert_eq!(a.and_count(&b), want);
    }

    #[test]
    fn xor_with_andnot_matches_bitwise_definition() {
        let a = BitVec::from_bools((0..100).map(|i| i % 3 == 0));
        let b = BitVec::from_bools((0..100).map(|i| i % 5 == 0));
        let mut s = BitVec::from_bools((0..100).map(|i| i % 7 == 0));
        let mut expected = s.clone();
        for i in 0..100 {
            expected.set(i, expected.get(i) ^ (a.get(i) & !b.get(i)));
        }
        s.xor_with_andnot(&a, &b);
        assert_eq!(s, expected);
        assert!(s.tail_is_clear());
    }

    #[test]
    fn xor_range_wide_interior_with_masked_ends() {
        // Long enough that the interior spans several full lanes.
        let mut a = BitVec::zeros(1000);
        let b = BitVec::from_bools((0..1000).map(|i| i % 2 == 0));
        a.xor_range(&b, 3, 997);
        for i in 0..1000 {
            let expected = (3..997).contains(&i) && i % 2 == 0;
            assert_eq!(a.get(i), expected, "bit {i}");
        }
        // Word-aligned start, masked end only.
        let mut c = BitVec::zeros(1000);
        c.xor_range(&b, 64, 999);
        for i in 0..1000 {
            let expected = (64..999).contains(&i) && i % 2 == 0;
            assert_eq!(c.get(i), expected, "bit {i}");
        }
        assert!(a.tail_is_clear() && c.tail_is_clear());
    }

    #[test]
    fn tail_is_clear_tracks_padding() {
        let mut b = BitVec::zeros(70);
        assert!(b.tail_is_clear());
        b.set(69, true);
        assert!(b.tail_is_clear());
        b.words_mut()[1] |= 1 << 20; // bit 84: past len
        assert!(!b.tail_is_clear());
        // Word-aligned lengths have no padding to dirty.
        let mut c = BitVec::zeros(128);
        c.words_mut()[1] = u64::MAX;
        assert!(c.tail_is_clear());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dirty tail word")]
    fn dirty_tail_is_caught_by_counting_ops() {
        let mut b = BitVec::zeros(70);
        b.words_mut()[1] |= 1 << 30;
        let _ = b.count_ones();
    }

    #[test]
    fn from_bools_empty() {
        let b = BitVec::from_bools(std::iter::empty());
        assert!(b.is_empty());
        assert!(b.is_zero());
    }
}

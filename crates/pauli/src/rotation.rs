//! Pauli rotations: the building block `exp(-i·θ/2 · P)` of quantum
//! simulation circuits.

use std::fmt;

use crate::{PauliString, SignedPauli};

/// An exponentiated Pauli string `exp(-i·angle/2 · P)`.
///
/// This is the elementary block of Trotterized Hamiltonian simulation, UCCSD
/// ansätze and QAOA layers. The sign convention matches the usual `Rz(θ)`
/// convention so that a weight-1 `Z` rotation is literally an `Rz` gate on
/// that qubit.
///
/// Conjugating the Pauli by a Clifford can introduce a −1 sign
/// (`C† P C = -P'`), which is equivalent to negating the rotation angle
/// (`e^{i(−P)t} = e^{iP(−t)}` in the paper's notation); see
/// [`PauliRotation::with_signed_pauli`].
///
/// # Examples
///
/// ```
/// use quclear_pauli::PauliRotation;
///
/// let rot = PauliRotation::parse("ZZII", 0.25)?;
/// assert_eq!(rot.pauli().weight(), 2);
/// assert_eq!(rot.angle(), 0.25);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct PauliRotation {
    pauli: PauliString,
    angle: f64,
}

impl PauliRotation {
    /// Creates a rotation `exp(-i·angle/2 · pauli)`.
    #[must_use]
    pub fn new(pauli: PauliString, angle: f64) -> Self {
        PauliRotation { pauli, angle }
    }

    /// Parses the Pauli string and creates the rotation.
    ///
    /// # Errors
    ///
    /// Returns an error if `pauli` is not a valid Pauli string.
    pub fn parse(pauli: &str, angle: f64) -> Result<Self, crate::ParsePauliError> {
        Ok(PauliRotation::new(pauli.parse()?, angle))
    }

    /// Creates a rotation from a signed Pauli, folding the sign into the
    /// angle: `exp(-i·θ/2·(−P)) = exp(-i·(−θ)/2·P)`.
    #[must_use]
    pub fn with_signed_pauli(signed: SignedPauli, angle: f64) -> Self {
        let angle = if signed.is_negative() { -angle } else { angle };
        PauliRotation::new(signed.into_pauli(), angle)
    }

    /// The rotation axis.
    #[must_use]
    pub fn pauli(&self) -> &PauliString {
        &self.pauli
    }

    /// The rotation angle θ in `exp(-i·θ/2·P)`.
    #[must_use]
    pub fn angle(&self) -> f64 {
        self.angle
    }

    /// Number of qubits the rotation acts on.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.pauli.num_qubits()
    }

    /// Pauli weight of the rotation axis.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.pauli.weight()
    }

    /// Returns `true` if the rotation is trivial: identity axis or zero angle.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.pauli.is_identity() || self.angle == 0.0
    }

    /// Number of CNOT gates of the textbook (unoptimized) V-shaped synthesis:
    /// `2·(weight − 1)` for non-trivial rotations, `0` otherwise.
    #[must_use]
    pub fn native_cnot_cost(&self) -> usize {
        let w = self.weight();
        if w <= 1 {
            0
        } else {
            2 * (w - 1)
        }
    }

    /// Number of single-qubit gates of the textbook synthesis: two basis
    /// changes per X operator, four per Y operator (`H`/`S†H` pairs and their
    /// mirrors), plus the `Rz` itself.
    #[must_use]
    pub fn native_single_qubit_cost(&self) -> usize {
        if self.is_trivial() {
            return 0;
        }
        let (_, nx, ny, _) = self.pauli.op_histogram();
        2 * nx + 4 * ny + 1
    }
}

impl fmt::Display for PauliRotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exp(-i·{:.6}/2·{})", self.angle, self.pauli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_accessors() {
        let r = PauliRotation::parse("XYZI", 1.5).unwrap();
        assert_eq!(r.num_qubits(), 4);
        assert_eq!(r.weight(), 3);
        assert_eq!(r.angle(), 1.5);
        assert!(!r.is_trivial());
    }

    #[test]
    fn signed_pauli_flips_angle() {
        let sp: SignedPauli = "-ZZ".parse().unwrap();
        let r = PauliRotation::with_signed_pauli(sp, 0.7);
        assert_eq!(r.angle(), -0.7);
        assert_eq!(r.pauli().to_string(), "ZZ");

        let sp: SignedPauli = "+ZZ".parse().unwrap();
        let r = PauliRotation::with_signed_pauli(sp, 0.7);
        assert_eq!(r.angle(), 0.7);
    }

    #[test]
    fn trivial_rotations() {
        assert!(PauliRotation::parse("III", 0.4).unwrap().is_trivial());
        assert!(PauliRotation::parse("XYZ", 0.0).unwrap().is_trivial());
        assert!(!PauliRotation::parse("XYZ", 0.4).unwrap().is_trivial());
    }

    #[test]
    fn native_costs_match_table_ii_conventions() {
        // A weight-4 all-Z string costs 6 CNOTs and 1 single-qubit gate.
        let r = PauliRotation::parse("ZZZZ", 0.1).unwrap();
        assert_eq!(r.native_cnot_cost(), 6);
        assert_eq!(r.native_single_qubit_cost(), 1);
        // An XX string costs 2 CNOTs and 2·2 + 1 = 5 single-qubit gates.
        let r = PauliRotation::parse("XX", 0.1).unwrap();
        assert_eq!(r.native_cnot_cost(), 2);
        assert_eq!(r.native_single_qubit_cost(), 5);
        // A weight-1 rotation needs no CNOTs.
        let r = PauliRotation::parse("IXI", 0.1).unwrap();
        assert_eq!(r.native_cnot_cost(), 0);
        assert_eq!(r.native_single_qubit_cost(), 3);
    }

    #[test]
    fn display_contains_axis() {
        let r = PauliRotation::parse("XZ", 0.5).unwrap();
        assert!(r.to_string().contains("XZ"));
    }
}

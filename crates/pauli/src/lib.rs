//! Pauli-string algebra for the QuCLEAR reproduction.
//!
//! This crate provides the foundational data types used by every other crate
//! in the workspace:
//!
//! * [`BitVec`] — a small word-packed bit vector,
//! * [`PauliOp`] — a single-qubit Pauli operator,
//! * [`PauliString`] — a phase-free multi-qubit Pauli string in symplectic
//!   representation,
//! * [`SignedPauli`] — a Pauli string with a ±1 sign (the result type of
//!   Clifford conjugation),
//! * [`PauliRotation`] — the exponentiated Pauli block `exp(-i·θ/2·P)` that
//!   quantum-simulation circuits are made of.
//!
//! # Examples
//!
//! ```
//! use quclear_pauli::{PauliRotation, PauliString};
//!
//! // The motivating example of the QuCLEAR paper: e^{iZZZZ t1} e^{iYYXX t2}.
//! let p1: PauliString = "ZZZZ".parse()?;
//! let p2: PauliString = "YYXX".parse()?;
//! assert!(p1.commutes_with(&p2));
//!
//! let block = PauliRotation::new(p1, 0.3);
//! assert_eq!(block.native_cnot_cost(), 6);
//! # Ok::<(), quclear_pauli::ParsePauliError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bits;
mod frame;
mod op;
mod rotation;
mod signed;
mod string;

pub use bits::{transpose64, transpose64_pack32, transpose64_top, BitVec};
pub use frame::PauliFrame;
pub use op::PauliOp;
pub use rotation::PauliRotation;
pub use signed::SignedPauli;
pub use string::PauliString;

/// Lane width of the workspace's bit-plane kernels, in 64-bit words.
///
/// Fixed at compile time by the cargo features of the `simd` shim
/// (`lane2`/`lane4`/`lane8`, or `1` for the scalar fallback); surfaced here
/// so deployments can report which kernel configuration they are running.
#[must_use]
pub fn kernel_lane_words() -> usize {
    simd::LANE_WORDS
}

use std::error::Error;
use std::fmt;

/// Error produced when parsing Pauli strings from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsePauliError {
    /// The input contained a character other than `I`, `X`, `Y`, `Z`
    /// (or a leading sign for [`SignedPauli`]).
    InvalidCharacter(char),
    /// The input contained no Pauli characters.
    Empty,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePauliError::InvalidCharacter(c) => {
                write!(f, "invalid Pauli character `{c}`; expected I, X, Y or Z")
            }
            ParsePauliError::Empty => write!(f, "empty Pauli string"),
        }
    }
}

impl Error for ParsePauliError {}

/// Convenience helper that parses a slice of textual Pauli strings.
///
/// # Errors
///
/// Returns the first parse error encountered.
///
/// # Examples
///
/// ```
/// let paulis = quclear_pauli::parse_paulis(&["ZZI", "IXX"])?;
/// assert_eq!(paulis.len(), 2);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
pub fn parse_paulis(strings: &[&str]) -> Result<Vec<PauliString>, ParsePauliError> {
    strings.iter().map(|s| s.parse()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paulis_helper() {
        let ps = parse_paulis(&["XX", "ZZ"]).unwrap();
        assert_eq!(ps[0].to_string(), "XX");
        assert!(parse_paulis(&["XX", "A"]).is_err());
    }

    #[test]
    fn error_display() {
        let e = ParsePauliError::InvalidCharacter('q');
        assert!(e.to_string().contains('q'));
        assert!(ParsePauliError::Empty.to_string().contains("empty"));
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BitVec>();
        assert_send_sync::<PauliFrame>();
        assert_send_sync::<PauliOp>();
        assert_send_sync::<PauliString>();
        assert_send_sync::<SignedPauli>();
        assert_send_sync::<PauliRotation>();
    }
}

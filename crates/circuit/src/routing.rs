//! SWAP-insertion routing onto devices with limited connectivity.
//!
//! This is a compact greedy router in the spirit of SABRE: it keeps a
//! logical→physical layout, executes gates whose qubits are adjacent, and
//! otherwise inserts SWAPs along a shortest path, preferring the direction
//! that also helps upcoming gates. It is used for the paper's Figure 11
//! (mapping to Sycamore-like and heavy-hex devices).

use crate::{Circuit, CouplingMap};

/// The outcome of routing a logical circuit onto a device.
#[derive(Clone, Debug)]
pub struct RoutingResult {
    /// The physical circuit (acting on `coupling.num_qubits()` qubits) with
    /// SWAPs inserted.
    pub circuit: Circuit,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
    /// Final logical→physical layout after routing.
    pub final_layout: Vec<usize>,
    /// Initial logical→physical layout used.
    pub initial_layout: Vec<usize>,
}

/// Routes `circuit` onto `coupling`, choosing an interaction-aware initial
/// layout automatically.
///
/// # Panics
///
/// Panics if the device has fewer qubits than the circuit or is disconnected.
#[must_use]
pub fn route(circuit: &Circuit, coupling: &CouplingMap) -> RoutingResult {
    let layout = initial_layout_by_interaction(circuit, coupling);
    route_with_layout(circuit, coupling, layout)
}

/// Routes `circuit` onto `coupling` starting from an explicit
/// logical→physical layout.
///
/// # Panics
///
/// Panics if the layout is not an injective map into the device qubits, if
/// the device has fewer qubits than the circuit, or if the device is
/// disconnected.
#[must_use]
pub fn route_with_layout(
    circuit: &Circuit,
    coupling: &CouplingMap,
    initial_layout: Vec<usize>,
) -> RoutingResult {
    let n_logical = circuit.num_qubits();
    let n_physical = coupling.num_qubits();
    assert!(
        n_logical <= n_physical,
        "device has {n_physical} qubits but the circuit needs {n_logical}"
    );
    assert!(coupling.is_connected(), "coupling map must be connected");
    assert_eq!(
        initial_layout.len(),
        n_logical,
        "layout must cover every logical qubit"
    );
    {
        let mut seen = vec![false; n_physical];
        for &p in &initial_layout {
            assert!(p < n_physical, "layout entry {p} out of range");
            assert!(!seen[p], "layout maps two logical qubits to physical {p}");
            seen[p] = true;
        }
    }

    // l2p[logical] = physical, p2l[physical] = Some(logical).
    let mut l2p = initial_layout.clone();
    let mut p2l: Vec<Option<usize>> = vec![None; n_physical];
    for (l, &p) in l2p.iter().enumerate() {
        p2l[p] = Some(l);
    }

    // Upcoming two-qubit interactions per gate index, used for the lookahead
    // score when deciding the swap direction.
    let future: Vec<(usize, usize)> = circuit
        .gates()
        .iter()
        .filter(|g| g.is_two_qubit())
        .map(|g| {
            let q = g.qubits();
            (q[0], q[1])
        })
        .collect();

    let mut out = Circuit::new(n_physical);
    let mut swap_count = 0usize;
    let mut future_idx = 0usize;

    let apply_swap = |a: usize,
                      b: usize,
                      out: &mut Circuit,
                      l2p: &mut Vec<usize>,
                      p2l: &mut Vec<Option<usize>>,
                      swap_count: &mut usize| {
        out.swap(a, b);
        *swap_count += 1;
        let la = p2l[a];
        let lb = p2l[b];
        if let Some(l) = la {
            l2p[l] = b;
        }
        if let Some(l) = lb {
            l2p[l] = a;
        }
        p2l.swap(a, b);
    };

    for gate in circuit.gates() {
        if !gate.is_two_qubit() {
            out.push(gate.map_qubits(|q| l2p[q]));
            continue;
        }
        let qs = gate.qubits();
        let (la, lb) = (qs[0], qs[1]);
        future_idx += 1;
        loop {
            let (pa, pb) = (l2p[la], l2p[lb]);
            if coupling.are_connected(pa, pb) {
                out.push(gate.map_qubits(|q| l2p[q]));
                break;
            }
            // Candidate swaps: move either endpoint one step along a shortest
            // path towards the other. Pick the candidate that minimizes the
            // remaining distance plus a small lookahead term.
            let mut best: Option<(usize, usize, f64)> = None;
            for (src, dst) in [(pa, pb), (pb, pa)] {
                for &nb in coupling.neighbors(src) {
                    if coupling.distance(nb, dst) + 1 != coupling.distance(src, dst) {
                        continue;
                    }
                    // Simulate the swap (src, nb) and score it.
                    let mut trial_l2p = l2p.clone();
                    if let Some(l) = p2l[src] {
                        trial_l2p[l] = nb;
                    }
                    if let Some(l) = p2l[nb] {
                        trial_l2p[l] = src;
                    }
                    let mut score = coupling.distance(trial_l2p[la], trial_l2p[lb]) as f64;
                    let lookahead = future.iter().skip(future_idx).take(8);
                    for (i, &(fa, fb)) in lookahead.enumerate() {
                        let d = coupling.distance(trial_l2p[fa], trial_l2p[fb]) as f64;
                        score += d * 0.5_f64.powi(i as i32 + 1);
                    }
                    if best.is_none() || score < best.unwrap().2 {
                        best = Some((src, nb, score));
                    }
                }
            }
            let (a, b, _) = best.expect("connected coupling map always offers a swap");
            apply_swap(a, b, &mut out, &mut l2p, &mut p2l, &mut swap_count);
        }
    }

    RoutingResult {
        circuit: out,
        swap_count,
        final_layout: l2p,
        initial_layout,
    }
}

/// Chooses an initial layout by placing the most-interacting logical qubits
/// on a BFS-connected cluster of high-degree physical qubits.
///
/// # Panics
///
/// Panics if the device has fewer qubits than the circuit.
#[must_use]
pub fn initial_layout_by_interaction(circuit: &Circuit, coupling: &CouplingMap) -> Vec<usize> {
    let n_logical = circuit.num_qubits();
    let n_physical = coupling.num_qubits();
    assert!(
        n_logical <= n_physical,
        "device has {n_physical} qubits but the circuit needs {n_logical}"
    );

    // Interaction count per logical qubit.
    let mut weight = vec![0usize; n_logical];
    for g in circuit.gates() {
        if g.is_two_qubit() {
            for q in g.qubits() {
                weight[q] += 1;
            }
        }
    }
    let mut logical_order: Vec<usize> = (0..n_logical).collect();
    logical_order.sort_by_key(|&q| std::cmp::Reverse(weight[q]));

    // BFS over physical qubits starting from the highest-degree one.
    let start = (0..n_physical)
        .max_by_key(|&q| coupling.neighbors(q).len())
        .unwrap_or(0);
    let mut visited = vec![false; n_physical];
    let mut order = Vec::with_capacity(n_physical);
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &nb in coupling.neighbors(v) {
            if !visited[nb] {
                visited[nb] = true;
                queue.push_back(nb);
            }
        }
    }

    let mut layout = vec![usize::MAX; n_logical];
    for (slot, &logical) in logical_order.iter().enumerate() {
        layout[logical] = order[slot];
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    fn all_to_all_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for a in 0..n {
            for b in a + 1..n {
                c.cx(a, b);
            }
        }
        c
    }

    #[test]
    fn routing_on_full_connectivity_inserts_no_swaps() {
        let c = all_to_all_circuit(5);
        let result = route(&c, &CouplingMap::fully_connected(5));
        assert_eq!(result.swap_count, 0);
        assert_eq!(result.circuit.cnot_count(), c.cnot_count());
    }

    #[test]
    fn routing_respects_connectivity() {
        let c = all_to_all_circuit(5);
        let coupling = CouplingMap::linear(5);
        let result = route(&c, &coupling);
        for g in result.circuit.gates() {
            if g.is_two_qubit() {
                let q = g.qubits();
                assert!(
                    coupling.are_connected(q[0], q[1]),
                    "gate {g} not on an edge"
                );
            }
        }
        assert!(result.swap_count > 0);
    }

    #[test]
    fn single_qubit_gates_follow_the_layout() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        c.h(0);
        let coupling = CouplingMap::linear(3);
        let result = route_with_layout(&c, &coupling, vec![0, 1, 2]);
        // After routing, the H must land on whatever physical qubit logical 0
        // occupies.
        let h_gate = result
            .circuit
            .gates()
            .iter()
            .find(|g| matches!(g, Gate::H(_)))
            .unwrap();
        assert_eq!(h_gate.qubits()[0], result.final_layout[0]);
    }

    #[test]
    fn layout_permutation_tracking_is_consistent() {
        let c = all_to_all_circuit(6);
        let coupling = CouplingMap::grid(2, 3);
        let result = route(&c, &coupling);
        let mut seen = vec![false; coupling.num_qubits()];
        for &p in &result.final_layout {
            assert!(!seen[p], "final layout must stay injective");
            seen[p] = true;
        }
    }

    #[test]
    fn grid_routing_cost_is_reasonable() {
        // A ladder on a line mapped to a grid should not explode.
        let mut c = Circuit::new(9);
        for q in 0..8 {
            c.cx(q, q + 1);
        }
        let result = route(&c, &CouplingMap::grid(3, 3));
        assert!(result.circuit.cnot_count() <= 8 + 3 * result.swap_count);
        assert!(result.swap_count < 20);
    }

    #[test]
    fn routed_circuit_counts_swaps_as_three_cnots() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let result = route_with_layout(&c, &CouplingMap::linear(3), vec![0, 1, 2]);
        assert_eq!(result.swap_count, 1);
        assert_eq!(result.circuit.cnot_count(), 4);
    }

    #[test]
    #[should_panic(expected = "device has")]
    fn too_small_device_panics() {
        let c = all_to_all_circuit(5);
        let _ = route(&c, &CouplingMap::linear(3));
    }

    #[test]
    #[should_panic(expected = "two logical qubits")]
    fn non_injective_layout_panics() {
        let c = all_to_all_circuit(3);
        let _ = route_with_layout(&c, &CouplingMap::linear(3), vec![0, 0, 1]);
    }
}

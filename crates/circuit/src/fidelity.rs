//! A simple noise model for estimating circuit fidelity.
//!
//! The motivation for QuCLEAR is that every removed two-qubit gate directly
//! improves the success probability on NISQ hardware. This module provides
//! the standard product-of-gate-fidelities estimate so that examples and
//! benchmarks can translate CNOT-count reductions into estimated fidelity
//! gains.

use crate::{Circuit, Gate};

/// Per-gate error rates of a depolarizing-style noise model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Error probability of a single-qubit gate.
    pub single_qubit_error: f64,
    /// Error probability of a two-qubit gate (a SWAP counts as three).
    pub two_qubit_error: f64,
}

impl NoiseModel {
    /// Typical error rates of current superconducting devices
    /// (0.02% single-qubit, 0.5% two-qubit).
    #[must_use]
    pub fn superconducting_typical() -> Self {
        NoiseModel {
            single_qubit_error: 2e-4,
            two_qubit_error: 5e-3,
        }
    }

    /// Creates a custom noise model.
    ///
    /// # Panics
    ///
    /// Panics if an error rate is outside `[0, 1]`.
    #[must_use]
    pub fn new(single_qubit_error: f64, two_qubit_error: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&single_qubit_error),
            "invalid 1q error rate"
        );
        assert!(
            (0.0..=1.0).contains(&two_qubit_error),
            "invalid 2q error rate"
        );
        NoiseModel {
            single_qubit_error,
            two_qubit_error,
        }
    }

    /// Estimated success probability of a circuit: the product of per-gate
    /// fidelities.
    #[must_use]
    pub fn estimated_fidelity(&self, circuit: &Circuit) -> f64 {
        let mut fidelity = 1.0f64;
        for gate in circuit.gates() {
            let error = match gate {
                Gate::Swap { .. } => 1.0 - (1.0 - self.two_qubit_error).powi(3),
                g if g.is_two_qubit() => self.two_qubit_error,
                _ => self.single_qubit_error,
            };
            fidelity *= 1.0 - error;
        }
        fidelity
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::superconducting_typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_has_unit_fidelity() {
        let model = NoiseModel::default();
        assert_eq!(model.estimated_fidelity(&Circuit::new(3)), 1.0);
    }

    #[test]
    fn fewer_cnots_means_higher_fidelity() {
        let model = NoiseModel::superconducting_typical();
        let mut small = Circuit::new(2);
        small.cx(0, 1);
        let mut big = Circuit::new(2);
        for _ in 0..10 {
            big.cx(0, 1);
        }
        assert!(model.estimated_fidelity(&small) > model.estimated_fidelity(&big));
    }

    #[test]
    fn swap_counts_as_three_two_qubit_gates() {
        let model = NoiseModel::new(0.0, 0.01);
        let mut swap = Circuit::new(2);
        swap.swap(0, 1);
        let mut three_cx = Circuit::new(2);
        three_cx.cx(0, 1);
        three_cx.cx(1, 0);
        three_cx.cx(0, 1);
        let a = model.estimated_fidelity(&swap);
        let b = model.estimated_fidelity(&three_cx);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid 2q error rate")]
    fn invalid_rates_rejected() {
        let _ = NoiseModel::new(0.0, 1.5);
    }
}

//! Device coupling maps (qubit connectivity graphs).
//!
//! The QuCLEAR evaluation maps circuits onto two devices with limited
//! connectivity: the 64-qubit Google Sycamore (a 2-D grid) and the 65-qubit
//! IBM Manhattan (a heavy-hex lattice). This module provides those topologies
//! plus the standard linear / fully-connected maps used in tests.

use std::collections::VecDeque;

/// An undirected qubit connectivity graph.
///
/// # Examples
///
/// ```
/// use quclear_circuit::CouplingMap;
///
/// let grid = CouplingMap::grid(2, 3);
/// assert_eq!(grid.num_qubits(), 6);
/// assert!(grid.are_connected(0, 1));
/// assert!(!grid.are_connected(0, 4));
/// assert_eq!(grid.distance(0, 5), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CouplingMap {
    num_qubits: usize,
    adjacency: Vec<Vec<usize>>,
    distance: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Builds a coupling map from an undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= num_qubits` or is a self-loop.
    #[must_use]
    pub fn from_edges(num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); num_qubits];
        for &(a, b) in edges {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loop ({a},{a}) is not a valid coupling edge");
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        let distance = all_pairs_shortest_paths(&adjacency);
        CouplingMap {
            num_qubits,
            adjacency,
            distance,
        }
    }

    /// A fully connected (all-to-all) device.
    #[must_use]
    pub fn fully_connected(num_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..num_qubits {
            for b in a + 1..num_qubits {
                edges.push((a, b));
            }
        }
        CouplingMap::from_edges(num_qubits, &edges)
    }

    /// A linear chain `0 - 1 - … - (n-1)`.
    #[must_use]
    pub fn linear(num_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..num_qubits.saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        CouplingMap::from_edges(num_qubits, &edges)
    }

    /// A `rows × cols` rectangular grid with nearest-neighbour connectivity.
    #[must_use]
    pub fn grid(rows: usize, cols: usize) -> Self {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        CouplingMap::from_edges(rows * cols, &edges)
    }

    /// A 64-qubit 2-D grid standing in for the Google Sycamore device used in
    /// the paper's Figure 11.
    #[must_use]
    pub fn sycamore_like() -> Self {
        CouplingMap::grid(8, 8)
    }

    /// A 65-qubit heavy-hex lattice standing in for the IBM Manhattan device
    /// used in the paper's Figure 11.
    ///
    /// The layout follows IBM's published heavy-hex pattern: four rows of ten
    /// qubits connected by bridge qubits every four columns, with the bridge
    /// column offset alternating between rows.
    #[must_use]
    pub fn heavy_hex_65() -> Self {
        // Row qubits: 4 rows × 10 qubits = 40; bridge qubits connect
        // neighbouring rows. IBM Manhattan has 65 qubits; we reproduce the
        // same counts: rows of 10, with 3 bridges between consecutive rows
        // plus end bridges, giving 40 + 25 = 65 qubits.
        let rows = 4usize;
        let cols = 10usize;
        let row_q = |r: usize, c: usize| r * cols + c;
        let mut next_free = rows * cols;
        let mut edges = Vec::new();
        // Horizontal chains.
        for r in 0..rows {
            for c in 0..cols - 1 {
                edges.push((row_q(r, c), row_q(r, c + 1)));
            }
        }
        // Bridge qubits between row r and r+1. Heavy-hex alternates the
        // columns the bridges attach to (0, 4, 8) and (2, 6) → we alternate
        // (0, 4, 8) and (2, 6, 9) to stay within 10 columns.
        for r in 0..rows - 1 {
            let columns: &[usize] = if r % 2 == 0 { &[0, 4, 8] } else { &[2, 6, 9] };
            for &c in columns {
                let bridge = next_free;
                next_free += 1;
                edges.push((row_q(r, c), bridge));
                edges.push((bridge, row_q(r + 1, c)));
            }
        }
        // Additional dangling qubits attached to the outer rows to reach 65
        // qubits, mimicking Manhattan's boundary qubits.
        let columns_top: &[usize] = &[1, 3, 5, 7, 9];
        for &c in columns_top {
            let extra = next_free;
            next_free += 1;
            edges.push((row_q(0, c), extra));
        }
        let columns_bottom: &[usize] = &[1, 3, 5, 7, 9];
        for &c in columns_bottom {
            let extra = next_free;
            next_free += 1;
            edges.push((row_q(rows - 1, c), extra));
        }
        // 40 row qubits + 9 bridges + 10 boundary = 59... top up with a short
        // tail chain to reach exactly 65, attached to the last row.
        let mut prev = row_q(rows - 1, cols - 1);
        while next_free < 65 {
            edges.push((prev, next_free));
            prev = next_free;
            next_free += 1;
        }
        CouplingMap::from_edges(next_free, &edges)
    }

    /// Number of physical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Neighbours of `qubit`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[must_use]
    pub fn neighbors(&self, qubit: usize) -> &[usize] {
        &self.adjacency[qubit]
    }

    /// All undirected edges `(a, b)` with `a < b`.
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.num_qubits {
            for &b in &self.adjacency[a] {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Returns `true` if the two qubits share an edge.
    #[must_use]
    pub fn are_connected(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Shortest-path distance (in edges) between two qubits.
    ///
    /// Returns `usize::MAX` if they are in different connected components.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.distance[a][b]
    }

    /// A shortest path from `a` to `b`, inclusive of both endpoints.
    ///
    /// Returns `None` if no path exists.
    #[must_use]
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if self.distance(a, b) == usize::MAX {
            return None;
        }
        // Greedy descent on the distance matrix.
        let mut path = vec![a];
        let mut current = a;
        while current != b {
            let next = *self.adjacency[current]
                .iter()
                .min_by_key(|&&nb| self.distance[nb][b])?;
            path.push(next);
            current = next;
        }
        Some(path)
    }

    /// Returns `true` if every qubit can reach every other qubit.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        (0..self.num_qubits).all(|q| self.distance[0][q] != usize::MAX)
    }
}

fn all_pairs_shortest_paths(adjacency: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adjacency.len();
    let mut dist = vec![vec![usize::MAX; n]; n];
    for (start, row) in dist.iter_mut().enumerate() {
        row[start] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &nb in &adjacency[v] {
                if row[nb] == usize::MAX {
                    row[nb] = row[v] + 1;
                    queue.push_back(nb);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_structure() {
        let g = CouplingMap::grid(3, 3);
        assert_eq!(g.num_qubits(), 9);
        assert!(g.are_connected(4, 1));
        assert!(g.are_connected(4, 3));
        assert!(!g.are_connected(0, 8));
        assert_eq!(g.distance(0, 8), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn linear_distances() {
        let l = CouplingMap::linear(5);
        assert_eq!(l.distance(0, 4), 4);
        assert_eq!(l.neighbors(2), &[1, 3]);
    }

    #[test]
    fn fully_connected_distance_is_one() {
        let f = CouplingMap::fully_connected(6);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(f.distance(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn sycamore_has_64_qubits() {
        let s = CouplingMap::sycamore_like();
        assert_eq!(s.num_qubits(), 64);
        assert!(s.is_connected());
        // Grid degree is at most 4.
        assert!((0..64).all(|q| s.neighbors(q).len() <= 4));
    }

    #[test]
    fn heavy_hex_has_65_qubits_and_low_degree() {
        let h = CouplingMap::heavy_hex_65();
        assert_eq!(h.num_qubits(), 65);
        assert!(h.is_connected());
        // Heavy-hex degree never exceeds 3.
        assert!(
            (0..65).all(|q| h.neighbors(q).len() <= 3),
            "heavy-hex degree must be ≤ 3"
        );
        // Heavy-hex is sparser than the grid.
        assert!(h.edges().len() < CouplingMap::sycamore_like().edges().len());
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = CouplingMap::grid(4, 4);
        let path = g.shortest_path(0, 15).unwrap();
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 15);
        assert_eq!(path.len(), g.distance(0, 15) + 1);
        for w in path.windows(2) {
            assert!(g.are_connected(w[0], w[1]));
        }
    }

    #[test]
    fn disconnected_map_reports_max_distance() {
        let m = CouplingMap::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!m.is_connected());
        assert_eq!(m.distance(0, 2), usize::MAX);
        assert!(m.shortest_path(0, 3).is_none());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = CouplingMap::from_edges(3, &[(1, 1)]);
    }
}

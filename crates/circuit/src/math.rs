//! Minimal complex arithmetic and 2×2 unitary helpers.
//!
//! The workspace intentionally avoids a complex-number dependency; this tiny
//! module provides exactly what the peephole optimizer and the state-vector
//! simulator need.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use quclear_circuit::C64;
/// let i = C64::new(0.0, 1.0);
/// assert!((i * i + C64::ONE).norm() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// `e^{iθ}`.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Modulus.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

/// A 2×2 complex matrix in row-major order: `[[m00, m01], [m10, m11]]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat2 {
    /// Entries in row-major order.
    pub m: [[C64; 2]; 2],
}

impl Mat2 {
    /// The identity matrix.
    #[must_use]
    pub fn identity() -> Self {
        Mat2 {
            m: [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]],
        }
    }

    /// Builds a matrix from four entries.
    #[must_use]
    pub fn new(m00: C64, m01: C64, m10: C64, m11: C64) -> Self {
        Mat2 {
            m: [[m00, m01], [m10, m11]],
        }
    }

    /// Matrix product `self · rhs`.
    #[must_use]
    pub fn mul(&self, rhs: &Mat2) -> Mat2 {
        let mut out = [[C64::ZERO; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, entry) in row.iter_mut().enumerate() {
                *entry = self.m[i][0] * rhs.m[0][j] + self.m[i][1] * rhs.m[1][j];
            }
        }
        Mat2 { m: out }
    }

    /// Maximum entry-wise distance to `rhs`, minimized over a global phase.
    #[must_use]
    pub fn distance_up_to_phase(&self, rhs: &Mat2) -> f64 {
        // Find the entry of rhs with the largest modulus to fix the phase.
        let mut best = (0, 0);
        let mut best_norm = 0.0;
        for i in 0..2 {
            for j in 0..2 {
                let n = rhs.m[i][j].norm();
                if n > best_norm {
                    best_norm = n;
                    best = (i, j);
                }
            }
        }
        if best_norm < 1e-14 {
            return f64::INFINITY;
        }
        let (bi, bj) = best;
        let target = rhs.m[bi][bj];
        let source = self.m[bi][bj];
        if source.norm() < 1e-14 {
            return f64::INFINITY;
        }
        let phase = C64::cis(target.arg() - source.arg());
        let mut max_diff: f64 = 0.0;
        for i in 0..2 {
            for j in 0..2 {
                let diff = (self.m[i][j] * phase - rhs.m[i][j]).norm();
                max_diff = max_diff.max(diff);
            }
        }
        max_diff
    }

    /// Returns `true` if the matrix is the identity up to a global phase.
    #[must_use]
    pub fn is_identity_up_to_phase(&self, tol: f64) -> bool {
        // Cheap exact early-out: the entry-wise distance to the identity is
        // at least |u01| for any phase choice, so a visibly off-diagonal
        // matrix can never pass. This is the common case in gate fusion.
        if self.m[0][1].norm() >= tol {
            return false;
        }
        self.distance_up_to_phase(&Mat2::identity()) < tol
            || Mat2::identity().distance_up_to_phase(self) < tol
    }
}

/// Decomposes a 2×2 unitary into ZYZ Euler angles `(α, β, γ)` such that
/// `U ≅ Rz(α) · Ry(β) · Rz(γ)` up to a global phase.
#[must_use]
pub fn zyz_decompose(u: &Mat2) -> (f64, f64, f64) {
    let c = u.m[0][0].norm();
    let s = u.m[1][0].norm();
    let beta = 2.0 * s.atan2(c);
    let eps = 1e-12;
    if s < eps {
        // Diagonal: only α + γ matters; put it all in α.
        let sum = u.m[1][1].arg() - u.m[0][0].arg();
        (sum, 0.0, 0.0)
    } else if c < eps {
        // Anti-diagonal: only α − γ matters.
        let diff = u.m[1][0].arg() - u.m[0][1].arg() - std::f64::consts::PI;
        (diff, beta, 0.0)
    } else {
        let sum = u.m[1][1].arg() - u.m[0][0].arg();
        let diff = u.m[1][0].arg() - u.m[0][1].arg() - std::f64::consts::PI;
        // The halved angles are only defined modulo π: adding π to both α
        // and γ flips the sign of the Ry block (up to a global phase), so
        // exactly one of the two candidates reproduces the matrix. Selecting
        // it needs no reconstruction: for `Rz(α)·Ry(β)·Rz(γ)` with our
        // sign conventions (`sin(β/2) ≥ 0`), the phase difference
        // `arg(u10) − arg(u00)` equals α modulo 2π, independent of the
        // global phase. Pick the candidate whose α is angularly closer.
        let alpha_a = (sum + diff) / 2.0;
        let measured_alpha = u.m[1][0].arg() - u.m[0][0].arg();
        if angular_distance(alpha_a, measured_alpha)
            <= angular_distance(alpha_a + std::f64::consts::PI, measured_alpha)
        {
            (alpha_a, beta, (sum - diff) / 2.0)
        } else {
            (
                alpha_a + std::f64::consts::PI,
                beta,
                (sum - diff) / 2.0 + std::f64::consts::PI,
            )
        }
    }
}

/// Distance between two angles on the circle, in `[0, π]`.
fn angular_distance(a: f64, b: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let d = (a - b).rem_euclid(two_pi);
    d.min(two_pi - d)
}

/// The ZYZ matrix `Rz(α) · Ry(β) · Rz(γ)` (no global phase).
#[must_use]
pub fn zyz_matrix(alpha: f64, beta: f64, gamma: f64) -> Mat2 {
    let rz_a = rz_matrix(alpha);
    let ry_b = ry_matrix(beta);
    let rz_g = rz_matrix(gamma);
    rz_a.mul(&ry_b).mul(&rz_g)
}

/// Matrix of `Rz(θ)`.
#[must_use]
pub fn rz_matrix(theta: f64) -> Mat2 {
    Mat2::new(
        C64::cis(-theta / 2.0),
        C64::ZERO,
        C64::ZERO,
        C64::cis(theta / 2.0),
    )
}

/// Matrix of `Ry(θ)`.
#[must_use]
pub fn ry_matrix(theta: f64) -> Mat2 {
    let (s, c) = (theta / 2.0).sin_cos();
    Mat2::new(
        C64::new(c, 0.0),
        C64::new(-s, 0.0),
        C64::new(s, 0.0),
        C64::new(c, 0.0),
    )
}

/// Matrix of `Rx(θ)`.
#[must_use]
pub fn rx_matrix(theta: f64) -> Mat2 {
    let (s, c) = (theta / 2.0).sin_cos();
    Mat2::new(
        C64::new(c, 0.0),
        C64::new(0.0, -s),
        C64::new(0.0, -s),
        C64::new(c, 0.0),
    )
}

/// Matrix of a single-qubit gate from the circuit IR.
///
/// # Panics
///
/// Panics if called with a two-qubit gate.
#[must_use]
pub fn single_qubit_matrix(gate: &crate::Gate) -> Mat2 {
    use crate::Gate;
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    match *gate {
        Gate::H(_) => Mat2::new(
            C64::new(inv_sqrt2, 0.0),
            C64::new(inv_sqrt2, 0.0),
            C64::new(inv_sqrt2, 0.0),
            C64::new(-inv_sqrt2, 0.0),
        ),
        Gate::S(_) => Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, C64::I),
        Gate::Sdg(_) => Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, -C64::I),
        Gate::X(_) => Mat2::new(C64::ZERO, C64::ONE, C64::ONE, C64::ZERO),
        Gate::Y(_) => Mat2::new(C64::ZERO, -C64::I, C64::I, C64::ZERO),
        Gate::Z(_) => Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE),
        Gate::SqrtX(_) => Mat2::new(
            C64::new(0.5, 0.5),
            C64::new(0.5, -0.5),
            C64::new(0.5, -0.5),
            C64::new(0.5, 0.5),
        ),
        Gate::SqrtXdg(_) => Mat2::new(
            C64::new(0.5, -0.5),
            C64::new(0.5, 0.5),
            C64::new(0.5, 0.5),
            C64::new(0.5, -0.5),
        ),
        Gate::Rz { angle, .. } => rz_matrix(angle),
        Gate::Rx { angle, .. } => rx_matrix(angle),
        Gate::Ry { angle, .. } => ry_matrix(angle),
        ref g => panic!("single_qubit_matrix called with two-qubit gate {g}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    #[test]
    fn complex_basics() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert!((C64::cis(std::f64::consts::PI) + C64::ONE).norm() < 1e-12);
        assert!((a.conj().im + 2.0).abs() < 1e-15);
    }

    #[test]
    fn zyz_roundtrip_on_standard_gates() {
        for gate in [
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::SqrtX(0),
            Gate::Rz {
                qubit: 0,
                angle: 0.7,
            },
            Gate::Rx {
                qubit: 0,
                angle: -1.3,
            },
            Gate::Ry {
                qubit: 0,
                angle: 2.2,
            },
        ] {
            let u = single_qubit_matrix(&gate);
            let (a, b, g) = zyz_decompose(&u);
            let rebuilt = zyz_matrix(a, b, g);
            assert!(
                rebuilt.distance_up_to_phase(&u) < 1e-9,
                "ZYZ roundtrip failed for {gate}"
            );
        }
    }

    #[test]
    fn zyz_roundtrip_on_products() {
        let gates = [
            Gate::H(0),
            Gate::S(0),
            Gate::Rz {
                qubit: 0,
                angle: 0.3,
            },
            Gate::H(0),
        ];
        let mut u = Mat2::identity();
        for g in &gates {
            u = single_qubit_matrix(g).mul(&u);
        }
        let (a, b, g) = zyz_decompose(&u);
        assert!(zyz_matrix(a, b, g).distance_up_to_phase(&u) < 1e-9);
    }

    #[test]
    fn hadamard_squared_is_identity() {
        let h = single_qubit_matrix(&Gate::H(0));
        assert!(h.mul(&h).is_identity_up_to_phase(1e-12));
    }

    #[test]
    fn sqrtx_squared_is_x() {
        let sx = single_qubit_matrix(&Gate::SqrtX(0));
        let x = single_qubit_matrix(&Gate::X(0));
        assert!(sx.mul(&sx).distance_up_to_phase(&x) < 1e-12);
    }

    #[test]
    fn s_times_sdg_is_identity() {
        let s = single_qubit_matrix(&Gate::S(0));
        let sdg = single_qubit_matrix(&Gate::Sdg(0));
        assert!(s.mul(&sdg).is_identity_up_to_phase(1e-12));
    }
}

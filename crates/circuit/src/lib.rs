//! Quantum circuit intermediate representation for the QuCLEAR reproduction.
//!
//! The crate provides:
//!
//! * [`Gate`] and [`Circuit`] — the gate set and circuit container with the
//!   metrics the paper's evaluation reports (CNOT count, entangling depth,
//!   total depth, single-qubit gate count),
//! * [`optimize`] — a peephole optimizer playing the role of "Qiskit
//!   optimization level 3" in the paper's pipeline,
//! * [`CouplingMap`] and [`route`] — device topologies (Sycamore-like grid,
//!   heavy-hex) and a greedy SWAP router for the Figure 11 mapping
//!   experiments,
//! * [`C64`] / [`Mat2`] — the minimal complex arithmetic shared with the
//!   state-vector simulator.
//!
//! # Examples
//!
//! ```
//! use quclear_circuit::{optimize, Circuit};
//!
//! let mut qc = Circuit::new(3);
//! qc.h(0);
//! qc.cx(0, 1);
//! qc.cx(0, 1);   // cancels with the previous gate
//! qc.cx(1, 2);
//! let optimized = optimize(&qc);
//! assert_eq!(optimized.cnot_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
mod coupling;
mod fidelity;
mod gate;
pub mod math;
mod optimize;
pub mod qasm;
mod routing;

pub use circuit::Circuit;
pub use coupling::CouplingMap;
pub use fidelity::NoiseModel;
pub use gate::{Gate, QubitList};
pub use math::{Mat2, C64};
pub use optimize::{
    is_zero_rotation, optimize, optimize_warming, optimize_with, optimize_with_shared_cache,
    OptimizeOptions, PeepholeCache,
};
pub use routing::{initial_layout_by_interaction, route, route_with_layout, RoutingResult};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gate>();
        assert_send_sync::<Circuit>();
        assert_send_sync::<CouplingMap>();
        assert_send_sync::<RoutingResult>();
        assert_send_sync::<OptimizeOptions>();
    }
}

//! Peephole circuit optimization.
//!
//! This module plays the role that "Qiskit optimization level 3" plays in the
//! QuCLEAR paper: a local-rewriting clean-up pass applied to synthesized
//! circuits. It is intentionally a *local* optimizer — it cancels inverse
//! pairs (with commutation-aware lookback), merges adjacent rotations and
//! fuses runs of single-qubit gates — and does not understand Pauli-level
//! structure; that is the job of the QuCLEAR core and the baselines.

use crate::gate::QubitList;
use crate::math::{single_qubit_matrix, zyz_decompose, Mat2};
use crate::{Circuit, Gate};

/// Options controlling [`optimize_with`].
#[derive(Clone, Copy, Debug)]
pub struct OptimizeOptions {
    /// Cancel gate/inverse pairs, looking backwards past commuting gates.
    pub cancel_inverses: bool,
    /// Merge adjacent rotations of the same kind on the same qubit.
    pub merge_rotations: bool,
    /// Fuse runs of single-qubit gates into at most three Euler rotations.
    pub fuse_single_qubit: bool,
    /// Maximum number of fixpoint iterations over all passes.
    pub max_passes: usize,
    /// How many earlier gates the cancellation pass may look back through.
    pub lookback: usize,
    /// Angles smaller than this (mod 2π) are treated as zero.
    pub angle_tolerance: f64,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            cancel_inverses: true,
            merge_rotations: true,
            fuse_single_qubit: true,
            max_passes: 8,
            lookback: 128,
            angle_tolerance: 1e-10,
        }
    }
}

/// Optimizes a circuit with the default options.
///
/// The result implements the same unitary as the input (this is checked
/// end-to-end by the simulator-backed tests in `quclear-sim` and the
/// workspace integration tests).
///
/// # Examples
///
/// ```
/// use quclear_circuit::{optimize, Circuit};
///
/// let mut qc = Circuit::new(2);
/// qc.cx(0, 1);
/// qc.cx(0, 1);
/// qc.h(0);
/// qc.h(0);
/// let opt = optimize(&qc);
/// assert!(opt.is_empty());
/// ```
#[must_use]
pub fn optimize(circuit: &Circuit) -> Circuit {
    optimize_with(circuit, &OptimizeOptions::default())
}

/// Optimizes a circuit with explicit options.
#[must_use]
pub fn optimize_with(circuit: &Circuit, options: &OptimizeOptions) -> Circuit {
    // A call-local memo still pays off: the fixpoint loop re-examines the
    // same single-qubit runs every round.
    let mut cache = PeepholeCache::new();
    optimize_warming(circuit, options, &mut cache)
}

/// Optimizes a circuit while recording fusion decisions into `cache`.
///
/// Produces bit-for-bit the same circuit as [`optimize_with`]; the filled
/// cache can then serve [`optimize_with_shared_cache`] calls on circuits
/// that repeat the same single-qubit runs (e.g. rebinding a compiled
/// template to new rotation angles).
#[must_use]
pub fn optimize_warming(
    circuit: &Circuit,
    options: &OptimizeOptions,
    cache: &mut PeepholeCache,
) -> Circuit {
    optimize_rounds(circuit, options, &mut CacheMode::Warming(cache))
}

/// Optimizes a circuit against a pre-filled, read-only fusion memo.
///
/// Runs the identical pass pipeline as [`optimize_with`] — cache hits replay
/// recorded decisions, misses fall back to the full computation (without
/// storing) — so the output is bit-for-bit the same. Taking `&PeepholeCache`
/// makes this safe to call concurrently from many threads sharing one
/// cache. The cache must have been filled with the same `options`.
#[must_use]
pub fn optimize_with_shared_cache(
    circuit: &Circuit,
    options: &OptimizeOptions,
    cache: &PeepholeCache,
) -> Circuit {
    optimize_rounds(circuit, options, &mut CacheMode::Shared(cache))
}

fn optimize_rounds(
    circuit: &Circuit,
    options: &OptimizeOptions,
    cache: &mut CacheMode<'_>,
) -> Circuit {
    let mut current = circuit.clone();
    for _ in 0..options.max_passes {
        let mut changed = false;
        if options.cancel_inverses {
            let (next, c) = cancel_inverse_pairs(&current, options);
            current = next;
            changed |= c;
        }
        if options.merge_rotations {
            let (next, c) = merge_rotations(&current, options);
            current = next;
            changed |= c;
        }
        if options.fuse_single_qubit {
            let (next, c) = fuse_single_qubit_runs(&current, options, cache);
            current = next;
            changed |= c;
        }
        if !changed {
            break;
        }
    }
    current
}

/// Conservative test whether two gates commute; used to look backwards past
/// unrelated gates during cancellation.
fn gates_commute(a: &Gate, b: &Gate) -> bool {
    let qa = a.qubit_list();
    let qb = b.qubit_list();
    if qa.is_disjoint(qb) {
        return true;
    }
    // Both diagonal in the computational basis.
    if a.is_diagonal() && b.is_diagonal() {
        return true;
    }
    // CNOT commutes with diagonal gates on its control and X-like gates on
    // its target; two CNOTs commute when they share only a control or only a
    // target.
    let cx_commutes = |cx_control: usize, cx_target: usize, other: &Gate| -> bool {
        match other {
            Gate::Cx { control, target } => {
                (*control == cx_control
                    && *target != cx_target
                    && !qb_overlap(*target, cx_control, *control, cx_target))
                    || (*target == cx_target && *control != cx_control)
            }
            g if g.qubit_list() == QubitList::one(cx_control) => g.is_diagonal(),
            g if g.qubit_list() == QubitList::one(cx_target) => {
                matches!(
                    g,
                    Gate::X(_) | Gate::Rx { .. } | Gate::SqrtX(_) | Gate::SqrtXdg(_)
                )
            }
            _ => false,
        }
    };
    match (a, b) {
        (Gate::Cx { control, target }, other) => cx_commutes(*control, *target, other),
        (other, Gate::Cx { control, target }) => cx_commutes(*control, *target, other),
        _ => false,
    }
}

/// Helper guarding against the CX/CX case where the "other" CNOT's target is
/// our control (those do not commute).
fn qb_overlap(
    other_target: usize,
    my_control: usize,
    other_control: usize,
    my_target: usize,
) -> bool {
    other_target == my_control || other_control == my_target
}

/// Pass 1: cancel gate/inverse pairs, looking backwards through commuting
/// gates. Returns the new circuit and whether anything changed.
fn cancel_inverse_pairs(circuit: &Circuit, options: &OptimizeOptions) -> (Circuit, bool) {
    let gates = circuit.gates();
    let mut live: Vec<Option<Gate>> = gates.iter().copied().map(Some).collect();
    let mut changed = false;

    for i in 0..live.len() {
        let Some(current) = live[i] else { continue };
        // Walk backwards looking for a cancelling partner.
        let mut steps = 0usize;
        let mut j = i;
        while j > 0 && steps < options.lookback {
            j -= 1;
            let Some(prev) = live[j] else { continue };
            steps += 1;
            if prev == current.inverse() && prev.qubit_list() == current.qubit_list() {
                live[i] = None;
                live[j] = None;
                changed = true;
                break;
            }
            if !gates_commute(&prev, &current) {
                break;
            }
        }
    }

    let kept: Vec<Gate> = live.into_iter().flatten().collect();
    (Circuit::from_gates(circuit.num_qubits(), kept), changed)
}

/// The Z-axis "rotation view" of a gate: `Some((qubit, angle, is_rz))` for
/// gates diagonal on one qubit up to global phase (`S = Rz(π/2)`,
/// `S† = Rz(−π/2)`, `Z = Rz(π)`, `Rz`), `None` otherwise.
fn z_axis_view(gate: &Gate) -> Option<(usize, f64, bool)> {
    use std::f64::consts::{FRAC_PI_2, PI};
    match *gate {
        Gate::Rz { qubit, angle } => Some((qubit, angle, true)),
        Gate::S(q) => Some((q, FRAC_PI_2, false)),
        Gate::Sdg(q) => Some((q, -FRAC_PI_2, false)),
        Gate::Z(q) => Some((q, PI, false)),
        _ => None,
    }
}

/// Pass 2: merge adjacent rotations of the same kind on the same qubit and
/// drop rotations with (near-)zero angle. Z-axis Clifford gates (`S`, `S†`,
/// `Z`) merge into adjacent `Rz` gates as fixed-angle rotations — this is
/// what keeps `S·Rz(θ) → Rz(θ+π/2)` working even though parameterized
/// rotations never enter single-qubit fusion runs.
fn merge_rotations(circuit: &Circuit, options: &OptimizeOptions) -> (Circuit, bool) {
    let gates = circuit.gates();
    let mut live: Vec<Option<Gate>> = gates.iter().copied().map(Some).collect();
    let mut changed = false;

    for i in 0..live.len() {
        let Some(current) = live[i] else { continue };
        let (kind, qubit, angle, current_is_rz) = match current {
            Gate::Rz { qubit, angle } => (0u8, qubit, angle, true),
            Gate::Rx { qubit, angle } => (1u8, qubit, angle, true),
            Gate::Ry { qubit, angle } => (2u8, qubit, angle, true),
            Gate::S(_) | Gate::Sdg(_) | Gate::Z(_) => {
                let (qubit, angle, _) = z_axis_view(&current).expect("Z-axis gate");
                (0u8, qubit, angle, false)
            }
            _ => continue,
        };
        if current_is_rz && is_zero_angle(angle, options.angle_tolerance) {
            live[i] = None;
            changed = true;
            continue;
        }
        let mut steps = 0usize;
        let mut j = i;
        while j > 0 && steps < options.lookback {
            j -= 1;
            let Some(prev) = live[j] else { continue };
            steps += 1;
            let merged = match (kind, prev) {
                (0, _) => match z_axis_view(&prev) {
                    // Merge only when an actual Rz is involved: pure
                    // Clifford phase-gate runs belong to the fusion pass.
                    Some((q, a, prev_is_rz)) if q == qubit && (prev_is_rz || current_is_rz) => {
                        Some(Gate::Rz {
                            qubit,
                            angle: a + angle,
                        })
                    }
                    _ => None,
                },
                (1, Gate::Rx { qubit: q, angle: a }) if q == qubit => Some(Gate::Rx {
                    qubit,
                    angle: a + angle,
                }),
                (2, Gate::Ry { qubit: q, angle: a }) if q == qubit => Some(Gate::Ry {
                    qubit,
                    angle: a + angle,
                }),
                _ => None,
            };
            if let Some(m) = merged {
                live[j] = if is_zero_angle(merged_angle(&m), options.angle_tolerance) {
                    None
                } else {
                    Some(m)
                };
                live[i] = None;
                changed = true;
                break;
            }
            if !gates_commute(&prev, &current) {
                break;
            }
        }
    }

    let kept: Vec<Gate> = live.into_iter().flatten().collect();
    (Circuit::from_gates(circuit.num_qubits(), kept), changed)
}

fn merged_angle(gate: &Gate) -> f64 {
    match gate {
        Gate::Rz { angle, .. } | Gate::Rx { angle, .. } | Gate::Ry { angle, .. } => *angle,
        _ => f64::NAN,
    }
}

/// Returns `true` when `angle` is within `tol` of a multiple of 2π — the
/// exact predicate the peephole uses to drop rotations. Public so that
/// callers replaying peephole fixpoints (the engine's template bind path)
/// can pre-check whether a zero-angle rewrite could fire at all.
#[must_use]
pub fn is_zero_rotation(angle: f64, tol: f64) -> bool {
    let two_pi = 2.0 * std::f64::consts::PI;
    let reduced = angle.rem_euclid(two_pi);
    reduced < tol || (two_pi - reduced) < tol
}

fn is_zero_angle(angle: f64, tol: f64) -> bool {
    is_zero_rotation(angle, tol)
}

/// A single-qubit gate stripped of its qubit: discriminant plus exact angle
/// bits. A run of these is a pure key for the fusion decision.
type RunAtom = (u8, u64);

fn run_atom(gate: &Gate) -> RunAtom {
    match *gate {
        Gate::H(_) => (0, 0),
        Gate::S(_) => (1, 0),
        Gate::Sdg(_) => (2, 0),
        Gate::X(_) => (3, 0),
        Gate::Y(_) => (4, 0),
        Gate::Z(_) => (5, 0),
        Gate::SqrtX(_) => (6, 0),
        Gate::SqrtXdg(_) => (7, 0),
        Gate::Rz { angle, .. } => (8, angle.to_bits()),
        Gate::Rx { angle, .. } => (9, angle.to_bits()),
        Gate::Ry { angle, .. } => (10, angle.to_bits()),
        Gate::Cx { .. } | Gate::Cz { .. } | Gate::Swap { .. } => {
            unreachable!("two-qubit gates never appear in single-qubit runs")
        }
    }
}

fn atom_gate(atom: RunAtom, qubit: usize) -> Gate {
    match atom.0 {
        0 => Gate::H(qubit),
        1 => Gate::S(qubit),
        2 => Gate::Sdg(qubit),
        3 => Gate::X(qubit),
        4 => Gate::Y(qubit),
        5 => Gate::Z(qubit),
        6 => Gate::SqrtX(qubit),
        7 => Gate::SqrtXdg(qubit),
        8 => Gate::Rz {
            qubit,
            angle: f64::from_bits(atom.1),
        },
        9 => Gate::Rx {
            qubit,
            angle: f64::from_bits(atom.1),
        },
        10 => Gate::Ry {
            qubit,
            angle: f64::from_bits(atom.1),
        },
        other => unreachable!("invalid run atom discriminant {other}"),
    }
}

/// The memoized outcome of fusing one single-qubit run.
#[derive(Clone, Debug)]
enum FuseDecision {
    /// The run could not be shortened; emit it unchanged.
    Keep,
    /// The run is replaced by these (qubit-independent) gates — possibly
    /// none, when the run multiplies to the identity.
    Replace(Vec<RunAtom>),
}

/// A reusable memo of single-qubit-run fusion decisions.
///
/// Fusing a run — matrix products, an Euler (ZYZ) decomposition and the
/// branch-matching trigonometry — is by far the most expensive part of the
/// peephole, and the same runs recur: across fixpoint rounds within one
/// [`optimize_with`] call, and across repeated optimizations of structurally
/// identical circuits (the `quclear-engine` template `bind` path, where only
/// `Rz` angles change between calls and every Clifford run repeats exactly).
///
/// Decisions are keyed on the exact gate sequence (discriminants plus f64
/// angle bits), so cached and uncached optimization are bit-for-bit
/// identical. A cache must only be reused with the same
/// [`OptimizeOptions`]; pairing it with different tolerances would replay
/// stale decisions.
#[derive(Clone, Debug, Default)]
pub struct PeepholeCache {
    fuse: std::collections::HashMap<Vec<RunAtom>, FuseDecision, BuildRunHasher>,
}

/// A fast, non-cryptographic hasher for run keys (the memo is an internal
/// performance cache, never fed attacker-controlled data).
#[derive(Clone, Debug, Default)]
struct BuildRunHasher;

impl std::hash::BuildHasher for BuildRunHasher {
    type Hasher = RunHasher;

    fn build_hasher(&self) -> RunHasher {
        RunHasher {
            state: 0x9ae1_6a3b_2f90_404f,
        }
    }
}

/// SplitMix64-style streaming hasher over the key words.
#[derive(Clone, Debug)]
struct RunHasher {
    state: u64,
}

impl std::hash::Hasher for RunHasher {
    fn finish(&self) -> u64 {
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state ^ v).wrapping_mul(0xff51_afd7_ed55_8ccd);
        self.state ^= self.state >> 29;
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

impl PeepholeCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PeepholeCache::default()
    }

    /// Number of memoized run decisions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fuse.len()
    }

    /// Whether no decision has been memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fuse.is_empty()
    }
}

/// How a pass may interact with the fusion memo.
enum CacheMode<'a> {
    /// Compute-and-insert (single-threaded warming).
    Warming(&'a mut PeepholeCache),
    /// Read-only lookups; misses are computed but not stored. Shared-safe.
    Shared(&'a PeepholeCache),
}

/// Computes the fusion decision for a run (the uncached slow path).
fn compute_fuse(run: &[Gate], options: &OptimizeOptions) -> FuseDecision {
    // Multiply matrices in time order: U = g_k · … · g_1.
    let mut u = Mat2::identity();
    for g in run {
        u = single_qubit_matrix(g).mul(&u);
    }
    if u.is_identity_up_to_phase(options.angle_tolerance.max(1e-9)) {
        return FuseDecision::Replace(Vec::new());
    }
    let (alpha, beta, gamma) = zyz_decompose(&u);
    let mut fused: Vec<RunAtom> = Vec::with_capacity(3);
    if !is_zero_angle(gamma, options.angle_tolerance) {
        fused.push((8, gamma.to_bits()));
    }
    if !is_zero_angle(beta, options.angle_tolerance) {
        fused.push((10, beta.to_bits()));
    }
    if !is_zero_angle(alpha, options.angle_tolerance) {
        fused.push((8, alpha.to_bits()));
    }
    if fused.len() < run.len() {
        FuseDecision::Replace(fused)
    } else {
        FuseDecision::Keep
    }
}

/// Pass 3: fuse maximal runs of single-qubit *Clifford* gates into at most
/// three Euler rotations (`Rz·Ry·Rz`), dropping runs that multiply to the
/// identity. Two-qubit gates and parameterized rotations break runs; keeping
/// rotations out means every memo key is angle-independent, so a cache
/// warmed once (per compiled template) serves every rebind without redoing
/// the Euler math.
fn fuse_single_qubit_runs(
    circuit: &Circuit,
    options: &OptimizeOptions,
    cache: &mut CacheMode<'_>,
) -> (Circuit, bool) {
    let n = circuit.num_qubits();
    let mut pending: Vec<Vec<Gate>> = vec![Vec::new(); n];
    let mut out: Vec<Gate> = Vec::with_capacity(circuit.len());
    let mut changed = false;
    let mut key_scratch: Vec<RunAtom> = Vec::with_capacity(8);

    let flush = |q: usize,
                 pending: &mut Vec<Vec<Gate>>,
                 out: &mut Vec<Gate>,
                 changed: &mut bool,
                 key_scratch: &mut Vec<RunAtom>,
                 cache: &mut CacheMode<'_>| {
        let run = std::mem::take(&mut pending[q]);
        if run.is_empty() {
            return;
        }
        if run.len() == 1 {
            out.push(run[0]);
            return;
        }
        key_scratch.clear();
        key_scratch.extend(run.iter().map(run_atom));
        let computed;
        let decision: &FuseDecision = match cache {
            CacheMode::Warming(memo) => {
                if !memo.fuse.contains_key(key_scratch.as_slice()) {
                    let decision = compute_fuse(&run, options);
                    memo.fuse.insert(key_scratch.clone(), decision);
                }
                &memo.fuse[key_scratch.as_slice()]
            }
            CacheMode::Shared(memo) => match memo.fuse.get(key_scratch.as_slice()) {
                Some(decision) => decision,
                None => {
                    computed = compute_fuse(&run, options);
                    &computed
                }
            },
        };
        match decision {
            FuseDecision::Keep => out.extend(run),
            FuseDecision::Replace(atoms) => {
                *changed = true;
                out.extend(atoms.iter().map(|&atom| atom_gate(atom, q)));
            }
        }
    };

    for gate in circuit.gates() {
        if gate.is_two_qubit() {
            for &q in gate.qubit_list().as_slice() {
                flush(
                    q,
                    &mut pending,
                    &mut out,
                    &mut changed,
                    &mut key_scratch,
                    cache,
                );
            }
            out.push(*gate);
        } else if matches!(gate, Gate::Rz { .. } | Gate::Rx { .. } | Gate::Ry { .. }) {
            // Parameterized rotations act as run barriers: runs stay
            // Clifford-only, so their memo keys carry no angle bits and a
            // warmed cache keeps hitting when only rotation angles change
            // (the template-bind hot path). Rotation-rotation simplification
            // is the job of the merge/cancel passes.
            let q = gate.qubit_list().as_slice()[0];
            flush(
                q,
                &mut pending,
                &mut out,
                &mut changed,
                &mut key_scratch,
                cache,
            );
            out.push(*gate);
        } else {
            pending[gate.qubit_list().as_slice()[0]].push(*gate);
        }
    }
    for q in 0..n {
        flush(
            q,
            &mut pending,
            &mut out,
            &mut changed,
            &mut key_scratch,
            cache,
        );
    }

    (Circuit::from_gates(n, out), changed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancels_adjacent_cx_pairs() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(0, 1);
        c.cx(1, 2);
        let opt = optimize(&c);
        assert_eq!(opt.cnot_count(), 1);
    }

    #[test]
    fn cancels_through_commuting_gates() {
        // Rz on the control commutes with the CX, so the two CX cancel.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.rz(0, 0.4);
        c.cx(0, 1);
        let opt = optimize(&c);
        assert_eq!(opt.cnot_count(), 0);
        assert_eq!(opt.single_qubit_count(), 1);
    }

    #[test]
    fn does_not_cancel_through_blocking_gates() {
        // H on the control does not commute with CX; nothing may cancel.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.h(0);
        c.cx(0, 1);
        let opt = optimize(&c);
        assert_eq!(opt.cnot_count(), 2);
    }

    #[test]
    fn merges_rotations_and_drops_zero() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3);
        c.rz(0, -0.3);
        let opt = optimize(&c);
        assert!(opt.is_empty());

        let mut c = Circuit::new(1);
        c.rz(0, 0.25);
        c.rz(0, 0.5);
        let opt = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(
            opt.gates()[0],
            Gate::Rz {
                qubit: 0,
                angle: 0.75
            }
        );
    }

    #[test]
    fn fuses_single_qubit_runs() {
        // H S H Sdg H ... collapses to at most 3 rotations.
        let mut c = Circuit::new(1);
        c.h(0);
        c.s(0);
        c.h(0);
        c.sdg(0);
        c.h(0);
        c.s(0);
        let opt = optimize(&c);
        assert!(
            opt.len() <= 3,
            "expected at most 3 gates, got {}",
            opt.len()
        );
    }

    #[test]
    fn fusion_drops_identity_runs() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(0);
        c.s(1);
        c.sdg(1);
        let opt = optimize(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn ladder_cancellation_between_gadgets() {
        // Two identical ZZ gadgets back to back: the inner CX pair cancels.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.rz(1, 0.1);
        c.cx(0, 1);
        c.cx(0, 1);
        c.rz(1, 0.2);
        c.cx(0, 1);
        let opt = optimize(&c);
        assert_eq!(opt.cnot_count(), 2);
        // Once the inner CX pair is gone the two Rz become adjacent and merge.
        assert_eq!(opt.single_qubit_count(), 1);
    }

    #[test]
    fn swap_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        c.swap(0, 1);
        let opt = optimize(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rz(1, 0.7);
        c.cx(0, 1);
        c.cx(1, 2);
        let once = optimize(&c);
        let twice = optimize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn custom_options_disable_passes() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.h(0);
        let opts = OptimizeOptions {
            cancel_inverses: false,
            fuse_single_qubit: false,
            merge_rotations: false,
            ..OptimizeOptions::default()
        };
        let opt = optimize_with(&c, &opts);
        assert_eq!(opt.len(), 2);
    }
}

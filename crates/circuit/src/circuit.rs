//! The circuit container and its metrics.

use std::fmt;

use crate::Gate;

/// A quantum circuit: an ordered list of gates on a fixed-size qubit register.
///
/// Gates are stored in execution (time) order. The struct exposes the metrics
/// the QuCLEAR evaluation reports: CNOT count, entangling depth, total depth
/// and single-qubit gate count.
///
/// # Examples
///
/// ```
/// use quclear_circuit::{Circuit, Gate};
///
/// let mut qc = Circuit::new(3);
/// qc.h(0);
/// qc.cx(0, 1);
/// qc.cx(1, 2);
/// qc.rz(2, 0.5);
/// assert_eq!(qc.cnot_count(), 2);
/// assert_eq!(qc.entangling_depth(), 2);
/// assert_eq!(qc.single_qubit_count(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    #[must_use]
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates a circuit from an existing gate list.
    ///
    /// # Panics
    ///
    /// Panics if any gate touches a qubit `>= num_qubits`.
    #[must_use]
    pub fn from_gates(num_qubits: usize, gates: Vec<Gate>) -> Self {
        for g in &gates {
            for &q in g.qubit_list().as_slice() {
                assert!(q < num_qubits, "gate {g} touches qubit {q} >= {num_qubits}");
            }
        }
        Circuit { num_qubits, gates }
    }

    /// Number of qubits in the register.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gates in execution order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total number of gates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit contains no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the register.
    pub fn push(&mut self, gate: Gate) {
        for &q in gate.qubit_list().as_slice() {
            assert!(
                q < self.num_qubits,
                "gate {gate} touches qubit {q} >= {}",
                self.num_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Appends every gate of `other` (which must act on the same register
    /// size).
    ///
    /// # Panics
    ///
    /// Panics if `other` has a different number of qubits.
    pub fn append(&mut self, other: &Circuit) {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "cannot append circuits with different register sizes"
        );
        self.gates.extend_from_slice(&other.gates);
    }

    /// Appends a Hadamard gate on `q`.
    pub fn h(&mut self, q: usize) {
        self.push(Gate::H(q));
    }

    /// Appends an S gate on `q`.
    pub fn s(&mut self, q: usize) {
        self.push(Gate::S(q));
    }

    /// Appends an S† gate on `q`.
    pub fn sdg(&mut self, q: usize) {
        self.push(Gate::Sdg(q));
    }

    /// Appends a Pauli-X gate on `q`.
    pub fn x(&mut self, q: usize) {
        self.push(Gate::X(q));
    }

    /// Appends a Pauli-Y gate on `q`.
    pub fn y(&mut self, q: usize) {
        self.push(Gate::Y(q));
    }

    /// Appends a Pauli-Z gate on `q`.
    pub fn z(&mut self, q: usize) {
        self.push(Gate::Z(q));
    }

    /// Appends an `Rz(angle)` gate on `q`.
    pub fn rz(&mut self, q: usize, angle: f64) {
        self.push(Gate::Rz { qubit: q, angle });
    }

    /// Appends an `Rx(angle)` gate on `q`.
    pub fn rx(&mut self, q: usize, angle: f64) {
        self.push(Gate::Rx { qubit: q, angle });
    }

    /// Appends an `Ry(angle)` gate on `q`.
    pub fn ry(&mut self, q: usize, angle: f64) {
        self.push(Gate::Ry { qubit: q, angle });
    }

    /// Appends a CNOT gate.
    pub fn cx(&mut self, control: usize, target: usize) {
        self.push(Gate::Cx { control, target });
    }

    /// Appends a CZ gate.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.push(Gate::Cz { a, b });
    }

    /// Appends a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.push(Gate::Swap { a, b });
    }

    /// Number of CNOT-equivalent two-qubit gates (SWAP counts as three).
    #[must_use]
    pub fn cnot_count(&self) -> usize {
        self.gates.iter().map(Gate::cnot_cost).sum()
    }

    /// Number of two-qubit gate instructions (SWAP counts as one here).
    #[must_use]
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit gates.
    #[must_use]
    pub fn single_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_two_qubit()).count()
    }

    /// Entangling depth (CNOT depth): circuit depth counting only two-qubit
    /// gates.
    #[must_use]
    pub fn entangling_depth(&self) -> usize {
        self.depth_impl(true)
    }

    /// Full circuit depth counting every gate.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth_impl(false)
    }

    fn depth_impl(&self, entangling_only: bool) -> usize {
        let mut per_qubit = vec![0usize; self.num_qubits];
        let mut max_depth = 0;
        for g in &self.gates {
            if entangling_only && !g.is_two_qubit() {
                continue;
            }
            let qs = g.qubit_list();
            let layer = qs
                .as_slice()
                .iter()
                .map(|&q| per_qubit[q])
                .max()
                .unwrap_or(0)
                + 1;
            for &q in qs.as_slice() {
                per_qubit[q] = layer;
            }
            max_depth = max_depth.max(layer);
        }
        max_depth
    }

    /// Returns `true` if every gate is a Clifford gate.
    #[must_use]
    pub fn is_clifford(&self) -> bool {
        self.gates.iter().all(Gate::is_clifford)
    }

    /// The inverse circuit: gates reversed and individually inverted.
    #[must_use]
    pub fn inverse(&self) -> Circuit {
        let gates = self.gates.iter().rev().map(Gate::inverse).collect();
        Circuit {
            num_qubits: self.num_qubits,
            gates,
        }
    }

    /// Returns a circuit on `new_size` qubits with every qubit index mapped
    /// through `f`.
    ///
    /// # Panics
    ///
    /// Panics if a mapped index is `>= new_size`.
    #[must_use]
    pub fn map_qubits(&self, new_size: usize, mut f: impl FnMut(usize) -> usize) -> Circuit {
        let gates: Vec<Gate> = self.gates.iter().map(|g| g.map_qubits(&mut f)).collect();
        Circuit::from_gates(new_size, gates)
    }

    /// Histogram of gate kinds, as `(name, count)` pairs sorted by name.
    #[must_use]
    pub fn gate_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for g in &self.gates {
            *counts.entry(g.name()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} gates:",
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    #[test]
    fn counts_on_ghz() {
        let c = ghz(4);
        assert_eq!(c.cnot_count(), 3);
        assert_eq!(c.single_qubit_count(), 1);
        assert_eq!(c.entangling_depth(), 3);
        assert_eq!(c.depth(), 4);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn parallel_cnots_have_depth_one() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        assert_eq!(c.entangling_depth(), 1);
        assert_eq!(c.cnot_count(), 2);
    }

    #[test]
    fn swap_counts_as_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(c.cnot_count(), 3);
        assert_eq!(c.two_qubit_gate_count(), 1);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.s(0);
        c.cx(0, 1);
        c.rz(1, 0.5);
        let inv = c.inverse();
        assert_eq!(
            inv.gates(),
            &[
                Gate::Rz {
                    qubit: 1,
                    angle: -0.5
                },
                Gate::Cx {
                    control: 0,
                    target: 1
                },
                Gate::Sdg(0),
            ]
        );
    }

    #[test]
    fn append_and_extend() {
        let mut a = ghz(3);
        let b = ghz(3);
        a.append(&b);
        assert_eq!(a.len(), 6);
        let mut c = Circuit::new(2);
        c.extend([Gate::H(0), Gate::H(1)]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn map_qubits_into_larger_register() {
        let c = ghz(3);
        let mapped = c.map_qubits(10, |q| q + 5);
        assert_eq!(mapped.num_qubits(), 10);
        assert_eq!(mapped.cnot_count(), 2);
        assert_eq!(
            mapped.gates()[1],
            Gate::Cx {
                control: 5,
                target: 6
            }
        );
    }

    #[test]
    fn clifford_detection() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        assert!(c.is_clifford());
        c.rz(1, 0.3);
        assert!(!c.is_clifford());
    }

    #[test]
    fn gate_histogram_counts_kinds() {
        let c = ghz(4);
        let hist = c.gate_histogram();
        assert!(hist.contains(&("cx", 3)));
        assert!(hist.contains(&("h", 1)));
    }

    #[test]
    #[should_panic(expected = "touches qubit")]
    fn push_out_of_range_panics() {
        let mut c = Circuit::new(2);
        c.cx(0, 2);
    }

    #[test]
    fn empty_circuit_metrics() {
        let c = Circuit::new(5);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert_eq!(c.entangling_depth(), 0);
        assert_eq!(c.cnot_count(), 0);
    }
}

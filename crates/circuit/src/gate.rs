//! The gate set of the circuit IR.

use std::fmt;

/// The (one or two) qubits a gate acts on, stored inline.
///
/// A stack-only alternative to `Vec<usize>` for the optimizer's inner loops:
/// no heap allocation, `Copy`, and cheap disjointness tests.
///
/// # Examples
///
/// ```
/// use quclear_circuit::Gate;
///
/// let cx = Gate::Cx { control: 3, target: 1 };
/// let list = cx.qubit_list();
/// assert_eq!(list.as_slice(), &[3, 1]);
/// assert!(list.contains(1));
/// assert!(list.is_disjoint(Gate::H(0).qubit_list()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QubitList {
    qubits: [usize; 2],
    len: u8,
}

impl QubitList {
    /// A single-qubit list.
    #[must_use]
    pub fn one(q: usize) -> Self {
        QubitList {
            qubits: [q, usize::MAX],
            len: 1,
        }
    }

    /// A two-qubit list (order preserved).
    #[must_use]
    pub fn two(a: usize, b: usize) -> Self {
        QubitList {
            qubits: [a, b],
            len: 2,
        }
    }

    /// The qubits as a slice, in gate order.
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.qubits[..self.len as usize]
    }

    /// Number of qubits (1 or 2).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always `false`: every gate acts on at least one qubit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `q` is in the list.
    #[must_use]
    pub fn contains(&self, q: usize) -> bool {
        self.qubits[0] == q || (self.len == 2 && self.qubits[1] == q)
    }

    /// Whether the two lists share no qubit.
    #[must_use]
    pub fn is_disjoint(&self, other: QubitList) -> bool {
        !other.contains(self.qubits[0]) && (self.len == 1 || !other.contains(self.qubits[1]))
    }
}

/// A quantum gate acting on one or two qubits.
///
/// The gate set covers everything the QuCLEAR pipeline and its baselines
/// emit: the single-qubit Cliffords used for basis changes, parameterized
/// rotations, and the CNOT/SWAP entangling gates.
///
/// # Examples
///
/// ```
/// use quclear_circuit::Gate;
///
/// let g = Gate::Cx { control: 0, target: 2 };
/// assert!(g.is_two_qubit());
/// assert!(g.is_clifford());
/// assert_eq!(g.qubits(), vec![0, 2]);
/// assert_eq!(g.inverse(), g);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard gate.
    H(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg(usize),
    /// Pauli X gate.
    X(usize),
    /// Pauli Y gate.
    Y(usize),
    /// Pauli Z gate.
    Z(usize),
    /// Square root of X (`√X`), a Clifford.
    SqrtX(usize),
    /// Inverse square root of X.
    SqrtXdg(usize),
    /// Rotation about Z: `Rz(θ) = exp(-i·θ/2·Z)`.
    Rz {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle θ.
        angle: f64,
    },
    /// Rotation about X: `Rx(θ) = exp(-i·θ/2·X)`.
    Rx {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle θ.
        angle: f64,
    },
    /// Rotation about Y: `Ry(θ) = exp(-i·θ/2·Y)`.
    Ry {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle θ.
        angle: f64,
    },
    /// Controlled-NOT gate.
    Cx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Z gate.
    Cz {
        /// First qubit (CZ is symmetric).
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// SWAP gate (counted as three CNOTs by the CNOT-count metric).
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
}

impl Gate {
    /// The qubits the gate acts on (one or two entries).
    #[must_use]
    pub fn qubits(&self) -> Vec<usize> {
        self.qubit_list().as_slice().to_vec()
    }

    /// The qubits the gate acts on, without allocating.
    ///
    /// Prefer this in hot paths (the peephole optimizer calls it per gate
    /// pair); [`Gate::qubits`] stays for callers that want a `Vec`.
    #[must_use]
    pub fn qubit_list(&self) -> QubitList {
        match *self {
            Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::SqrtX(q)
            | Gate::SqrtXdg(q)
            | Gate::Rz { qubit: q, .. }
            | Gate::Rx { qubit: q, .. }
            | Gate::Ry { qubit: q, .. } => QubitList::one(q),
            Gate::Cx { control, target } => QubitList::two(control, target),
            Gate::Cz { a, b } | Gate::Swap { a, b } => QubitList::two(a, b),
        }
    }

    /// Returns `true` for two-qubit (entangling) gates.
    #[must_use]
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cx { .. } | Gate::Cz { .. } | Gate::Swap { .. })
    }

    /// Returns `true` if the gate belongs to the Clifford group.
    ///
    /// Rotation gates are Clifford only for multiples of π/2; this method is
    /// conservative and reports `false` for all parameterized rotations.
    #[must_use]
    pub fn is_clifford(&self) -> bool {
        !matches!(self, Gate::Rz { .. } | Gate::Rx { .. } | Gate::Ry { .. })
    }

    /// Number of CNOT-equivalent entangling gates this gate contributes to the
    /// CNOT-count metric (SWAP counts as 3).
    #[must_use]
    pub fn cnot_cost(&self) -> usize {
        match self {
            Gate::Cx { .. } | Gate::Cz { .. } => 1,
            Gate::Swap { .. } => 3,
            _ => 0,
        }
    }

    /// The inverse gate.
    #[must_use]
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::SqrtX(q) => Gate::SqrtXdg(q),
            Gate::SqrtXdg(q) => Gate::SqrtX(q),
            Gate::Rz { qubit, angle } => Gate::Rz {
                qubit,
                angle: -angle,
            },
            Gate::Rx { qubit, angle } => Gate::Rx {
                qubit,
                angle: -angle,
            },
            Gate::Ry { qubit, angle } => Gate::Ry {
                qubit,
                angle: -angle,
            },
            g => g,
        }
    }

    /// Returns `true` if the gate is its own inverse.
    #[must_use]
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            Gate::H(_)
                | Gate::X(_)
                | Gate::Y(_)
                | Gate::Z(_)
                | Gate::Cx { .. }
                | Gate::Cz { .. }
                | Gate::Swap { .. }
        )
    }

    /// Returns `true` if the gate is diagonal in the computational basis.
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::S(_) | Gate::Sdg(_) | Gate::Z(_) | Gate::Rz { .. } | Gate::Cz { .. }
        )
    }

    /// Remaps the qubits of the gate through `f`.
    #[must_use]
    pub fn map_qubits(&self, mut f: impl FnMut(usize) -> usize) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::SqrtX(q) => Gate::SqrtX(f(q)),
            Gate::SqrtXdg(q) => Gate::SqrtXdg(f(q)),
            Gate::Rz { qubit, angle } => Gate::Rz {
                qubit: f(qubit),
                angle,
            },
            Gate::Rx { qubit, angle } => Gate::Rx {
                qubit: f(qubit),
                angle,
            },
            Gate::Ry { qubit, angle } => Gate::Ry {
                qubit: f(qubit),
                angle,
            },
            Gate::Cx { control, target } => Gate::Cx {
                control: f(control),
                target: f(target),
            },
            Gate::Cz { a, b } => Gate::Cz { a: f(a), b: f(b) },
            Gate::Swap { a, b } => Gate::Swap { a: f(a), b: f(b) },
        }
    }

    /// Short mnemonic name of the gate kind (e.g. `"cx"`, `"rz"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "h",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::SqrtX(_) => "sx",
            Gate::SqrtXdg(_) => "sxdg",
            Gate::Rz { .. } => "rz",
            Gate::Rx { .. } => "rx",
            Gate::Ry { .. } => "ry",
            Gate::Cx { .. } => "cx",
            Gate::Cz { .. } => "cz",
            Gate::Swap { .. } => "swap",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::Rz { qubit, angle } => write!(f, "rz({angle:.4}) q{qubit}"),
            Gate::Rx { qubit, angle } => write!(f, "rx({angle:.4}) q{qubit}"),
            Gate::Ry { qubit, angle } => write!(f, "ry({angle:.4}) q{qubit}"),
            Gate::Cx { control, target } => write!(f, "cx q{control}, q{target}"),
            Gate::Cz { a, b } => write!(f, "cz q{a}, q{b}"),
            Gate::Swap { a, b } => write!(f, "swap q{a}, q{b}"),
            ref g => write!(f, "{} q{}", g.name(), g.qubits()[0]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_listing() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(
            Gate::Cx {
                control: 1,
                target: 4
            }
            .qubits(),
            vec![1, 4]
        );
        assert_eq!(Gate::Swap { a: 2, b: 0 }.qubits(), vec![2, 0]);
    }

    #[test]
    fn clifford_classification() {
        assert!(Gate::H(0).is_clifford());
        assert!(Gate::S(0).is_clifford());
        assert!(Gate::Cx {
            control: 0,
            target: 1
        }
        .is_clifford());
        assert!(!Gate::Rz {
            qubit: 0,
            angle: 0.3
        }
        .is_clifford());
    }

    #[test]
    fn inverse_pairs() {
        assert_eq!(Gate::S(1).inverse(), Gate::Sdg(1));
        assert_eq!(Gate::Sdg(1).inverse(), Gate::S(1));
        assert_eq!(Gate::H(1).inverse(), Gate::H(1));
        assert_eq!(
            Gate::Rz {
                qubit: 0,
                angle: 0.5
            }
            .inverse(),
            Gate::Rz {
                qubit: 0,
                angle: -0.5
            }
        );
        assert_eq!(Gate::SqrtX(2).inverse(), Gate::SqrtXdg(2));
    }

    #[test]
    fn cnot_cost_of_swap_is_three() {
        assert_eq!(Gate::Swap { a: 0, b: 1 }.cnot_cost(), 3);
        assert_eq!(
            Gate::Cx {
                control: 0,
                target: 1
            }
            .cnot_cost(),
            1
        );
        assert_eq!(Gate::H(0).cnot_cost(), 0);
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::Cx {
            control: 0,
            target: 1,
        };
        let mapped = g.map_qubits(|q| q + 10);
        assert_eq!(
            mapped,
            Gate::Cx {
                control: 10,
                target: 11
            }
        );
    }

    #[test]
    fn diagonal_and_self_inverse_flags() {
        assert!(Gate::Z(0).is_diagonal());
        assert!(Gate::Rz {
            qubit: 0,
            angle: 1.0
        }
        .is_diagonal());
        assert!(!Gate::H(0).is_diagonal());
        assert!(Gate::H(0).is_self_inverse());
        assert!(!Gate::S(0).is_self_inverse());
    }

    #[test]
    fn display_contains_name_and_qubit() {
        let s = Gate::Cx {
            control: 2,
            target: 5,
        }
        .to_string();
        assert!(s.contains("cx") && s.contains("q2") && s.contains("q5"));
    }
}

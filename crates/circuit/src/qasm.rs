//! OpenQASM 2.0 export.
//!
//! The optimized circuits produced by QuCLEAR are meant to be executed by an
//! external stack ("the optimized circuit is then executed on quantum devices
//! using any quantum software and hardware" — Section IV of the paper).
//! Exporting to OpenQASM 2.0 makes the output of this reproduction directly
//! consumable by Qiskit, tket, and most simulators.

use std::fmt::Write as _;

use crate::{Circuit, Gate};

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// `Sx`/`Sx†` are emitted with the standard-library names `sx`/`sxdg`; SWAP
/// and CZ use their `qelib1.inc` definitions.
///
/// # Examples
///
/// ```
/// use quclear_circuit::{qasm::to_qasm, Circuit};
///
/// let mut qc = Circuit::new(2);
/// qc.h(0);
/// qc.cx(0, 1);
/// qc.rz(1, 0.5);
/// let text = to_qasm(&qc);
/// assert!(text.contains("OPENQASM 2.0"));
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
#[must_use]
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for gate in circuit.gates() {
        let line = match *gate {
            Gate::H(q) => format!("h q[{q}];"),
            Gate::S(q) => format!("s q[{q}];"),
            Gate::Sdg(q) => format!("sdg q[{q}];"),
            Gate::X(q) => format!("x q[{q}];"),
            Gate::Y(q) => format!("y q[{q}];"),
            Gate::Z(q) => format!("z q[{q}];"),
            Gate::SqrtX(q) => format!("sx q[{q}];"),
            Gate::SqrtXdg(q) => format!("sxdg q[{q}];"),
            Gate::Rz { qubit, angle } => format!("rz({angle:.16}) q[{qubit}];"),
            Gate::Rx { qubit, angle } => format!("rx({angle:.16}) q[{qubit}];"),
            Gate::Ry { qubit, angle } => format!("ry({angle:.16}) q[{qubit}];"),
            Gate::Cx { control, target } => format!("cx q[{control}], q[{target}];"),
            Gate::Cz { a, b } => format!("cz q[{a}], q[{b}];"),
            Gate::Swap { a, b } => format!("swap q[{a}], q[{b}];"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Error returned by [`from_qasm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl std::fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QASM parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

/// Parses the subset of OpenQASM 2.0 emitted by [`to_qasm`] back into a
/// circuit (single register, the workspace gate set, no classical registers).
///
/// # Errors
///
/// Returns an error describing the first statement that cannot be parsed.
pub fn from_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut num_qubits = 0usize;
    let mut gates: Vec<Gate> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split("//").next().unwrap_or("").trim();
        if line.is_empty()
            || line.starts_with("OPENQASM")
            || line.starts_with("include")
            || line.starts_with("barrier")
            || line.starts_with("creg")
        {
            continue;
        }
        let err = |message: String| ParseQasmError {
            line: line_no,
            message,
        };
        let statement = line
            .strip_suffix(';')
            .ok_or_else(|| err("missing `;`".into()))?;
        if let Some(rest) = statement.strip_prefix("qreg") {
            let size = rest
                .trim()
                .strip_prefix("q[")
                .and_then(|s| s.strip_suffix(']'))
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| err(format!("cannot parse register declaration `{statement}`")))?;
            num_qubits = size;
            continue;
        }
        let (head, args) = statement
            .split_once(' ')
            .ok_or_else(|| err(format!("cannot parse statement `{statement}`")))?;
        let qubits: Vec<usize> = args
            .split(',')
            .map(|a| {
                a.trim()
                    .strip_prefix("q[")
                    .and_then(|s| s.strip_suffix(']'))
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| err(format!("cannot parse qubit operand `{a}`")))
            })
            .collect::<Result<_, _>>()?;
        let (name, angle) = match head.split_once('(') {
            Some((name, rest)) => {
                let angle: f64 = rest
                    .strip_suffix(')')
                    .and_then(|s| s.trim().parse().ok())
                    .ok_or_else(|| err(format!("cannot parse angle in `{head}`")))?;
                (name, Some(angle))
            }
            None => (head, None),
        };
        let gate = match (name, qubits.as_slice(), angle) {
            ("h", [q], None) => Gate::H(*q),
            ("s", [q], None) => Gate::S(*q),
            ("sdg", [q], None) => Gate::Sdg(*q),
            ("x", [q], None) => Gate::X(*q),
            ("y", [q], None) => Gate::Y(*q),
            ("z", [q], None) => Gate::Z(*q),
            ("sx", [q], None) => Gate::SqrtX(*q),
            ("sxdg", [q], None) => Gate::SqrtXdg(*q),
            ("rz", [q], Some(a)) => Gate::Rz {
                qubit: *q,
                angle: a,
            },
            ("rx", [q], Some(a)) => Gate::Rx {
                qubit: *q,
                angle: a,
            },
            ("ry", [q], Some(a)) => Gate::Ry {
                qubit: *q,
                angle: a,
            },
            ("cx", [c, t], None) => Gate::Cx {
                control: *c,
                target: *t,
            },
            ("cz", [a, b], None) => Gate::Cz { a: *a, b: *b },
            ("swap", [a, b], None) => Gate::Swap { a: *a, b: *b },
            _ => return Err(err(format!("unsupported statement `{statement}`"))),
        };
        gates.push(gate);
    }
    if gates
        .iter()
        .any(|g| g.qubits().iter().any(|&q| q >= num_qubits))
    {
        return Err(ParseQasmError {
            line: 0,
            message: "gate uses a qubit outside the declared register".into(),
        });
    }
    Ok(Circuit::from_gates(num_qubits, gates))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0);
        c.sdg(1);
        c.cx(0, 1);
        c.rz(1, 0.375);
        c.swap(1, 2);
        c.cz(0, 2);
        c.push(Gate::SqrtX(2));
        c.ry(0, -1.25);
        c
    }

    #[test]
    fn export_contains_header_and_all_gates() {
        let text = to_qasm(&sample_circuit());
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("swap q[1], q[2];"));
        assert!(text.contains("rz(0.375"));
        assert_eq!(text.lines().count(), 3 + sample_circuit().len());
    }

    #[test]
    fn roundtrip_preserves_the_circuit() {
        let original = sample_circuit();
        let parsed = from_qasm(&to_qasm(&original)).unwrap();
        assert_eq!(parsed.num_qubits(), original.num_qubits());
        assert_eq!(parsed.gates().len(), original.gates().len());
        for (a, b) in parsed.gates().iter().zip(original.gates()) {
            match (a, b) {
                (
                    Gate::Rz {
                        qubit: qa,
                        angle: aa,
                    },
                    Gate::Rz {
                        qubit: qb,
                        angle: ab,
                    },
                )
                | (
                    Gate::Ry {
                        qubit: qa,
                        angle: aa,
                    },
                    Gate::Ry {
                        qubit: qb,
                        angle: ab,
                    },
                ) => {
                    assert_eq!(qa, qb);
                    assert!((aa - ab).abs() < 1e-12);
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn parse_rejects_unknown_gates_with_line_numbers() {
        let text = "OPENQASM 2.0;\nqreg q[2];\nccx q[0], q[1];\n";
        let err = from_qasm(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("unsupported"));
    }

    #[test]
    fn parse_rejects_out_of_range_qubits() {
        let text = "qreg q[1];\ncx q[0], q[1];\n";
        assert!(from_qasm(text).is_err());
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let text = "OPENQASM 2.0;\n\n// a comment\nqreg q[1];\nh q[0]; // trailing\n";
        let circuit = from_qasm(text).unwrap();
        assert_eq!(circuit.len(), 1);
    }
}

//! OpenQASM 2.0 import and export.
//!
//! The optimized circuits produced by QuCLEAR are meant to be executed by an
//! external stack ("the optimized circuit is then executed on quantum devices
//! using any quantum software and hardware" — Section IV of the paper).
//! Exporting to OpenQASM 2.0 makes the output of this reproduction directly
//! consumable by Qiskit, tket, and most simulators — and [`from_qasm`] is the
//! front door in the other direction: it parses the gate set real VQE/QAOA
//! workloads arrive in, so external circuits can be lifted into
//! Pauli-rotation programs and enter the pipeline.
//!
//! # Supported input subset
//!
//! * any number of `qreg` declarations (each before its first use), with
//!   **flattened contiguous indexing**: registers occupy consecutive qubit
//!   ranges in declaration order, so after `qreg a[2]; qreg b[3];` the
//!   operand `b[1]` is qubit 3 of a 5-qubit circuit; `creg`, `barrier`,
//!   `include` and comments are accepted and ignored,
//! * gates: `h`, `s`, `sdg`, `x`, `y`, `z`, `sx`, `sxdg`, `t`, `tdg`,
//!   `rz(θ)`, `rx(θ)`, `ry(θ)`, `cx`, `cz`, `swap` (`t`/`tdg` parse as
//!   `Rz(±π/4)`, which is the same unitary up to global phase),
//! * the `qelib1.inc` generic single-qubit gates `u1(λ)`, `u2(φ,λ)`,
//!   `u3(θ,φ,λ)` and the OpenQASM 3-style alias `u(θ,φ,λ)`, decomposed to
//!   the native `Rz`/`Ry` set up to global phase (`u1(λ) = Rz(λ)`,
//!   `u2(φ,λ) = Rz(φ)·Ry(π/2)·Rz(λ)`, `u3(θ,φ,λ) = Rz(φ)·Ry(θ)·Rz(λ)`),
//! * parameter expressions over `pi`, numeric literals, parentheses and the
//!   operators `+ - * /` (e.g. `pi/4`, `-3*pi/2`, `0.5*(pi + 1.0)`).
//!
//! Parse failures return a [`ParseQasmError`] carrying the 1-based line and
//! column of the offending token.

use std::fmt::Write as _;

use crate::{Circuit, Gate};

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// `Sx`/`Sx†` are emitted with the standard-library names `sx`/`sxdg`; SWAP
/// and CZ use their `qelib1.inc` definitions. Rotation angles are printed
/// as the shortest decimal that round-trips the `f64` exactly, so
/// `from_qasm(to_qasm(c))` is gate-for-gate equal to `c`.
///
/// # Panics
///
/// Panics if a rotation angle is NaN or infinite — there is no valid QASM
/// spelling for those, and emitting them silently would produce a file no
/// parser (including [`from_qasm`]) accepts.
///
/// # Examples
///
/// ```
/// use quclear_circuit::{qasm::to_qasm, Circuit};
///
/// let mut qc = Circuit::new(2);
/// qc.h(0);
/// qc.cx(0, 1);
/// qc.rz(1, 0.5);
/// let text = to_qasm(&qc);
/// assert!(text.contains("OPENQASM 2.0"));
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
#[must_use]
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for gate in circuit.gates() {
        if let Gate::Rz { angle, .. } | Gate::Rx { angle, .. } | Gate::Ry { angle, .. } = *gate {
            assert!(
                angle.is_finite(),
                "cannot serialize non-finite rotation angle {angle} as QASM"
            );
        }
        let line = match *gate {
            Gate::H(q) => format!("h q[{q}];"),
            Gate::S(q) => format!("s q[{q}];"),
            Gate::Sdg(q) => format!("sdg q[{q}];"),
            Gate::X(q) => format!("x q[{q}];"),
            Gate::Y(q) => format!("y q[{q}];"),
            Gate::Z(q) => format!("z q[{q}];"),
            Gate::SqrtX(q) => format!("sx q[{q}];"),
            Gate::SqrtXdg(q) => format!("sxdg q[{q}];"),
            // `{}` prints the shortest decimal that round-trips the f64
            // exactly, so `from_qasm(to_qasm(c))` is gate-for-gate equal.
            Gate::Rz { qubit, angle } => format!("rz({angle}) q[{qubit}];"),
            Gate::Rx { qubit, angle } => format!("rx({angle}) q[{qubit}];"),
            Gate::Ry { qubit, angle } => format!("ry({angle}) q[{qubit}];"),
            Gate::Cx { control, target } => format!("cx q[{control}], q[{target}];"),
            Gate::Cz { a, b } => format!("cz q[{a}], q[{b}];"),
            Gate::Swap { a, b } => format!("swap q[{a}], q[{b}];"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Error returned by [`from_qasm`], locating the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// 1-based column of the offending token (0 when unknown).
    pub column: usize,
    /// The offending token, when one could be isolated.
    pub token: String,
    /// Explanation of the failure.
    pub message: String,
}

impl std::fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QASM parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )?;
        if !self.token.is_empty() {
            write!(f, " (near `{}`)", self.token)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseQasmError {}

/// A character-level cursor over the whole source text. Comments and
/// newlines are whitespace (OpenQASM 2.0 is free-form); errors carry the
/// 1-based line and column computed from the byte offset.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    /// Byte offset of the start of each line, for error locations.
    line_starts: Vec<usize>,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        let bytes = src.as_bytes();
        let mut line_starts = vec![0];
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Cursor {
            src: bytes,
            pos: 0,
            line_starts,
        }
    }

    /// Converts a byte offset into a 1-based (line, column) pair.
    fn locate(&self, pos: usize) -> (usize, usize) {
        let line = self.line_starts.partition_point(|&start| start <= pos);
        (line, pos - self.line_starts[line - 1] + 1)
    }

    /// Skips whitespace — OpenQASM 2.0 is free-form, so newlines are
    /// ordinary whitespace — and `//` line comments.
    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.src[self.pos..].starts_with(b"//") {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    /// Consumes `c` if it is the next non-whitespace character.
    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// The rest of the current *line* from the cursor, for error tokens.
    fn rest(&self) -> String {
        let start = self.pos.min(self.src.len());
        let end = self.src[start..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(self.src.len(), |i| start + i);
        String::from_utf8_lossy(&self.src[start..end])
            .trim()
            .to_string()
    }

    /// Steps back from `pos` over whitespace and comments to just past the
    /// last real character — the natural anchor for "something is missing
    /// here" errors, so they point at the statement, not at whatever (or
    /// wherever) the next token happens to be.
    fn anchor_back(&self, pos: usize) -> usize {
        let mut p = pos.min(self.src.len());
        while p > 0 && self.src[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        p
    }

    /// An error at absolute byte offset `at`.
    fn error(
        &self,
        at: usize,
        token: impl Into<String>,
        message: impl Into<String>,
    ) -> ParseQasmError {
        let (line, column) = self.locate(at.min(self.src.len()));
        ParseQasmError {
            line,
            column,
            token: token.into(),
            message: message.into(),
        }
    }

    /// An error at the current cursor position.
    fn error_here(
        &mut self,
        token: impl Into<String>,
        message: impl Into<String>,
    ) -> ParseQasmError {
        self.skip_ws();
        self.error(self.pos, token, message)
    }

    /// Takes an identifier (`[A-Za-z_][A-Za-z0-9_]*`), returning it with its
    /// 1-based column.
    fn take_ident(&mut self) -> Option<(String, usize)> {
        self.skip_ws();
        let start = self.pos;
        if self
            .src
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
        {
            self.pos += 1;
            while self
                .src
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
            {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            Some((text, start))
        } else {
            None
        }
    }

    /// Takes an unsigned integer literal, returning it with its column.
    ///
    /// `Ok(None)` means no digits were present; digits that do not fit a
    /// `usize` are an error *at the literal* (not at whatever follows it).
    fn take_uint(&mut self) -> Result<Option<(usize, usize)>, ParseQasmError> {
        self.skip_ws();
        let start = self.pos;
        while self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Ok(None);
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        match text.parse() {
            Ok(value) => Ok(Some((value, start))),
            Err(_) => Err(self.error(
                start,
                text.clone(),
                format!("integer literal `{text}` is out of range"),
            )),
        }
    }

    /// Takes a floating-point literal (digits, `.`, optional exponent),
    /// returning it with its column.
    ///
    /// `Ok(None)` means no literal characters were present; a present but
    /// malformed literal (e.g. `2.0.1`) is an error *at the literal*.
    fn take_number(&mut self) -> Result<Option<(f64, usize)>, ParseQasmError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || *c == b'.')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Ok(None);
        }
        // Optional exponent: e / E with optional sign.
        if self
            .src
            .get(self.pos)
            .is_some_and(|c| *c == b'e' || *c == b'E')
        {
            let mut end = self.pos + 1;
            if self.src.get(end).is_some_and(|c| *c == b'+' || *c == b'-') {
                end += 1;
            }
            if self.src.get(end).is_some_and(u8::is_ascii_digit) {
                self.pos = end;
                while self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        match text.parse() {
            Ok(value) => Ok(Some((value, start))),
            Err(_) => Err(self.error(
                start,
                text.clone(),
                format!("cannot parse numeric literal `{text}`"),
            )),
        }
    }

    /// Takes a run of non-whitespace, non-`;` characters (e.g. a version
    /// token), returning it with its column.
    fn take_word(&mut self) -> (String, usize) {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|c| !c.is_ascii_whitespace() && *c != b';')
        {
            self.pos += 1;
        }
        (
            String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            start,
        )
    }

    /// Expects `c` as the next non-whitespace character.
    ///
    /// On failure the error is anchored just past the last real character
    /// before the expected position (missing-token errors point at the end
    /// of the statement, not at whatever follows on a later line).
    fn expect(&mut self, c: u8, context: &str) -> Result<(), ParseQasmError> {
        if self.eat(c) {
            Ok(())
        } else {
            let token = self.rest();
            let anchor = self.anchor_back(self.pos);
            Err(self.error(anchor, token, format!("expected `{}` {context}", c as char)))
        }
    }

    /// Skips forward past the terminating `;` of the current statement,
    /// treating comments as whitespace (a `;` inside a `//` comment does not
    /// terminate the statement).
    fn skip_statement(&mut self) -> Result<(), ParseQasmError> {
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Err(self.error(self.anchor_back(self.src.len()), "", "missing `;`"));
            }
            if self.src[self.pos] == b';' {
                self.pos += 1;
                return Ok(());
            }
            self.pos += 1;
        }
    }
}

/// Maximum nesting depth of parameter expressions. The parser recurses per
/// `(` and per unary `-`, so untrusted input must not control the stack;
/// legitimate QASM parameters nest a handful of levels at most.
const MAX_EXPR_DEPTH: usize = 64;

/// Parses a parameter expression: `+ - * /`, unary minus, parentheses, `pi`
/// and numeric literals.
fn parse_expr(cur: &mut Cursor<'_>, depth: usize) -> Result<f64, ParseQasmError> {
    if depth > MAX_EXPR_DEPTH {
        let token = cur.rest();
        return Err(cur.error_here(token, "parameter expression is nested too deeply"));
    }
    let mut value = parse_term(cur, depth)?;
    loop {
        if cur.eat(b'+') {
            value += parse_term(cur, depth)?;
        } else if cur.eat(b'-') {
            value -= parse_term(cur, depth)?;
        } else {
            return Ok(value);
        }
    }
}

fn parse_term(cur: &mut Cursor<'_>, depth: usize) -> Result<f64, ParseQasmError> {
    let mut value = parse_unary(cur, depth)?;
    loop {
        if cur.eat(b'*') {
            value *= parse_unary(cur, depth)?;
        } else if cur.eat(b'/') {
            cur.skip_ws();
            let at = cur.pos;
            let divisor = parse_unary(cur, depth)?;
            if divisor == 0.0 {
                return Err(cur.error(at, "0", "division by zero in parameter expression"));
            }
            value /= divisor;
        } else {
            return Ok(value);
        }
    }
}

fn parse_unary(cur: &mut Cursor<'_>, depth: usize) -> Result<f64, ParseQasmError> {
    if depth > MAX_EXPR_DEPTH {
        let token = cur.rest();
        return Err(cur.error_here(token, "parameter expression is nested too deeply"));
    }
    if cur.eat(b'-') {
        return Ok(-parse_unary(cur, depth + 1)?);
    }
    parse_atom(cur, depth)
}

fn parse_atom(cur: &mut Cursor<'_>, depth: usize) -> Result<f64, ParseQasmError> {
    if cur.eat(b'(') {
        let value = parse_expr(cur, depth + 1)?;
        cur.expect(b')', "to close the parenthesized expression")?;
        return Ok(value);
    }
    match cur.peek() {
        Some(c) if c.is_ascii_alphabetic() => {
            let (ident, column) = cur.take_ident().expect("peeked an identifier start");
            if ident == "pi" {
                Ok(std::f64::consts::PI)
            } else {
                Err(cur.error(
                    column,
                    ident.clone(),
                    format!("unknown constant `{ident}` in parameter expression (only `pi` is supported)"),
                ))
            }
        }
        Some(c) if c.is_ascii_digit() || c == b'.' => {
            let at = cur.pos;
            match cur.take_number()? {
                Some((value, _)) => Ok(value),
                None => Err(cur.error(at, "", "cannot parse numeric literal")),
            }
        }
        _ => {
            let token = cur.rest();
            Err(cur.error_here(
                token,
                "expected a number, `pi`, or `(` in parameter expression",
            ))
        }
    }
}

/// The declared quantum registers, flattened into one contiguous index
/// space: registers occupy consecutive qubit ranges in declaration order.
#[derive(Default)]
struct Registers {
    /// `(name, offset, size)` per declaration, in order.
    regs: Vec<(String, usize, usize)>,
}

impl Registers {
    /// Total qubits across all declared registers.
    fn total(&self) -> usize {
        self.regs
            .last()
            .map_or(0, |(_, offset, size)| offset + size)
    }

    fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    fn contains(&self, name: &str) -> bool {
        self.regs.iter().any(|(n, _, _)| n == name)
    }

    /// Appends a register at the end of the flattened index space.
    fn declare(&mut self, name: String, size: usize) {
        let offset = self.total();
        self.regs.push((name, offset, size));
    }

    /// `(offset, size)` of a declared register.
    fn lookup(&self, name: &str) -> Option<(usize, usize)> {
        self.regs
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, offset, size)| (offset, size))
    }
}

/// Parses one `reg[i]` operand, checking the register declaration and range,
/// and returns the **flattened** qubit index.
fn parse_operand(cur: &mut Cursor<'_>, registers: &Registers) -> Result<usize, ParseQasmError> {
    cur.skip_ws();
    let operand_at = cur.pos;
    let Some((name, name_at)) = cur.take_ident() else {
        let token = cur.rest();
        return Err(cur.error_here(token, "expected a qubit operand `<register>[<index>]`"));
    };
    cur.expect(b'[', "after the register name")?;
    let Some((index, _)) = cur.take_uint()? else {
        let token = cur.rest();
        return Err(cur.error_here(token, "expected a qubit index"));
    };
    cur.expect(b']', "after the qubit index")?;
    if registers.is_empty() {
        return Err(cur.error(
            operand_at,
            format!("{name}[{index}]"),
            "gate statement before the `qreg` declaration",
        ));
    }
    let Some((offset, size)) = registers.lookup(&name) else {
        return Err(cur.error(
            name_at,
            name.clone(),
            format!("unknown register `{name}` (no `qreg {name}[...]` was declared)"),
        ));
    };
    if index >= size {
        return Err(cur.error(
            operand_at,
            format!("{name}[{index}]"),
            format!("qubit index {index} is outside the declared register `{name}[{size}]`"),
        ));
    }
    Ok(offset + index)
}

/// Gate names accepted by [`from_qasm`], used to distinguish arity errors
/// from genuinely unsupported statements.
const KNOWN_GATES: &[&str] = &[
    "h", "s", "sdg", "x", "y", "z", "sx", "sxdg", "t", "tdg", "rz", "rx", "ry", "cx", "cz", "swap",
    "u", "u1", "u2", "u3",
];

/// Number of `(θ...)` parameters each known gate takes.
fn expected_params(name: &str) -> usize {
    match name {
        "rz" | "rx" | "ry" | "u1" => 1,
        "u2" => 2,
        "u3" | "u" => 3,
        _ => 0,
    }
}

/// Parses one gate statement whose name has already been consumed,
/// appending the resulting gate(s) — the `u` family decomposes into up to
/// three native rotations — to `gates`.
fn parse_gate(
    cur: &mut Cursor<'_>,
    name: &str,
    name_at: usize,
    registers: &Registers,
    gates: &mut Vec<Gate>,
) -> Result<(), ParseQasmError> {
    if !KNOWN_GATES.contains(&name) {
        let statement = format!("{name} {}", cur.rest().trim_end_matches(';').trim());
        return Err(cur.error(
            name_at,
            name.to_string(),
            format!("unsupported statement `{}`", statement.trim()),
        ));
    }

    // Optional parameter list.
    let mut params: Vec<f64> = Vec::new();
    let params_at = {
        cur.skip_ws();
        cur.pos
    };
    if cur.eat(b'(') {
        loop {
            params.push(parse_expr(cur, 0)?);
            if cur.eat(b',') {
                continue;
            }
            cur.expect(b')', "to close the parameter list")?;
            break;
        }
    }
    let expected_params = expected_params(name);
    if params.len() != expected_params {
        return Err(cur.error(
            params_at,
            name.to_string(),
            format!(
                "gate `{name}` takes {expected_params} parameter{} but {} were given",
                if expected_params == 1 { "" } else { "s" },
                params.len()
            ),
        ));
    }

    // Operand list.
    let mut qubits: Vec<usize> = vec![parse_operand(cur, registers)?];
    while cur.eat(b',') {
        qubits.push(parse_operand(cur, registers)?);
    }
    let expected_qubits = if matches!(name, "cx" | "cz" | "swap") {
        2
    } else {
        1
    };
    if qubits.len() != expected_qubits {
        return Err(cur.error(
            name_at,
            name.to_string(),
            format!(
                "gate `{name}` acts on {expected_qubits} qubit{} but {} operands were given",
                if expected_qubits == 1 { "" } else { "s" },
                qubits.len()
            ),
        ));
    }
    if expected_qubits == 2 && qubits[0] == qubits[1] {
        return Err(cur.error(
            name_at,
            format!("q[{}]", qubits[0]),
            format!("gate `{name}` requires two distinct qubits"),
        ));
    }

    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
    /// `u3(θ,φ,λ) = Rz(φ)·Ry(θ)·Rz(λ)` up to the global phase
    /// `e^{i(φ+λ)/2}` (the `qelib1.inc` definition in ZYZ Euler form);
    /// circuit order is right-to-left, so `Rz(λ)` executes first. `u2` is
    /// `u3` with `θ = π/2`, `u1` with `θ = φ = 0` (a bare `Rz`).
    fn push_u(gates: &mut Vec<Gate>, qubit: usize, theta: f64, phi: f64, lambda: f64) {
        gates.push(Gate::Rz {
            qubit,
            angle: lambda,
        });
        gates.push(Gate::Ry {
            qubit,
            angle: theta,
        });
        gates.push(Gate::Rz { qubit, angle: phi });
    }
    match (name, qubits.as_slice()) {
        ("h", [q]) => gates.push(Gate::H(*q)),
        ("s", [q]) => gates.push(Gate::S(*q)),
        ("sdg", [q]) => gates.push(Gate::Sdg(*q)),
        ("x", [q]) => gates.push(Gate::X(*q)),
        ("y", [q]) => gates.push(Gate::Y(*q)),
        ("z", [q]) => gates.push(Gate::Z(*q)),
        ("sx", [q]) => gates.push(Gate::SqrtX(*q)),
        ("sxdg", [q]) => gates.push(Gate::SqrtXdg(*q)),
        // T = e^{iπ/8}·Rz(π/4): the same unitary up to a global phase.
        ("t", [q]) => gates.push(Gate::Rz {
            qubit: *q,
            angle: FRAC_PI_4,
        }),
        ("tdg", [q]) => gates.push(Gate::Rz {
            qubit: *q,
            angle: -FRAC_PI_4,
        }),
        ("rz", [q]) => gates.push(Gate::Rz {
            qubit: *q,
            angle: params[0],
        }),
        ("rx", [q]) => gates.push(Gate::Rx {
            qubit: *q,
            angle: params[0],
        }),
        ("ry", [q]) => gates.push(Gate::Ry {
            qubit: *q,
            angle: params[0],
        }),
        // u1(λ) = diag(1, e^{iλ}) = e^{iλ/2}·Rz(λ).
        ("u1", [q]) => gates.push(Gate::Rz {
            qubit: *q,
            angle: params[0],
        }),
        ("u2", [q]) => push_u(gates, *q, FRAC_PI_2, params[0], params[1]),
        ("u3" | "u", [q]) => push_u(gates, *q, params[0], params[1], params[2]),
        ("cx", [c, t]) => gates.push(Gate::Cx {
            control: *c,
            target: *t,
        }),
        ("cz", [a, b]) => gates.push(Gate::Cz { a: *a, b: *b }),
        ("swap", [a, b]) => gates.push(Gate::Swap { a: *a, b: *b }),
        _ => unreachable!("gate `{name}` passed arity checks"),
    }
    Ok(())
}

/// Parses one statement starting at the cursor. Returns `Ok(())` after
/// consuming the statement including its terminating `;`.
fn parse_statement(
    cur: &mut Cursor<'_>,
    registers: &mut Registers,
    gates: &mut Vec<Gate>,
) -> Result<(), ParseQasmError> {
    // A stray `;` is an empty statement; accept it.
    if cur.eat(b';') {
        return Ok(());
    }
    let Some((head, head_at)) = cur.take_ident() else {
        let token = cur.rest();
        return Err(cur.error_here(token, "expected a statement"));
    };
    match head.as_str() {
        "OPENQASM" => {
            let (version, version_column) = cur.take_word();
            if version != "2.0" {
                return Err(cur.error(
                    version_column,
                    version.clone(),
                    format!("unsupported OPENQASM version `{version}` (only 2.0 is supported)"),
                ));
            }
            cur.expect(b';', "after the OPENQASM version")
        }
        "include" | "barrier" | "creg" => cur.skip_statement(),
        "qreg" => {
            let Some((name, column)) = cur.take_ident() else {
                let token = cur.rest();
                return Err(cur.error_here(token, "expected a register name after `qreg`"));
            };
            cur.expect(b'[', "after the register name")?;
            let Some((size, _)) = cur.take_uint()? else {
                let token = cur.rest();
                return Err(cur.error_here(token, "expected a register size"));
            };
            cur.expect(b']', "after the register size")?;
            cur.expect(b';', "after the register declaration")?;
            if registers.contains(&name) {
                return Err(cur.error(
                    column,
                    name.clone(),
                    format!("duplicate `qreg` declaration of register `{name}`"),
                ));
            }
            registers.declare(name, size);
            Ok(())
        }
        _ => {
            parse_gate(cur, &head, head_at, registers, gates)?;
            cur.expect(b';', "after the gate statement")
        }
    }
}

/// Parses OpenQASM 2.0 text into a circuit.
///
/// Accepts the subset emitted by [`to_qasm`] plus the gate set external
/// VQE/QAOA workloads typically use (see the [module docs](self)): `t`/`tdg`
/// parse as `Rz(±π/4)`, and rotation parameters may be arithmetic
/// expressions over `pi`. The grammar is free-form, as the OpenQASM 2.0
/// specification requires: statements may share a line or span several.
///
/// # Errors
///
/// Returns a [`ParseQasmError`] with the 1-based line and column of the
/// first offending token: malformed headers, unknown gates or registers,
/// arity mismatches, out-of-range qubit indices, and malformed parameter
/// expressions are all reported where they occur.
///
/// # Examples
///
/// ```
/// use quclear_circuit::qasm::from_qasm;
///
/// let circuit = from_qasm(
///     "OPENQASM 2.0;\n\
///      include \"qelib1.inc\";\n\
///      qreg q[3];\n\
///      h q[0];\n\
///      cx q[0], q[1]; rz(-3*pi/2) q[1];\n\
///      t q[2];\n",
/// )?;
/// assert_eq!(circuit.num_qubits(), 3);
/// assert_eq!(circuit.len(), 4);
/// # Ok::<(), quclear_circuit::qasm::ParseQasmError>(())
/// ```
pub fn from_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut registers = Registers::default();
    let mut gates: Vec<Gate> = Vec::new();
    let mut cur = Cursor::new(text);
    while !cur.at_end() {
        parse_statement(&mut cur, &mut registers, &mut gates)?;
    }
    Ok(Circuit::from_gates(registers.total(), gates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0);
        c.sdg(1);
        c.cx(0, 1);
        c.rz(1, 0.375);
        c.swap(1, 2);
        c.cz(0, 2);
        c.push(Gate::SqrtX(2));
        c.ry(0, -1.25);
        c
    }

    #[test]
    fn export_contains_header_and_all_gates() {
        let text = to_qasm(&sample_circuit());
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("swap q[1], q[2];"));
        assert!(text.contains("rz(0.375"));
        assert_eq!(text.lines().count(), 3 + sample_circuit().len());
    }

    #[test]
    fn roundtrip_preserves_the_circuit() {
        let original = sample_circuit();
        let parsed = from_qasm(&to_qasm(&original)).unwrap();
        assert_eq!(parsed.num_qubits(), original.num_qubits());
        assert_eq!(parsed.gates().len(), original.gates().len());
        for (a, b) in parsed.gates().iter().zip(original.gates()) {
            match (a, b) {
                (
                    Gate::Rz {
                        qubit: qa,
                        angle: aa,
                    },
                    Gate::Rz {
                        qubit: qb,
                        angle: ab,
                    },
                )
                | (
                    Gate::Ry {
                        qubit: qa,
                        angle: aa,
                    },
                    Gate::Ry {
                        qubit: qb,
                        angle: ab,
                    },
                ) => {
                    assert_eq!(qa, qb);
                    assert!((aa - ab).abs() < 1e-12);
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn parse_rejects_unknown_gates_with_line_numbers() {
        let text = "OPENQASM 2.0;\nqreg q[2];\nccx q[0], q[1];\n";
        let err = from_qasm(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 1);
        assert_eq!(err.token, "ccx");
        assert!(err.to_string().contains("unsupported"));
    }

    #[test]
    fn parse_rejects_out_of_range_qubits() {
        let text = "qreg q[1];\ncx q[0], q[1];\n";
        let err = from_qasm(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.token, "q[1]");
        assert_eq!(err.column, 10);
        assert!(err.message.contains("outside the declared register"));
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let text = "OPENQASM 2.0;\n\n// a comment\nqreg q[1];\nh q[0]; // trailing\n";
        let circuit = from_qasm(text).unwrap();
        assert_eq!(circuit.len(), 1);
    }

    #[test]
    fn parse_accepts_multiple_statements_per_line() {
        let circuit = from_qasm("qreg q[2]; h q[0]; cx q[0], q[1]; s q[1];").unwrap();
        assert_eq!(circuit.len(), 3);
    }

    #[test]
    fn parse_accepts_statements_spanning_lines() {
        // OpenQASM 2.0 is free-form: newlines are ordinary whitespace, so
        // reformatted files with wrapped statements must still parse.
        let text = "OPENQASM\n2.0;\nqreg\n  q[2];\ncx q[0],\n   q[1];\nrz(\n  pi / 4\n) q[0]\n;\n";
        let circuit = from_qasm(text).unwrap();
        assert_eq!(circuit.num_qubits(), 2);
        assert_eq!(circuit.len(), 2);
        let Gate::Rz { angle, .. } = circuit.gates()[1] else {
            panic!("expected Rz");
        };
        assert!((angle - PI / 4.0).abs() < 1e-15);

        // Comments may interrupt a statement.
        let circuit = from_qasm("qreg q[2];\ncx q[0], // control\n q[1];\n").unwrap();
        assert_eq!(circuit.len(), 1);

        // A `;` inside a comment does not terminate an ignored statement.
        let circuit =
            from_qasm("OPENQASM 2.0;\nqreg q[2];\ncreg c // old; layout\n[2];\nh q[0];\n").unwrap();
        assert_eq!(circuit.len(), 1);
    }

    #[test]
    fn to_qasm_panics_on_non_finite_angles() {
        let mut c = Circuit::new(1);
        c.rz(0, f64::NAN);
        assert!(std::panic::catch_unwind(|| to_qasm(&c)).is_err());
    }

    #[test]
    fn t_and_tdg_parse_as_pi_over_4_rotations() {
        let circuit = from_qasm("qreg q[1];\nt q[0];\ntdg q[0];\n").unwrap();
        let gates = circuit.gates();
        assert_eq!(gates.len(), 2);
        let Gate::Rz { qubit: 0, angle } = gates[0] else {
            panic!("t must parse as Rz, got {:?}", gates[0]);
        };
        assert!((angle - PI / 4.0).abs() < 1e-15);
        let Gate::Rz { qubit: 0, angle } = gates[1] else {
            panic!("tdg must parse as Rz, got {:?}", gates[1]);
        };
        assert!((angle + PI / 4.0).abs() < 1e-15);
    }

    #[test]
    fn parameter_expressions_evaluate() {
        let cases = [
            ("pi/4", PI / 4.0),
            ("-3*pi/2", -3.0 * PI / 2.0),
            ("2*pi/3", 2.0 * PI / 3.0),
            ("0.5", 0.5),
            ("-0.25", -0.25),
            ("pi", PI),
            ("-pi", -PI),
            ("0.5*(pi + 1.0)", 0.5 * (PI + 1.0)),
            ("pi - pi/2", PI / 2.0),
            ("1e-3", 1e-3),
            ("2.5e2", 250.0),
            ("--1.0", 1.0),
        ];
        for (expr, expected) in cases {
            let text = format!("qreg q[1];\nrz({expr}) q[0];\n");
            let circuit = from_qasm(&text).unwrap_or_else(|e| panic!("`{expr}`: {e}"));
            let Gate::Rz { angle, .. } = circuit.gates()[0] else {
                panic!("expected Rz");
            };
            assert!(
                (angle - expected).abs() < 1e-12,
                "`{expr}` evaluated to {angle}, expected {expected}"
            );
        }
    }

    #[test]
    fn malformed_headers_are_rejected() {
        let err = from_qasm("OPENQASM 3.0;\nqreg q[1];\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.token, "3.0");
        assert!(err.message.contains("version"));

        let err = from_qasm("OPENQASM 2.0\nqreg q[1];\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected `;`"));
    }

    #[test]
    fn gate_before_qreg_is_rejected() {
        let err = from_qasm("h q[0];\nqreg q[1];\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("before the `qreg`"));
    }

    #[test]
    fn undeclared_registers_are_rejected() {
        let err = from_qasm("qreg q[2];\nh r[0];\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.token, "r");
        assert!(err.message.contains("unknown register"));
    }

    #[test]
    fn arbitrary_register_names_are_accepted() {
        let circuit = from_qasm("qreg qubits[2];\nh qubits[1];\n").unwrap();
        assert_eq!(circuit.num_qubits(), 2);
        assert_eq!(circuit.gates(), &[Gate::H(1)]);
    }

    #[test]
    fn multiple_registers_flatten_contiguously() {
        let text = "OPENQASM 2.0;\n\
                    qreg a[2];\n\
                    qreg b[3];\n\
                    qreg c[1];\n\
                    h a[0];\n\
                    x b[0];\n\
                    cx a[1], b[2];\n\
                    rz(pi/2) c[0];\n";
        let circuit = from_qasm(text).unwrap();
        assert_eq!(circuit.num_qubits(), 6);
        let gates = circuit.gates();
        assert_eq!(gates[0], Gate::H(0));
        assert_eq!(gates[1], Gate::X(2));
        assert_eq!(
            gates[2],
            Gate::Cx {
                control: 1,
                target: 4
            }
        );
        let Gate::Rz { qubit: 5, angle } = gates[3] else {
            panic!(
                "expected rz on the flattened index of c[0], got {:?}",
                gates[3]
            );
        };
        assert!((angle - PI / 2.0).abs() < 1e-15);
    }

    #[test]
    fn per_register_ranges_are_enforced() {
        // b[2] would be a valid *flattened* index (total is 5 qubits) but is
        // outside register b itself.
        let err = from_qasm("qreg a[3];\nqreg b[2];\nh b[2];\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.token, "b[2]");
        assert!(err.message.contains("outside the declared register `b[2]`"));

        // A register declared after its use site does not exist yet.
        let err = from_qasm("qreg a[1];\nh b[0];\nqreg b[2];\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown register"));
    }

    #[test]
    fn arity_errors_are_reported() {
        // Missing parameter on rz.
        let err = from_qasm("qreg q[2];\nrz q[0];\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("1 parameter"));

        // Parameter on a parameterless gate.
        let err = from_qasm("qreg q[2];\nh(0.5) q[0];\n").unwrap_err();
        assert!(err.message.contains("0 parameters"));

        // One operand on a two-qubit gate.
        let err = from_qasm("qreg q[2];\ncx q[0];\n").unwrap_err();
        assert!(err.message.contains("2 qubits"));

        // Coincident operands on a two-qubit gate.
        let err = from_qasm("qreg q[2];\ncx q[1], q[1];\n").unwrap_err();
        assert!(err.message.contains("distinct"));
    }

    #[test]
    fn expression_errors_are_located() {
        let err = from_qasm("qreg q[1];\nrz(tau/2) q[0];\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.token, "tau");
        assert_eq!(err.column, 4);

        let err = from_qasm("qreg q[1];\nrz(pi/0) q[0];\n").unwrap_err();
        assert!(err.message.contains("division by zero"));

        let err = from_qasm("qreg q[1];\nrz(pi q[0];\n").unwrap_err();
        assert!(err.message.contains("expected `)`") || err.message.contains("close"));
    }

    #[test]
    fn deeply_nested_expressions_error_instead_of_overflowing() {
        // A stack of unary minus signs.
        let text = format!("qreg q[1];\nrz({}1.0) q[0];\n", "-".repeat(100_000));
        let err = from_qasm(&text).unwrap_err();
        assert!(err.message.contains("nested too deeply"), "{err}");

        // A stack of parentheses.
        let text = format!(
            "qreg q[1];\nrz({}1.0{}) q[0];\n",
            "(".repeat(100_000),
            ")".repeat(100_000)
        );
        let err = from_qasm(&text).unwrap_err();
        assert!(err.message.contains("nested too deeply"), "{err}");

        // Reasonable nesting still works.
        let text = format!(
            "qreg q[1];\nrz({}--pi{}) q[0];\n",
            "(".repeat(20),
            ")".repeat(20)
        );
        assert!(from_qasm(&text).is_ok());
    }

    #[test]
    fn malformed_literals_are_reported_at_the_literal() {
        // A register size too large for usize.
        let err = from_qasm("qreg q[99999999999999999999999];\n").unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        assert_eq!(err.token, "99999999999999999999999");
        assert_eq!(err.column, 8);

        // A malformed version number.
        let err = from_qasm("OPENQASM 2.0.1;\nqreg q[1];\n").unwrap_err();
        assert_eq!(err.token, "2.0.1");
        assert!(err.message.contains("version"), "{err}");

        // A malformed numeric parameter.
        let err = from_qasm("qreg q[1];\nrz(1.2.3) q[0];\n").unwrap_err();
        assert_eq!(err.token, "1.2.3");
        assert!(err.message.contains("numeric literal"), "{err}");
    }

    #[test]
    fn missing_semicolon_is_rejected() {
        let err = from_qasm("qreg q[1];\nh q[0]\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected `;`"));
    }

    #[test]
    fn duplicate_qreg_is_rejected() {
        let err = from_qasm("qreg q[1];\nqreg q[2];\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.token, "q");
        assert!(err.message.contains("duplicate"));

        // Distinct names are not duplicates.
        assert!(from_qasm("qreg q[1];\nqreg r[2];\n").is_ok());
    }

    #[test]
    fn u_gates_decompose_to_native_rotations() {
        // u1(λ) is a bare Rz.
        let circuit = from_qasm("qreg q[1];\nu1(0.3) q[0];\n").unwrap();
        assert_eq!(circuit.len(), 1);
        let Gate::Rz { qubit: 0, angle } = circuit.gates()[0] else {
            panic!("u1 must parse as Rz, got {:?}", circuit.gates()[0]);
        };
        assert!((angle - 0.3).abs() < 1e-15);

        // u2(φ,λ) = Rz(φ)·Ry(π/2)·Rz(λ): circuit order Rz(λ), Ry(π/2), Rz(φ).
        let circuit = from_qasm("qreg q[1];\nu2(0.25, -0.75) q[0];\n").unwrap();
        let gates = circuit.gates();
        assert_eq!(gates.len(), 3);
        let Gate::Rz { angle: lambda, .. } = gates[0] else {
            panic!("expected leading Rz(λ), got {:?}", gates[0]);
        };
        let Gate::Ry { angle: theta, .. } = gates[1] else {
            panic!("expected Ry(π/2), got {:?}", gates[1]);
        };
        let Gate::Rz { angle: phi, .. } = gates[2] else {
            panic!("expected trailing Rz(φ), got {:?}", gates[2]);
        };
        assert!((lambda + 0.75).abs() < 1e-15);
        assert!((theta - PI / 2.0).abs() < 1e-15);
        assert!((phi - 0.25).abs() < 1e-15);

        // u3 and its OpenQASM-3-style alias u produce identical gates.
        let u3 = from_qasm("qreg q[1];\nu3(1.0, 2.0, 3.0) q[0];\n").unwrap();
        let u = from_qasm("qreg q[1];\nu(1.0, 2.0, 3.0) q[0];\n").unwrap();
        assert_eq!(u3.gates(), u.gates());
        assert_eq!(u3.len(), 3);
        let angles: Vec<f64> = u3
            .gates()
            .iter()
            .map(|g| match g {
                Gate::Rz { angle, .. } | Gate::Ry { angle, .. } => *angle,
                other => panic!("unexpected gate {other:?}"),
            })
            .collect();
        assert_eq!(angles, vec![3.0, 1.0, 2.0]); // λ, θ, φ
    }

    #[test]
    fn u_gate_arity_errors_are_located() {
        let err = from_qasm("qreg q[1];\nu2(0.5) q[0];\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("2 parameters"), "{err}");

        let err = from_qasm("qreg q[1];\nu3(0.5, 0.25) q[0];\n").unwrap_err();
        assert!(err.message.contains("3 parameters"), "{err}");

        let err = from_qasm("qreg q[2];\nu1(0.5) q[0], q[1];\n").unwrap_err();
        assert!(err.message.contains("1 qubit"), "{err}");
    }

    #[test]
    fn display_contains_location_and_token() {
        let err = from_qasm("qreg q[1];\nccx q[0];\n").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2"));
        assert!(text.contains("column 1"));
        assert!(text.contains("ccx"));
    }
}

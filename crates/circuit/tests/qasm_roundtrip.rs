//! Property tests for the QASM round trip: `from_qasm(to_qasm(c))` must be
//! gate-for-gate **equal** to `c` (exact angles: `to_qasm` prints the
//! shortest decimal that round-trips every `f64`).

use proptest::prelude::*;
use quclear_circuit::qasm::{from_qasm, to_qasm};
use quclear_circuit::{Circuit, Gate};

const NUM_QUBITS: usize = 5;

/// Decodes one random word into a gate on `NUM_QUBITS` qubits, covering the
/// whole exportable gate set (including every rotation kind).
fn decode_gate(word: u64) -> Gate {
    let q = (word % NUM_QUBITS as u64) as usize;
    let other = ((word >> 8) % (NUM_QUBITS as u64 - 1)) as usize;
    let p = if other >= q { other + 1 } else { other };
    // Angles on a fine irrational-ish grid, sign included.
    let angle = ((word >> 16) % 10_000) as f64 * 3.7e-4 - 1.85;
    match (word >> 32) % 14 {
        0 => Gate::H(q),
        1 => Gate::S(q),
        2 => Gate::Sdg(q),
        3 => Gate::X(q),
        4 => Gate::Y(q),
        5 => Gate::Z(q),
        6 => Gate::SqrtX(q),
        7 => Gate::SqrtXdg(q),
        8 => Gate::Rz { qubit: q, angle },
        9 => Gate::Rx { qubit: q, angle },
        10 => Gate::Ry { qubit: q, angle },
        11 => Gate::Cx {
            control: q,
            target: p,
        },
        12 => Gate::Cz { a: q, b: p },
        _ => Gate::Swap { a: q, b: p },
    }
}

fn random_circuit(words: &[u64]) -> Circuit {
    Circuit::from_gates(NUM_QUBITS, words.iter().map(|&w| decode_gate(w)).collect())
}

proptest! {
    /// `u1`/`u2`/`u3` (and the `u` alias) decompose to exactly the unitary
    /// `qelib1.inc` defines, up to global phase, for any parameter values.
    /// The reference is the *explicit matrix* from the OpenQASM 2 spec —
    /// `U(θ,φ,λ) = [[cos(θ/2), −e^{iλ}·sin(θ/2)],
    ///              [e^{iφ}·sin(θ/2), e^{i(φ+λ)}·cos(θ/2)]]`
    /// — written out entry by entry, deliberately *not* the same ZYZ
    /// `Rz·Ry·Rz` formula the parser emits (that would make the test
    /// circular: a wrong Euler convention would agree with itself).
    #[test]
    fn u_gates_match_their_qelib_unitaries(params in prop::collection::vec(-7.0f64..7.0, 3)) {
        use quclear_circuit::math::{single_qubit_matrix, Mat2, C64};
        fn u_matrix(theta: f64, phi: f64, lambda: f64) -> Mat2 {
            let (sin, cos) = (theta / 2.0).sin_cos();
            let scale = |c: C64, s: f64| C64::new(c.re * s, c.im * s);
            Mat2::new(
                C64::new(cos, 0.0),
                scale(C64::cis(lambda), -sin),
                scale(C64::cis(phi), sin),
                scale(C64::cis(phi + lambda), cos),
            )
        }
        let (theta, phi, lambda) = (params[0], params[1], params[2]);
        let cases = [
            (format!("u3({theta}, {phi}, {lambda})"), u_matrix(theta, phi, lambda)),
            (format!("u({theta}, {phi}, {lambda})"), u_matrix(theta, phi, lambda)),
            // qelib1.inc: u2(φ,λ) = U(π/2,φ,λ), u1(λ) = U(0,0,λ).
            (
                format!("u2({phi}, {lambda})"),
                u_matrix(std::f64::consts::FRAC_PI_2, phi, lambda),
            ),
            (format!("u1({lambda})"), u_matrix(0.0, 0.0, lambda)),
        ];
        for (spelling, reference) in cases {
            let text = format!("qreg q[1];\n{spelling} q[0];\n");
            let circuit = from_qasm(&text).unwrap_or_else(|e| panic!("`{spelling}`: {e}"));
            // Multiply the decomposed gates in circuit order (leftmost gate
            // executes first, so it sits rightmost in the matrix product).
            let mut product = Mat2::identity();
            for gate in circuit.gates() {
                product = single_qubit_matrix(gate).mul(&product);
            }
            prop_assert!(
                product.distance_up_to_phase(&reference) < 1e-9,
                "`{}` decomposition diverges from its qelib definition",
                spelling
            );
        }
    }

    /// A program spelled over several registers parses to the same circuit
    /// as the same program hand-flattened onto one register — the contiguous
    /// flattening is the only difference between the two texts.
    #[test]
    fn multi_register_programs_flatten_to_the_single_register_form(
        words in prop::collection::vec(any::<u64>(), 0..40),
        split in 1usize..NUM_QUBITS,
    ) {
        let flat = random_circuit(&words);
        // Re-spell every operand `q[i]` as `a[i]` (i < split) or
        // `b[i - split]`, with `qreg a[split]; qreg b[rest];`.
        let mut text = String::from("OPENQASM 2.0;\n");
        text.push_str(&format!("qreg a[{split}];\n"));
        text.push_str(&format!("qreg b[{}];\n", NUM_QUBITS - split));
        let operand = |q: usize| {
            if q < split {
                format!("a[{q}]")
            } else {
                format!("b[{}]", q - split)
            }
        };
        for line in to_qasm(&flat).lines().skip(3) {
            let mut spelled = line.to_string();
            for q in 0..NUM_QUBITS {
                spelled = spelled.replace(&format!("q[{q}]"), &operand(q));
            }
            text.push_str(&spelled);
            text.push('\n');
        }
        let parsed = from_qasm(&text).expect("multi-register spelling must parse");
        prop_assert_eq!(parsed.num_qubits(), flat.num_qubits());
        prop_assert_eq!(parsed.gates(), flat.gates());
    }

    /// The full gate set survives the text round trip exactly.
    #[test]
    fn from_qasm_inverts_to_qasm(words in prop::collection::vec(any::<u64>(), 0..60)) {
        let original = random_circuit(&words);
        let parsed = from_qasm(&to_qasm(&original)).expect("exported QASM must parse");
        prop_assert_eq!(parsed.num_qubits(), original.num_qubits());
        prop_assert_eq!(parsed.gates(), original.gates());
    }

    /// Angles of every magnitude round-trip bit-exactly, including values
    /// that print many digits.
    #[test]
    fn extreme_angles_roundtrip_exactly(bits in prop::collection::vec(any::<u64>(), 1..20)) {
        let gates: Vec<Gate> = bits
            .iter()
            .map(|&b| {
                // Map the raw bits to a finite angle of any scale.
                let angle = f64::from_bits(b);
                let angle = if angle.is_finite() { angle } else { (b % 1000) as f64 * 1e-3 };
                Gate::Rz { qubit: 0, angle }
            })
            .collect();
        let original = Circuit::from_gates(1, gates);
        let parsed = from_qasm(&to_qasm(&original)).expect("exported QASM must parse");
        prop_assert_eq!(parsed.gates(), original.gates());
    }
}

/// The newly supported input-only spellings (`t`, `tdg`, parameter
/// expressions) parse to the gates their semantics dictate, and re-export to
/// the canonical spelling without changing the circuit.
#[test]
fn input_only_spellings_reach_a_fixpoint() {
    let text = "OPENQASM 2.0;\nqreg q[2];\nt q[0];\ntdg q[1];\nrz(-3*pi/2) q[0];\nrx(pi/4) q[1];\nswap q[0], q[1];\ncz q[0], q[1];\nsdg q[0];\nu1(0.5) q[0];\nu2(pi/3, -0.25) q[1];\nu3(1.5, -2.5, 0.75) q[0];\n";
    let first = from_qasm(text).unwrap();
    let second = from_qasm(&to_qasm(&first)).unwrap();
    assert_eq!(first.gates(), second.gates());
    // 7 literal gates + 1 (u1) + 3 (u2) + 3 (u3) decomposed rotations.
    assert_eq!(first.len(), 14);
}

/// Multi-register spellings fix to the canonical single-register export.
#[test]
fn multi_register_spellings_reach_a_fixpoint() {
    let text = "OPENQASM 2.0;\nqreg left[2];\nqreg right[2];\nh left[0];\ncx left[1], right[0];\nu2(0.5, pi/8) right[1];\n";
    let first = from_qasm(text).unwrap();
    assert_eq!(first.num_qubits(), 4);
    let second = from_qasm(&to_qasm(&first)).unwrap();
    assert_eq!(first.gates(), second.gates());
}

//! Property tests for the QASM round trip: `from_qasm(to_qasm(c))` must be
//! gate-for-gate **equal** to `c` (exact angles: `to_qasm` prints the
//! shortest decimal that round-trips every `f64`).

use proptest::prelude::*;
use quclear_circuit::qasm::{from_qasm, to_qasm};
use quclear_circuit::{Circuit, Gate};

const NUM_QUBITS: usize = 5;

/// Decodes one random word into a gate on `NUM_QUBITS` qubits, covering the
/// whole exportable gate set (including every rotation kind).
fn decode_gate(word: u64) -> Gate {
    let q = (word % NUM_QUBITS as u64) as usize;
    let other = ((word >> 8) % (NUM_QUBITS as u64 - 1)) as usize;
    let p = if other >= q { other + 1 } else { other };
    // Angles on a fine irrational-ish grid, sign included.
    let angle = ((word >> 16) % 10_000) as f64 * 3.7e-4 - 1.85;
    match (word >> 32) % 14 {
        0 => Gate::H(q),
        1 => Gate::S(q),
        2 => Gate::Sdg(q),
        3 => Gate::X(q),
        4 => Gate::Y(q),
        5 => Gate::Z(q),
        6 => Gate::SqrtX(q),
        7 => Gate::SqrtXdg(q),
        8 => Gate::Rz { qubit: q, angle },
        9 => Gate::Rx { qubit: q, angle },
        10 => Gate::Ry { qubit: q, angle },
        11 => Gate::Cx {
            control: q,
            target: p,
        },
        12 => Gate::Cz { a: q, b: p },
        _ => Gate::Swap { a: q, b: p },
    }
}

fn random_circuit(words: &[u64]) -> Circuit {
    Circuit::from_gates(NUM_QUBITS, words.iter().map(|&w| decode_gate(w)).collect())
}

proptest! {
    /// The full gate set survives the text round trip exactly.
    #[test]
    fn from_qasm_inverts_to_qasm(words in prop::collection::vec(any::<u64>(), 0..60)) {
        let original = random_circuit(&words);
        let parsed = from_qasm(&to_qasm(&original)).expect("exported QASM must parse");
        prop_assert_eq!(parsed.num_qubits(), original.num_qubits());
        prop_assert_eq!(parsed.gates(), original.gates());
    }

    /// Angles of every magnitude round-trip bit-exactly, including values
    /// that print many digits.
    #[test]
    fn extreme_angles_roundtrip_exactly(bits in prop::collection::vec(any::<u64>(), 1..20)) {
        let gates: Vec<Gate> = bits
            .iter()
            .map(|&b| {
                // Map the raw bits to a finite angle of any scale.
                let angle = f64::from_bits(b);
                let angle = if angle.is_finite() { angle } else { (b % 1000) as f64 * 1e-3 };
                Gate::Rz { qubit: 0, angle }
            })
            .collect();
        let original = Circuit::from_gates(1, gates);
        let parsed = from_qasm(&to_qasm(&original)).expect("exported QASM must parse");
        prop_assert_eq!(parsed.gates(), original.gates());
    }
}

/// The newly supported input-only spellings (`t`, `tdg`, parameter
/// expressions) parse to the gates their semantics dictate, and re-export to
/// the canonical spelling without changing the circuit.
#[test]
fn input_only_spellings_reach_a_fixpoint() {
    let text = "OPENQASM 2.0;\nqreg q[2];\nt q[0];\ntdg q[1];\nrz(-3*pi/2) q[0];\nrx(pi/4) q[1];\nswap q[0], q[1];\ncz q[0], q[1];\nsdg q[0];\n";
    let first = from_qasm(text).unwrap();
    let second = from_qasm(&to_qasm(&first)).unwrap();
    assert_eq!(first.gates(), second.gates());
    assert_eq!(first.len(), 7);
}

//! Property-based tests for the Clifford tableau.

use proptest::prelude::*;
use quclear_pauli::{PauliOp, PauliString};
use quclear_tableau::{random_clifford_circuit, synthesize_clifford, CliffordTableau};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(0u8..4, n).prop_map(|ops| {
        let ops: Vec<PauliOp> = ops
            .into_iter()
            .map(|v| match v {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        PauliString::from_ops(&ops)
    })
}

const N: usize = 5;

fn random_tableau(seed: u64, gates: usize) -> CliffordTableau {
    let mut rng = StdRng::seed_from_u64(seed);
    CliffordTableau::from_circuit(&random_clifford_circuit(N, gates, &mut rng))
}

proptest! {
    /// Conjugation preserves Pauli weight parity of commutation: images
    /// commute exactly when the originals do.
    #[test]
    fn conjugation_preserves_commutation(
        seed in 0u64..256,
        a in pauli_string(N),
        b in pauli_string(N),
    ) {
        let t = random_tableau(seed, 30);
        let ia = t.apply(&a);
        let ib = t.apply(&b);
        prop_assert_eq!(a.commutes_with(&b), ia.pauli().commutes_with(ib.pauli()));
    }

    /// Conjugation preserves the group structure: M(A·B) = M(A)·M(B)
    /// whenever the product is Hermitian.
    #[test]
    fn conjugation_is_multiplicative(
        seed in 0u64..256,
        a in pauli_string(N),
        b in pauli_string(N),
    ) {
        prop_assume!(a.commutes_with(&b));
        let t = random_tableau(seed, 25);
        let (prod, phase) = a.mul(&b);
        prop_assert_eq!(phase % 2, 0);
        let mut lhs = t.apply(&prod);
        if phase == 2 {
            lhs = -lhs;
        }
        let rhs = t.apply(&a).mul(&t.apply(&b));
        prop_assert_eq!(lhs, rhs);
    }

    /// Inverse tableau really inverts: U†(U P U†)U = P including sign.
    #[test]
    fn inverse_roundtrip(seed in 0u64..256, p in pauli_string(N)) {
        let t = random_tableau(seed, 30);
        let inv = t.inverse();
        let roundtrip = inv.apply_signed(&t.apply(&p));
        prop_assert_eq!(roundtrip.pauli(), &p);
        prop_assert!(!roundtrip.is_negative());
    }

    /// The identity never changes under conjugation.
    #[test]
    fn identity_is_fixed(seed in 0u64..256) {
        let t = random_tableau(seed, 40);
        let id = PauliString::identity(N);
        let image = t.apply(&id);
        prop_assert!(image.pauli().is_identity());
        prop_assert!(!image.is_negative());
    }

    /// Synthesis reproduces the tableau exactly (structure and signs).
    #[test]
    fn synthesis_roundtrip(seed in 0u64..128) {
        let t = random_tableau(seed, 35);
        let circuit = synthesize_clifford(&t);
        prop_assert_eq!(CliffordTableau::from_circuit(&circuit), t);
    }

    /// Composition of tableaus matches sequential application.
    #[test]
    fn composition_matches_application(
        seed1 in 0u64..128,
        seed2 in 0u64..128,
        p in pauli_string(N),
    ) {
        let t1 = random_tableau(seed1, 20);
        let t2 = random_tableau(seed2.wrapping_add(1000), 20);
        let composed = t1.then(&t2);
        prop_assert_eq!(composed.apply(&p), t2.apply_signed(&t1.apply(&p)));
    }
}

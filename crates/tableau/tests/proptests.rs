//! Property-based tests for the Clifford tableau.

use proptest::prelude::*;
use quclear_pauli::{PauliFrame, PauliOp, PauliString, SignedPauli};
use quclear_tableau::{
    conjugate_all_by_gate, conjugate_pauli_by_gate, random_clifford_circuit, synthesize_clifford,
    CliffordTableau,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(0u8..4, n).prop_map(|ops| {
        let ops: Vec<PauliOp> = ops
            .into_iter()
            .map(|v| match v {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        PauliString::from_ops(&ops)
    })
}

const N: usize = 5;

fn random_tableau(seed: u64, gates: usize) -> CliffordTableau {
    let mut rng = StdRng::seed_from_u64(seed);
    CliffordTableau::from_circuit(&random_clifford_circuit(N, gates, &mut rng))
}

proptest! {
    /// Conjugation preserves Pauli weight parity of commutation: images
    /// commute exactly when the originals do.
    #[test]
    fn conjugation_preserves_commutation(
        seed in 0u64..256,
        a in pauli_string(N),
        b in pauli_string(N),
    ) {
        let t = random_tableau(seed, 30);
        let ia = t.apply(&a);
        let ib = t.apply(&b);
        prop_assert_eq!(a.commutes_with(&b), ia.pauli().commutes_with(ib.pauli()));
    }

    /// Conjugation preserves the group structure: M(A·B) = M(A)·M(B)
    /// whenever the product is Hermitian.
    #[test]
    fn conjugation_is_multiplicative(
        seed in 0u64..256,
        a in pauli_string(N),
        b in pauli_string(N),
    ) {
        prop_assume!(a.commutes_with(&b));
        let t = random_tableau(seed, 25);
        let (prod, phase) = a.mul(&b);
        prop_assert_eq!(phase % 2, 0);
        let mut lhs = t.apply(&prod);
        if phase == 2 {
            lhs = -lhs;
        }
        let rhs = t.apply(&a).mul(&t.apply(&b));
        prop_assert_eq!(lhs, rhs);
    }

    /// Inverse tableau really inverts: U†(U P U†)U = P including sign.
    #[test]
    fn inverse_roundtrip(seed in 0u64..256, p in pauli_string(N)) {
        let t = random_tableau(seed, 30);
        let inv = t.inverse();
        let roundtrip = inv.apply_signed(&t.apply(&p));
        prop_assert_eq!(roundtrip.pauli(), &p);
        prop_assert!(!roundtrip.is_negative());
    }

    /// The identity never changes under conjugation.
    #[test]
    fn identity_is_fixed(seed in 0u64..256) {
        let t = random_tableau(seed, 40);
        let id = PauliString::identity(N);
        let image = t.apply(&id);
        prop_assert!(image.pauli().is_identity());
        prop_assert!(!image.is_negative());
    }

    /// The batched `apply_frame` agrees with per-string `apply` on every
    /// row of random frames through random tableaus — signed rows, random
    /// row counts (including cross-word sizes and zero).
    #[test]
    fn apply_frame_matches_per_string_apply(
        seed in 0u64..256,
        gates in 1usize..60,
        rows in prop::collection::vec((pauli_string(N), any::<bool>()), 0..140),
    ) {
        let t = random_tableau(seed.wrapping_mul(193).wrapping_add(5), gates);
        let signed: Vec<SignedPauli> = rows
            .into_iter()
            .map(|(p, neg)| SignedPauli::new(p, neg))
            .collect();
        let frame = PauliFrame::from_signed(N, &signed);
        let image = t.apply_frame(&frame);
        prop_assert_eq!(image.num_rows(), signed.len());
        for (i, row) in signed.iter().enumerate() {
            prop_assert_eq!(image.get(i), t.apply_signed(row));
        }
    }

    /// Synthesis reproduces the tableau exactly (structure and signs).
    #[test]
    fn synthesis_roundtrip(seed in 0u64..128) {
        let t = random_tableau(seed, 35);
        let circuit = synthesize_clifford(&t);
        prop_assert_eq!(CliffordTableau::from_circuit(&circuit), t);
    }

    /// Composition of tableaus matches sequential application.
    #[test]
    fn composition_matches_application(
        seed1 in 0u64..128,
        seed2 in 0u64..128,
        p in pauli_string(N),
    ) {
        let t1 = random_tableau(seed1, 20);
        let t2 = random_tableau(seed2.wrapping_add(1000), 20);
        let composed = t1.then(&t2);
        prop_assert_eq!(composed.apply(&p), t2.apply_signed(&t1.apply(&p)));
    }

    /// The bit-plane tableau is gate-for-gate equivalent to the reference
    /// `SignedPauli`-row implementation (the pre-bit-plane representation):
    /// generator images built by folding the scalar per-gate rule over the
    /// circuit match `x_image`/`z_image` exactly, signs included.
    #[test]
    fn bit_plane_generator_images_match_signed_row_reference(
        seed in 0u64..256,
        gates in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(77).wrapping_add(3));
        let circuit = random_clifford_circuit(N, gates, &mut rng);
        let t = CliffordTableau::from_circuit(&circuit);
        let reference = RowTableau::from_circuit(&circuit);
        for q in 0..N {
            prop_assert_eq!(t.x_image(q), reference.x_rows[q].clone());
            prop_assert_eq!(t.z_image(q), reference.z_rows[q].clone());
        }
    }

    /// The word-parallel `apply` agrees with the reference row-by-row
    /// multiplication algorithm on arbitrary Pauli strings.
    #[test]
    fn bit_plane_apply_matches_signed_row_reference(
        seed in 0u64..256,
        gates in 1usize..60,
        p in pauli_string(N),
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131).wrapping_add(17));
        let circuit = random_clifford_circuit(N, gates, &mut rng);
        let t = CliffordTableau::from_circuit(&circuit);
        let reference = RowTableau::from_circuit(&circuit);
        prop_assert_eq!(t.apply(&p), reference.apply(&p));
    }

    /// Batched frame conjugation stays row-for-row equal to the scalar rule
    /// across a whole random circuit, including rows in trailing partial
    /// words of the bit-planes.
    #[test]
    fn frame_conjugation_matches_scalar_over_circuits(
        seed in 0u64..256,
        gates in 1usize..40,
        rows in prop::collection::vec(pauli_string(N), 1..70),
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(211).wrapping_add(5));
        let circuit = random_clifford_circuit(N, gates, &mut rng);
        let signed: Vec<SignedPauli> = rows.iter().cloned().map(SignedPauli::positive).collect();
        let mut frame = PauliFrame::from_signed(N, &signed);
        let mut scalar = signed;
        for gate in circuit.gates() {
            conjugate_all_by_gate(&mut frame, gate);
            for row in &mut scalar {
                *row = conjugate_pauli_by_gate(row, gate);
            }
        }
        for (i, row) in scalar.iter().enumerate() {
            prop_assert_eq!(&frame.get(i), row);
        }
    }
}

/// The pre-bit-plane tableau representation, kept verbatim as a test oracle:
/// one `SignedPauli` row per generator image, updated by the scalar per-gate
/// conjugation rule, applied by row-by-row Pauli multiplication.
struct RowTableau {
    n: usize,
    x_rows: Vec<SignedPauli>,
    z_rows: Vec<SignedPauli>,
}

impl RowTableau {
    fn from_circuit(circuit: &quclear_circuit::Circuit) -> Self {
        let n = circuit.num_qubits();
        let mut x_rows: Vec<SignedPauli> = (0..n)
            .map(|q| SignedPauli::positive(PauliString::single(n, q, PauliOp::X)))
            .collect();
        let mut z_rows: Vec<SignedPauli> = (0..n)
            .map(|q| SignedPauli::positive(PauliString::single(n, q, PauliOp::Z)))
            .collect();
        for gate in circuit.gates() {
            for row in x_rows.iter_mut().chain(z_rows.iter_mut()) {
                *row = conjugate_pauli_by_gate(row, gate);
            }
        }
        RowTableau { n, x_rows, z_rows }
    }

    fn apply(&self, pauli: &PauliString) -> SignedPauli {
        let mut acc = PauliString::identity(self.n);
        let mut phase: u8 = 0;
        let mut y_count: usize = 0;
        for q in 0..self.n {
            let (x, z) = pauli.op(q).xz();
            if x && z {
                y_count += 1;
            }
            if x {
                let row = &self.x_rows[q];
                let (next, k) = acc.mul(row.pauli());
                phase = (phase + k + if row.is_negative() { 2 } else { 0 }) % 4;
                acc = next;
            }
            if z {
                let row = &self.z_rows[q];
                let (next, k) = acc.mul(row.pauli());
                phase = (phase + k + if row.is_negative() { 2 } else { 0 }) % 4;
                acc = next;
            }
        }
        let total = (phase + (y_count % 4) as u8) % 4;
        assert_eq!(total % 2, 0, "reference produced imaginary phase");
        SignedPauli::new(acc, total == 2)
    }
}

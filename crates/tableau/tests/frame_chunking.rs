//! Determinism of the blocked (rayon-parallel) frame sweep.
//!
//! `CliffordTableau::apply_frame` splits the batch dimension into word-range
//! blocks and runs them on the thread pool; every update is element-wise in
//! the batch dimension, so the result must be **bit-identical** at any block
//! size — sequential, maximally split, or anything between — and must match
//! the scalar per-row conjugation.

use proptest::prelude::*;
use quclear_pauli::{PauliFrame, PauliOp, PauliString, SignedPauli};
use quclear_tableau::{random_clifford_circuit, CliffordTableau};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 6;

fn random_tableau(seed: u64, gates: usize) -> CliffordTableau {
    let mut rng = StdRng::seed_from_u64(seed);
    CliffordTableau::from_circuit(&random_clifford_circuit(N, gates, &mut rng))
}

fn signed_pauli(n: usize) -> impl Strategy<Value = SignedPauli> {
    (prop::collection::vec(0u8..4, n), any::<bool>()).prop_map(|(ops, neg)| {
        let ops: Vec<PauliOp> = ops
            .into_iter()
            .map(|v| match v {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        SignedPauli::new(PauliString::from_ops(&ops), neg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every chunking of the frame sweep produces the same bits, and they
    /// match the scalar one-row-at-a-time conjugation.
    #[test]
    fn chunked_sweep_is_bit_identical_to_sequential(
        seed in 0u64..128,
        rows in prop::collection::vec(signed_pauli(N), 1..300),
    ) {
        let t = random_tableau(seed, 40);
        let input = PauliFrame::from_signed(N, &rows);
        let words = input.sign_plane().words().len();

        // Sequential reference: one block covering the whole batch.
        let reference = t.apply_frame_chunked(&input, words);
        // Scalar oracle.
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(reference.get(i), t.apply_signed(row));
        }
        // Every other block size, including the pathological one-word
        // blocks, must reproduce the reference bit for bit.
        for block_words in [1usize, 2, 3, words.div_ceil(2).max(1)] {
            let chunked = t.apply_frame_chunked(&input, block_words);
            prop_assert_eq!(&chunked, &reference);
        }
        // And the automatic path (whatever the thread count picked) too.
        prop_assert_eq!(&t.apply_frame(&input), &reference);
    }
}

//! Per-gate Clifford conjugation rules on Pauli operators.
//!
//! The fundamental operation is `P ↦ g·P·g†` for a Clifford gate `g`. The
//! rules are expressed on single-qubit operators (plus the CNOT rule on
//! pairs) and assembled into whole-string updates by
//! [`conjugate_pauli_by_gate`]. Correctness is checked against the unitary
//! simulator in the workspace integration tests and against the paper's
//! Table I in this crate's unit tests.

use quclear_circuit::{Circuit, Gate};
use quclear_pauli::{PauliFrame, PauliOp, SignedPauli};

/// Conjugates a signed Pauli by a single Clifford gate: returns `g·P·g†`.
///
/// # Panics
///
/// Panics if `gate` is not a Clifford gate (`Rz`/`Rx`/`Ry`).
#[must_use]
pub fn conjugate_pauli_by_gate(pauli: &SignedPauli, gate: &Gate) -> SignedPauli {
    let mut p = pauli.pauli().clone();
    let mut negative = pauli.is_negative();
    match *gate {
        Gate::H(q)
        | Gate::S(q)
        | Gate::Sdg(q)
        | Gate::X(q)
        | Gate::Y(q)
        | Gate::Z(q)
        | Gate::SqrtX(q)
        | Gate::SqrtXdg(q) => {
            let (new_op, flip) = conjugate_single(gate, p.op(q));
            p.set_op(q, new_op);
            negative ^= flip;
        }
        Gate::Cx { control, target } => {
            let (new_c, new_t, flip) = conjugate_cx(p.op(control), p.op(target));
            p.set_op(control, new_c);
            p.set_op(target, new_t);
            negative ^= flip;
        }
        Gate::Cz { a, b } => {
            // CZ = H(b) · CX(a,b) · H(b); apply the three conjugations in turn.
            let mut sp = SignedPauli::new(p, negative);
            for g in [
                Gate::H(b),
                Gate::Cx {
                    control: a,
                    target: b,
                },
                Gate::H(b),
            ] {
                sp = conjugate_pauli_by_gate(&sp, &g);
            }
            return sp;
        }
        Gate::Swap { a, b } => {
            let (oa, ob) = (p.op(a), p.op(b));
            p.set_op(a, ob);
            p.set_op(b, oa);
        }
        Gate::Rz { .. } | Gate::Rx { .. } | Gate::Ry { .. } => {
            panic!("cannot conjugate a Pauli by non-Clifford gate {gate}")
        }
    }
    SignedPauli::new(p, negative)
}

/// Conjugates **every** Pauli in a [`PauliFrame`] by a single Clifford gate
/// in one word-parallel pass: each row becomes `g·P·g†`.
///
/// This is the batched counterpart of [`conjugate_pauli_by_gate`]: instead
/// of walking rows one at a time it updates the frame's per-qubit bit-planes
/// with `O(rows/64)` word operations, which is what makes advancing a
/// Clifford frame past a whole lookahead window cheap.
///
/// # Panics
///
/// Panics if `gate` is not a Clifford gate (`Rz`/`Rx`/`Ry`).
pub fn conjugate_all_by_gate(frame: &mut PauliFrame, gate: &Gate) {
    match *gate {
        Gate::H(q) => frame.conj_h(q),
        Gate::S(q) => frame.conj_s(q),
        Gate::Sdg(q) => frame.conj_sdg(q),
        Gate::X(q) => frame.conj_x(q),
        Gate::Y(q) => frame.conj_y(q),
        Gate::Z(q) => frame.conj_z(q),
        Gate::SqrtX(q) => frame.conj_sqrt_x(q),
        Gate::SqrtXdg(q) => frame.conj_sqrt_xdg(q),
        Gate::Cx { control, target } => frame.conj_cx(control, target),
        Gate::Cz { a, b } => frame.conj_cz(a, b),
        Gate::Swap { a, b } => frame.conj_swap(a, b),
        Gate::Rz { .. } | Gate::Rx { .. } | Gate::Ry { .. } => {
            panic!("cannot conjugate a Pauli by non-Clifford gate {gate}")
        }
    }
}

/// Conjugates every Pauli in a [`PauliFrame`] by a whole Clifford circuit:
/// each row becomes `C·P·C†` for `C = g_k ⋯ g_1` (gates in circuit order).
///
/// One call per gate into [`conjugate_all_by_gate`], so the whole replay is
/// `O(gates · rows/64)` word operations. This is the conjugation direction
/// measurement needs: appending `C` to a circuit and measuring `C·P·C†`
/// in the computational basis estimates `⟨P⟩` of the pre-`C` state.
///
/// # Panics
///
/// Panics if the circuit contains a non-Clifford gate (`Rz`/`Rx`/`Ry`) or
/// acts on a different register size than the frame.
pub fn conjugate_all_by_circuit(frame: &mut PauliFrame, circuit: &Circuit) {
    assert_eq!(
        frame.num_qubits(),
        circuit.num_qubits(),
        "circuit and frame register sizes must match"
    );
    for gate in circuit.gates() {
        conjugate_all_by_gate(frame, gate);
    }
}

/// Conjugates a signed Pauli by the *inverse* of a gate: returns `g†·P·g`.
///
/// # Panics
///
/// Panics if `gate` is not a Clifford gate.
#[must_use]
pub fn conjugate_pauli_by_gate_inverse(pauli: &SignedPauli, gate: &Gate) -> SignedPauli {
    conjugate_pauli_by_gate(pauli, &gate.inverse())
}

/// Single-qubit conjugation rule: returns `(g·P·g†, sign_flips)`.
fn conjugate_single(gate: &Gate, op: PauliOp) -> (PauliOp, bool) {
    use PauliOp::*;
    match gate {
        Gate::H(_) => match op {
            I => (I, false),
            X => (Z, false),
            Y => (Y, true),
            Z => (X, false),
        },
        Gate::S(_) => match op {
            I => (I, false),
            X => (Y, false),
            Y => (X, true),
            Z => (Z, false),
        },
        Gate::Sdg(_) => match op {
            I => (I, false),
            X => (Y, true),
            Y => (X, false),
            Z => (Z, false),
        },
        Gate::X(_) => (op, matches!(op, Y | Z)),
        Gate::Y(_) => (op, matches!(op, X | Z)),
        Gate::Z(_) => (op, matches!(op, X | Y)),
        Gate::SqrtX(_) => match op {
            I => (I, false),
            X => (X, false),
            Y => (Z, false),
            Z => (Y, true),
        },
        Gate::SqrtXdg(_) => match op {
            I => (I, false),
            X => (X, false),
            Y => (Z, true),
            Z => (Y, false),
        },
        _ => unreachable!("conjugate_single called with multi-qubit or non-Clifford gate"),
    }
}

/// CNOT conjugation rule on the (control, target) operator pair:
/// returns `(new_control, new_target, sign_flips)`.
fn conjugate_cx(control: PauliOp, target: PauliOp) -> (PauliOp, PauliOp, bool) {
    let (xc, zc) = control.xz();
    let (xt, zt) = target.xz();
    // CX: X_c → X_c X_t, Z_t → Z_c Z_t, X_t → X_t, Z_c → Z_c.
    let new_xc = xc;
    let new_zc = zc ^ zt;
    let new_xt = xt ^ xc;
    let new_zt = zt;
    // Aaronson–Gottesman sign rule (using pre-update values).
    let flip = xc && zt && (xt == zc);
    (
        PauliOp::from_xz(new_xc, new_zc),
        PauliOp::from_xz(new_xt, new_zt),
        flip,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclear_pauli::PauliString;

    fn conj(gate: Gate, input: &str) -> String {
        let sp: SignedPauli = input.parse().unwrap();
        conjugate_pauli_by_gate(&sp, &gate).to_string()
    }

    #[test]
    fn hadamard_rules() {
        assert_eq!(conj(Gate::H(0), "X"), "+Z");
        assert_eq!(conj(Gate::H(0), "Z"), "+X");
        assert_eq!(conj(Gate::H(0), "Y"), "-Y");
        assert_eq!(conj(Gate::H(0), "I"), "+I");
    }

    #[test]
    fn phase_gate_rules() {
        assert_eq!(conj(Gate::S(0), "X"), "+Y");
        assert_eq!(conj(Gate::S(0), "Y"), "-X");
        assert_eq!(conj(Gate::S(0), "Z"), "+Z");
        assert_eq!(conj(Gate::Sdg(0), "X"), "-Y");
        assert_eq!(conj(Gate::Sdg(0), "Y"), "+X");
    }

    #[test]
    fn pauli_gate_rules_only_touch_signs() {
        assert_eq!(conj(Gate::X(0), "Z"), "-Z");
        assert_eq!(conj(Gate::X(0), "X"), "+X");
        assert_eq!(conj(Gate::Z(0), "X"), "-X");
        assert_eq!(conj(Gate::Y(0), "X"), "-X");
        assert_eq!(conj(Gate::Y(0), "Z"), "-Z");
        assert_eq!(conj(Gate::Y(0), "Y"), "+Y");
    }

    #[test]
    fn sqrt_x_rules() {
        assert_eq!(conj(Gate::SqrtX(0), "Z"), "-Y");
        assert_eq!(conj(Gate::SqrtX(0), "Y"), "+Z");
        assert_eq!(conj(Gate::SqrtX(0), "X"), "+X");
        assert_eq!(conj(Gate::SqrtXdg(0), "Z"), "+Y");
        assert_eq!(conj(Gate::SqrtXdg(0), "Y"), "-Z");
    }

    /// The paper's Table I (sign-free): new Pauli after commuting a CNOT with
    /// a two-qubit Pauli, control on the left.
    #[test]
    fn cnot_rules_match_paper_table_i() {
        let cx = Gate::Cx {
            control: 0,
            target: 1,
        };
        let table = [
            ("II", "II"),
            ("IX", "IX"),
            ("IY", "ZY"),
            ("IZ", "ZZ"),
            ("XI", "XX"),
            ("XX", "XI"),
            ("XY", "YZ"),
            ("XZ", "YY"),
            ("YI", "YX"),
            ("YX", "YI"),
            ("YY", "XZ"),
            ("YZ", "XY"),
            ("ZI", "ZI"),
            ("ZX", "ZX"),
            ("ZY", "IY"),
            ("ZZ", "IZ"),
        ];
        for (input, want) in table {
            let sp: SignedPauli = input.parse().unwrap();
            let out = conjugate_pauli_by_gate(&sp, &cx);
            assert_eq!(
                out.pauli().to_string(),
                want,
                "CX conjugation of {input} should give {want}"
            );
        }
    }

    /// Conjugation must preserve commutation relations and weight-parity of
    /// the anticommutation structure: verify the CX signs are self-consistent
    /// by checking that conjugation is a group automorphism on products.
    #[test]
    fn cx_conjugation_is_multiplicative() {
        let cx = Gate::Cx {
            control: 0,
            target: 1,
        };
        let strings = [
            "II", "IX", "IY", "IZ", "XI", "XX", "XY", "XZ", "YI", "YX", "YY", "YZ", "ZI", "ZX",
            "ZY", "ZZ",
        ];
        for a in strings {
            for b in strings {
                let pa: PauliString = a.parse().unwrap();
                let pb: PauliString = b.parse().unwrap();
                if !pa.commutes_with(&pb) {
                    continue; // product would be non-Hermitian
                }
                let sa = SignedPauli::positive(pa.clone());
                let sb = SignedPauli::positive(pb.clone());
                let lhs = conjugate_pauli_by_gate(&sa.mul(&sb), &cx);
                let rhs = conjugate_pauli_by_gate(&sa, &cx).mul(&conjugate_pauli_by_gate(&sb, &cx));
                assert_eq!(lhs, rhs, "conjugation must distribute over {a}·{b}");
            }
        }
    }

    #[test]
    fn swap_exchanges_operators() {
        assert_eq!(conj(Gate::Swap { a: 0, b: 1 }, "XZ"), "+ZX");
        assert_eq!(conj(Gate::Swap { a: 0, b: 1 }, "-YI"), "-IY");
    }

    #[test]
    fn cz_rules() {
        let cz = Gate::Cz { a: 0, b: 1 };
        assert_eq!(conj(cz, "XI"), "+XZ");
        assert_eq!(conj(cz, "IX"), "+ZX");
        assert_eq!(conj(cz, "ZI"), "+ZI");
        assert_eq!(conj(cz, "XX"), "+YY");
    }

    #[test]
    fn inverse_gate_roundtrip() {
        let gates = [
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::SqrtX(0),
            Gate::Cx {
                control: 0,
                target: 1,
            },
            Gate::Cz { a: 0, b: 1 },
            Gate::Swap { a: 0, b: 1 },
        ];
        for gate in gates {
            for s in ["XY", "-ZI", "YZ", "IX"] {
                let sp: SignedPauli = s.parse().unwrap();
                let roundtrip =
                    conjugate_pauli_by_gate_inverse(&conjugate_pauli_by_gate(&sp, &gate), &gate);
                assert_eq!(
                    roundtrip, sp,
                    "g† g conjugation must be the identity for {gate}"
                );
            }
        }
    }

    /// The batched frame conjugation must agree with the scalar rule on
    /// every two-qubit signed Pauli for every Clifford gate.
    #[test]
    fn batched_conjugation_matches_scalar_rules() {
        let gates = [
            Gate::H(0),
            Gate::H(1),
            Gate::S(0),
            Gate::Sdg(1),
            Gate::X(0),
            Gate::Y(1),
            Gate::Z(0),
            Gate::SqrtX(1),
            Gate::SqrtXdg(0),
            Gate::Cx {
                control: 0,
                target: 1,
            },
            Gate::Cx {
                control: 1,
                target: 0,
            },
            Gate::Cz { a: 0, b: 1 },
            Gate::Swap { a: 0, b: 1 },
        ];
        // All 32 signed two-qubit Paulis.
        let mut rows: Vec<SignedPauli> = Vec::new();
        for a in "IXYZ".chars() {
            for b in "IXYZ".chars() {
                for sign in ["+", "-"] {
                    rows.push(format!("{sign}{a}{b}").parse().unwrap());
                }
            }
        }
        for gate in gates {
            let mut frame = PauliFrame::from_signed(2, &rows);
            conjugate_all_by_gate(&mut frame, &gate);
            for (i, row) in rows.iter().enumerate() {
                let scalar = conjugate_pauli_by_gate(row, &gate);
                assert_eq!(frame.get(i), scalar, "gate {gate} on {row}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-Clifford")]
    fn batched_rotation_gates_are_rejected() {
        let mut frame = PauliFrame::identities(1, 1);
        conjugate_all_by_gate(
            &mut frame,
            &Gate::Rx {
                qubit: 0,
                angle: 0.5,
            },
        );
    }

    #[test]
    #[should_panic(expected = "non-Clifford")]
    fn rotation_gates_are_rejected() {
        let sp: SignedPauli = "X".parse().unwrap();
        let _ = conjugate_pauli_by_gate(
            &sp,
            &Gate::Rz {
                qubit: 0,
                angle: 0.1,
            },
        );
    }
}

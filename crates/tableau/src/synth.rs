//! Synthesis of a Clifford tableau back into a gate-level circuit.
//!
//! This is the classical Aaronson–Gottesman-style sweep: the tableau is
//! reduced to the identity one qubit at a time by post-composing elementary
//! Clifford conjugations, and the recorded gates (inverted, in reverse order)
//! form a circuit implementing the original unitary up to global phase.
//!
//! The synthesized gate count is O(n²) in the worst case. It is used by the
//! Rustiq-like baseline (which must pay for its terminal Clifford in gates)
//! and by tests that round-trip random Cliffords.

use quclear_circuit::{Circuit, Gate};
use quclear_pauli::PauliOp;

use crate::CliffordTableau;

/// Synthesizes a circuit implementing the Clifford unitary described by the
/// tableau (up to global phase).
///
/// The returned circuit `C` satisfies
/// `CliffordTableau::from_circuit(&C) == *tableau`.
///
/// # Examples
///
/// ```
/// use quclear_circuit::Circuit;
/// use quclear_tableau::{synthesize_clifford, CliffordTableau};
///
/// let mut qc = Circuit::new(3);
/// qc.h(0);
/// qc.cx(0, 1);
/// qc.s(2);
/// qc.cx(2, 1);
/// let tableau = CliffordTableau::from_circuit(&qc);
/// let resynthesized = synthesize_clifford(&tableau);
/// assert_eq!(CliffordTableau::from_circuit(&resynthesized), tableau);
/// ```
#[must_use]
pub fn synthesize_clifford(tableau: &CliffordTableau) -> Circuit {
    let n = tableau.num_qubits();
    let mut work = tableau.clone();
    // Gates h_1, …, h_k such that conj_{h_k} ∘ … ∘ conj_{h_1} ∘ M = id.
    let mut recorded: Vec<Gate> = Vec::new();

    let push = |work: &mut CliffordTableau, recorded: &mut Vec<Gate>, gate: Gate| {
        work.then_gate(&gate);
        recorded.push(gate);
    };

    for i in 0..n {
        // --- Step 1: reduce the image of X_i to exactly X_i. ------------
        {
            // The image has support only on qubits ≥ i (earlier qubits are
            // already fixed and commutation forces triviality there).
            let row = work.x_image(i);
            let ops: Vec<PauliOp> = (0..n).map(|q| row.pauli().op(q)).collect();
            // Ensure an X (or Y) component exists at some qubit ≥ i.
            let has_x = (i..n).find(|&q| matches!(ops[q], PauliOp::X | PauliOp::Y));
            if has_x.is_none() {
                let j = (i..n)
                    .find(|&q| ops[q] == PauliOp::Z)
                    .expect("X image cannot be the identity");
                push(&mut work, &mut recorded, Gate::H(j));
            }
        }
        {
            // Move an X component onto qubit i if necessary.
            let row = work.x_image(i);
            let x_at_i = matches!(row.pauli().op(i), PauliOp::X | PauliOp::Y);
            if !x_at_i {
                let j = (i + 1..n)
                    .find(|&q| matches!(row.pauli().op(q), PauliOp::X | PauliOp::Y))
                    .expect("an X component must exist after the Hadamard fix");
                push(
                    &mut work,
                    &mut recorded,
                    Gate::Cx {
                        control: j,
                        target: i,
                    },
                );
            }
        }
        {
            // Clear X components on qubits j > i.
            let row = work.x_image(i);
            for j in i + 1..n {
                if matches!(row.pauli().op(j), PauliOp::X | PauliOp::Y) {
                    push(
                        &mut work,
                        &mut recorded,
                        Gate::Cx {
                            control: i,
                            target: j,
                        },
                    );
                }
            }
        }
        {
            // Turn a Y at qubit i into an X.
            if work.x_image(i).pauli().op(i) == PauliOp::Y {
                push(&mut work, &mut recorded, Gate::S(i));
            }
        }
        {
            // Clear residual Z components on qubits j > i (row is X_i · ∏ Z_j).
            let row = work.x_image(i);
            let z_positions: Vec<usize> = (i + 1..n)
                .filter(|&j| row.pauli().op(j) == PauliOp::Z)
                .collect();
            if !z_positions.is_empty() {
                // Temporarily make qubit i carry a Z component (X→Y) so the
                // CX(j→i) trick can absorb the Z's, then undo it.
                push(&mut work, &mut recorded, Gate::Sdg(i));
                for j in z_positions {
                    push(
                        &mut work,
                        &mut recorded,
                        Gate::Cx {
                            control: j,
                            target: i,
                        },
                    );
                }
                push(&mut work, &mut recorded, Gate::S(i));
                if work.x_image(i).pauli().op(i) == PauliOp::Y {
                    push(&mut work, &mut recorded, Gate::S(i));
                }
            }
        }
        debug_assert_eq!(work.x_image(i).pauli().op(i), PauliOp::X);
        debug_assert_eq!(work.x_image(i).weight(), 1);

        // --- Step 2: reduce the image of Z_i to exactly Z_i, using only
        // operations that leave X_i fixed: gates on qubits > i, CX(j→i), and
        // √X(i). --------------------------------------------------------
        {
            // Clear X components on qubits j > i by funnelling them into one
            // qubit and converting to Z.
            loop {
                let row = work.z_image(i);
                let xs: Vec<usize> = (i + 1..n)
                    .filter(|&j| matches!(row.pauli().op(j), PauliOp::X | PauliOp::Y))
                    .collect();
                if xs.is_empty() {
                    break;
                }
                let j0 = xs[0];
                for &j in &xs[1..] {
                    push(
                        &mut work,
                        &mut recorded,
                        Gate::Cx {
                            control: j0,
                            target: j,
                        },
                    );
                }
                if work.z_image(i).pauli().op(j0) == PauliOp::Y {
                    push(&mut work, &mut recorded, Gate::S(j0));
                }
                // j0 now carries a plain X; convert to Z and absorb into qubit i.
                push(&mut work, &mut recorded, Gate::H(j0));
                push(
                    &mut work,
                    &mut recorded,
                    Gate::Cx {
                        control: j0,
                        target: i,
                    },
                );
            }
        }
        {
            // Clear plain Z components on qubits j > i via CX(j→i)
            // (the Z image always has a Z component at qubit i).
            let row = work.z_image(i);
            for j in i + 1..n {
                if row.pauli().op(j) == PauliOp::Z {
                    push(
                        &mut work,
                        &mut recorded,
                        Gate::Cx {
                            control: j,
                            target: i,
                        },
                    );
                }
            }
        }
        {
            // A residual Y at qubit i becomes Z via √X (which fixes X_i).
            if work.z_image(i).pauli().op(i) == PauliOp::Y {
                push(&mut work, &mut recorded, Gate::SqrtX(i));
            }
        }
        debug_assert_eq!(work.z_image(i).pauli().op(i), PauliOp::Z);
        debug_assert_eq!(work.z_image(i).weight(), 1);
        debug_assert_eq!(work.x_image(i).pauli().op(i), PauliOp::X);

        // --- Step 3: fix signs. ------------------------------------------
        if work.x_image(i).is_negative() {
            push(&mut work, &mut recorded, Gate::Z(i));
        }
        if work.z_image(i).is_negative() {
            push(&mut work, &mut recorded, Gate::X(i));
        }
    }
    debug_assert!(work.is_identity());

    // conj_{h_k…h_1} ∘ M = id  ⇒  U = h_1† … h_k†, i.e. time order h_k†, …, h_1†.
    let gates: Vec<Gate> = recorded.iter().rev().map(Gate::inverse).collect();
    Circuit::from_gates(n, gates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_clifford_circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthesizes_identity_as_empty_or_trivial() {
        let t = CliffordTableau::identity(4);
        let c = synthesize_clifford(&t);
        assert!(CliffordTableau::from_circuit(&c).is_identity());
    }

    #[test]
    fn roundtrips_simple_circuits() {
        let mut qc = Circuit::new(2);
        qc.h(0);
        qc.cx(0, 1);
        let t = CliffordTableau::from_circuit(&qc);
        let c = synthesize_clifford(&t);
        assert_eq!(CliffordTableau::from_circuit(&c), t);
    }

    #[test]
    fn roundtrips_random_cliffords() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 8] {
            for _ in 0..6 {
                let qc = random_clifford_circuit(n, 4 * n + 5, &mut rng);
                let t = CliffordTableau::from_circuit(&qc);
                let synth = synthesize_clifford(&t);
                assert_eq!(
                    CliffordTableau::from_circuit(&synth),
                    t,
                    "synthesis must reproduce the tableau for n={n}"
                );
            }
        }
    }

    #[test]
    fn synthesized_gate_count_is_quadratic_at_most() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10;
        let qc = random_clifford_circuit(n, 200, &mut rng);
        let t = CliffordTableau::from_circuit(&qc);
        let synth = synthesize_clifford(&t);
        assert!(
            synth.len() <= 6 * n * n,
            "synthesized circuit unexpectedly large: {} gates",
            synth.len()
        );
    }
}

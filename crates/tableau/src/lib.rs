//! Clifford tableau algebra for the QuCLEAR reproduction.
//!
//! Clifford circuits stabilize the Pauli group: conjugating a Pauli string by
//! a Clifford unitary yields another (signed) Pauli string, and the whole
//! unitary can be represented in `4n² + O(n)` bits by tracking the images of
//! the generators — the stabilizer-tableau formalism of Aaronson and
//! Gottesman. QuCLEAR relies on this for both of its optimization steps:
//! Clifford Extraction updates every later Pauli rotation through the
//! extracted Clifford, and Clifford Absorption rewrites measurement
//! observables through it.
//!
//! This crate provides:
//!
//! * [`conjugate_pauli_by_gate`] — the per-gate conjugation rules,
//! * [`CliffordTableau`] — the conjugation map with composition, application
//!   and inversion,
//! * [`synthesize_clifford`] — Aaronson–Gottesman-style synthesis back to a
//!   gate-level circuit,
//! * [`random_clifford_circuit`] — random Cliffords for tests and benches.
//!
//! # Examples
//!
//! ```
//! use quclear_circuit::Circuit;
//! use quclear_tableau::CliffordTableau;
//!
//! // The paper's weak-commutation relation: e^{iP1 t}·U = U·e^{iP2 t} with
//! // P2 = U† P1 U. Here U = CNOT(0→1) and P1 = ZZ gives P2 = IZ.
//! let mut u = Circuit::new(2);
//! u.cx(0, 1);
//! let heisenberg = CliffordTableau::heisenberg_from_circuit(&u);
//! assert_eq!(heisenberg.apply(&"ZZ".parse()?).to_string(), "+IZ");
//! # Ok::<(), quclear_pauli::ParsePauliError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod random;
mod rules;
mod synth;
mod tableau;

pub use random::random_clifford_circuit;
pub use rules::{
    conjugate_all_by_circuit, conjugate_all_by_gate, conjugate_pauli_by_gate,
    conjugate_pauli_by_gate_inverse,
};
pub use synth::synthesize_clifford;
pub use tableau::CliffordTableau;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CliffordTableau>();
    }
}

//! Random Clifford circuits, used by tests and benchmarks.

use quclear_circuit::{Circuit, Gate};
use rand::Rng;

/// Generates a random Clifford circuit on `n` qubits with `num_gates` gates
/// drawn uniformly from {H, S, S†, √X, X, Z, CX, CZ, SWAP}.
///
/// Two-qubit gates pick a random ordered pair of distinct qubits. For `n == 1`
/// only single-qubit gates are produced.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let qc = quclear_tableau::random_clifford_circuit(4, 20, &mut rng);
/// assert_eq!(qc.len(), 20);
/// assert!(qc.is_clifford());
/// ```
#[must_use]
pub fn random_clifford_circuit<R: Rng + ?Sized>(
    n: usize,
    num_gates: usize,
    rng: &mut R,
) -> Circuit {
    assert!(n > 0, "cannot build a circuit on zero qubits");
    let mut circuit = Circuit::new(n);
    for _ in 0..num_gates {
        let kind = if n == 1 {
            rng.gen_range(0..6)
        } else {
            rng.gen_range(0..9)
        };
        let q = rng.gen_range(0..n);
        let gate = match kind {
            0 => Gate::H(q),
            1 => Gate::S(q),
            2 => Gate::Sdg(q),
            3 => Gate::SqrtX(q),
            4 => Gate::X(q),
            5 => Gate::Z(q),
            _ => {
                let mut other = rng.gen_range(0..n);
                while other == q {
                    other = rng.gen_range(0..n);
                }
                match kind {
                    6 => Gate::Cx {
                        control: q,
                        target: other,
                    },
                    7 => Gate::Cz { a: q, b: other },
                    _ => Gate::Swap { a: q, b: other },
                }
            }
        };
        circuit.push(gate);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_requested_length_and_stays_clifford() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = random_clifford_circuit(5, 40, &mut rng);
        assert_eq!(c.len(), 40);
        assert!(c.is_clifford());
        assert_eq!(c.num_qubits(), 5);
    }

    #[test]
    fn single_qubit_case_avoids_two_qubit_gates() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = random_clifford_circuit(1, 30, &mut rng);
        assert!(c.gates().iter().all(|g| !g.is_two_qubit()));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = random_clifford_circuit(4, 25, &mut StdRng::seed_from_u64(9));
        let b = random_clifford_circuit(4, 25, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

//! The Clifford tableau: a compact representation of a Clifford conjugation
//! map.

use std::fmt;

use quclear_circuit::{Circuit, Gate};
use quclear_pauli::{PauliOp, PauliString, SignedPauli};

use crate::rules::conjugate_pauli_by_gate;

/// A Clifford unitary `U` represented by the images of the Pauli generators
/// under conjugation: `U X_i U†` and `U Z_i U†` (the stabilizer-tableau
/// formalism of Aaronson and Gottesman, 4n² + O(n) bits).
///
/// The tableau *is* the map `P ↦ U·P·U†`; [`CliffordTableau::apply`] evaluates
/// it on arbitrary Pauli strings, [`CliffordTableau::then_gate`] composes it
/// with one more gate (`P ↦ g·M(P)·g†`), and [`CliffordTableau::inverse`]
/// produces the map of `U†`. This is exactly the machinery the QuCLEAR paper
/// uses to update Pauli strings and observables during Clifford Extraction and
/// Absorption.
///
/// # Examples
///
/// ```
/// use quclear_circuit::Circuit;
/// use quclear_tableau::CliffordTableau;
///
/// // U = CNOT(0→1); then U·(Z⊗Z)·U† = I⊗Z.
/// let mut qc = Circuit::new(2);
/// qc.cx(0, 1);
/// let tableau = CliffordTableau::from_circuit(&qc);
/// let image = tableau.apply(&"ZZ".parse()?);
/// assert_eq!(image.to_string(), "+IZ");
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CliffordTableau {
    n: usize,
    /// Image of `X_i` under the map.
    x_rows: Vec<SignedPauli>,
    /// Image of `Z_i` under the map.
    z_rows: Vec<SignedPauli>,
}

impl CliffordTableau {
    /// The identity map on `n` qubits.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let x_rows = (0..n)
            .map(|q| SignedPauli::positive(PauliString::single(n, q, PauliOp::X)))
            .collect();
        let z_rows = (0..n)
            .map(|q| SignedPauli::positive(PauliString::single(n, q, PauliOp::Z)))
            .collect();
        CliffordTableau { n, x_rows, z_rows }
    }

    /// Builds the map `P ↦ U·P·U†` of the Clifford circuit `U`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-Clifford gates.
    #[must_use]
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut tableau = CliffordTableau::identity(circuit.num_qubits());
        for gate in circuit.gates() {
            tableau.then_gate(gate);
        }
        tableau
    }

    /// Builds the *Heisenberg* map `P ↦ U†·P·U` of the Clifford circuit `U`.
    ///
    /// This is the direction the QuCLEAR paper uses for updating Pauli strings
    /// and observables (`P₂ = U†·P₁·U`).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-Clifford gates.
    #[must_use]
    pub fn heisenberg_from_circuit(circuit: &Circuit) -> Self {
        CliffordTableau::from_circuit(&circuit.inverse())
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The image of `X_q` under the map.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    #[must_use]
    pub fn x_image(&self, q: usize) -> &SignedPauli {
        &self.x_rows[q]
    }

    /// The image of `Z_q` under the map.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    #[must_use]
    pub fn z_image(&self, q: usize) -> &SignedPauli {
        &self.z_rows[q]
    }

    /// Post-composes the map with conjugation by one gate:
    /// `M'(P) = g·M(P)·g†`.
    ///
    /// Building a tableau from a circuit is exactly folding this over the
    /// gates in time order.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not Clifford.
    pub fn then_gate(&mut self, gate: &Gate) {
        for row in self.x_rows.iter_mut().chain(self.z_rows.iter_mut()) {
            *row = conjugate_pauli_by_gate(row, gate);
        }
    }

    /// Post-composes with conjugation by the *inverse* of a gate:
    /// `M'(P) = g†·M(P)·g`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not Clifford.
    pub fn then_gate_inverse(&mut self, gate: &Gate) {
        self.then_gate(&gate.inverse());
    }

    /// Post-composes with every gate of a Clifford circuit in time order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-Clifford gates.
    pub fn then_circuit(&mut self, circuit: &Circuit) {
        for gate in circuit.gates() {
            self.then_gate(gate);
        }
    }

    /// Composes two maps: the result applies `self` first, then `other`
    /// (`(other ∘ self)(P) = other(self(P))`).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn then(&self, other: &CliffordTableau) -> CliffordTableau {
        assert_eq!(
            self.n, other.n,
            "qubit count mismatch in tableau composition"
        );
        let x_rows = self.x_rows.iter().map(|r| other.apply_signed(r)).collect();
        let z_rows = self.z_rows.iter().map(|r| other.apply_signed(r)).collect();
        CliffordTableau {
            n: self.n,
            x_rows,
            z_rows,
        }
    }

    /// Applies the map to a phase-free Pauli string, returning `±P'`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn apply(&self, pauli: &PauliString) -> SignedPauli {
        assert_eq!(
            pauli.num_qubits(),
            self.n,
            "qubit count mismatch in tableau application"
        );
        // P = i^{#Y} · ∏_q X_q^{x_q} Z_q^{z_q}; conjugation is applied to the
        // literal X/Z factors and the phase bookkeeping restores ±1.
        let mut acc = PauliString::identity(self.n);
        let mut phase: u8 = 0; // exponent of i
        let mut y_count: usize = 0;
        for q in 0..self.n {
            let (x, z) = pauli.op(q).xz();
            if x && z {
                y_count += 1;
            }
            if x {
                let row = &self.x_rows[q];
                let (next, k) = acc.mul(row.pauli());
                phase = (phase + k + if row.is_negative() { 2 } else { 0 }) % 4;
                acc = next;
            }
            if z {
                let row = &self.z_rows[q];
                let (next, k) = acc.mul(row.pauli());
                phase = (phase + k + if row.is_negative() { 2 } else { 0 }) % 4;
                acc = next;
            }
        }
        // The decomposition of P into literal X/Z factors contributes
        // i^{#Y}; likewise the reassembled result absorbs i^{-#Y(result)}
        // automatically through the multiplication phases above.
        let total = (phase + (y_count % 4) as u8) % 4;
        assert!(
            total.is_multiple_of(2),
            "Clifford conjugation produced imaginary phase i^{total}; tableau is corrupt"
        );
        SignedPauli::new(acc, total == 2)
    }

    /// Applies the map to a signed Pauli.
    #[must_use]
    pub fn apply_signed(&self, pauli: &SignedPauli) -> SignedPauli {
        let result = self.apply(pauli.pauli());
        if pauli.is_negative() {
            -result
        } else {
            result
        }
    }

    /// Returns `true` if the map is the identity (all generators map to
    /// themselves with positive sign).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        (0..self.n).all(|q| {
            self.x_rows[q] == SignedPauli::positive(PauliString::single(self.n, q, PauliOp::X))
                && self.z_rows[q]
                    == SignedPauli::positive(PauliString::single(self.n, q, PauliOp::Z))
        })
    }

    /// The inverse map (the tableau of `U†` if `self` is the tableau of `U`).
    ///
    /// Computed by inverting the symplectic (GF(2)) matrix of the map and
    /// fixing signs so that `self.apply(inverse.apply(P)) = P`.
    #[must_use]
    pub fn inverse(&self) -> CliffordTableau {
        let n = self.n;
        // Build the 2n × 2n GF(2) matrix A whose column j is the (x|z) vector
        // of the image of generator j (generators ordered X_0..X_{n-1},
        // Z_0..Z_{n-1}), then invert it to find generator preimages.
        let dim = 2 * n;
        let column = |row: &SignedPauli| -> Vec<bool> {
            let mut v = vec![false; dim];
            for q in 0..n {
                let (x, z) = row.pauli().op(q).xz();
                v[q] = x;
                v[n + q] = z;
            }
            v
        };
        // Augmented matrix [A | I], columns indexed by generator.
        let mut a: Vec<Vec<bool>> = vec![vec![false; dim]; dim];
        for j in 0..n {
            let cx = column(&self.x_rows[j]);
            let cz = column(&self.z_rows[j]);
            for i in 0..dim {
                a[i][j] = cx[i];
                a[i][n + j] = cz[i];
            }
        }
        let mut inv: Vec<Vec<bool>> = (0..dim)
            .map(|i| (0..dim).map(|j| i == j).collect())
            .collect();
        // Gauss–Jordan elimination over GF(2).
        for col in 0..dim {
            let pivot = (col..dim)
                .find(|&r| a[r][col])
                .expect("Clifford tableau matrix must be invertible");
            a.swap(col, pivot);
            inv.swap(col, pivot);
            for r in 0..dim {
                if r != col && a[r][col] {
                    for c in 0..dim {
                        a[r][c] ^= a[col][c];
                        inv[r][c] ^= inv[col][c];
                    }
                }
            }
        }
        // Row i of `inv` now expresses basis vector e_i in terms of the
        // original generator images; equivalently, column j of `inv` gives the
        // preimage of generator j.
        let preimage = |j: usize| -> PauliString {
            let mut x = quclear_pauli::BitVec::zeros(n);
            let mut z = quclear_pauli::BitVec::zeros(n);
            for q in 0..n {
                // Coefficient of X_q generator (index q) and Z_q (index n+q)
                // in the preimage of generator j.
                if inv[q][j] {
                    x.set(q, true);
                }
                if inv[n + q][j] {
                    z.set(q, true);
                }
            }
            PauliString::from_xz(x, z)
        };
        let mut x_rows = Vec::with_capacity(n);
        let mut z_rows = Vec::with_capacity(n);
        for q in 0..n {
            let px = preimage(q);
            let sign = self.apply(&px).is_negative();
            x_rows.push(SignedPauli::new(px, sign));
            let pz = preimage(n + q);
            let sign = self.apply(&pz).is_negative();
            z_rows.push(SignedPauli::new(pz, sign));
        }
        CliffordTableau { n, x_rows, z_rows }
    }
}

impl fmt::Debug for CliffordTableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CliffordTableau on {} qubits:", self.n)?;
        for q in 0..self.n {
            writeln!(f, "  X_{q} -> {}", self.x_rows[q])?;
        }
        for q in 0..self.n {
            writeln!(f, "  Z_{q} -> {}", self.z_rows[q])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx01() -> Circuit {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c
    }

    #[test]
    fn identity_tableau_is_identity() {
        let t = CliffordTableau::identity(3);
        assert!(t.is_identity());
        let p: PauliString = "XYZ".parse().unwrap();
        assert_eq!(t.apply(&p), SignedPauli::positive(p));
    }

    #[test]
    fn cnot_tableau_matches_rules() {
        let t = CliffordTableau::from_circuit(&cx01());
        assert_eq!(t.apply(&"ZZ".parse().unwrap()).to_string(), "+IZ");
        assert_eq!(t.apply(&"XX".parse().unwrap()).to_string(), "+XI");
        assert_eq!(t.apply(&"XZ".parse().unwrap()).to_string(), "-YY");
        assert_eq!(t.apply(&"YY".parse().unwrap()).to_string(), "-XZ");
    }

    #[test]
    fn bell_circuit_stabilizers() {
        // H(0); CX(0,1) maps Z0 -> XX and Z1 -> ZZ: the Bell stabilizers.
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let t = CliffordTableau::from_circuit(&c);
        assert_eq!(t.apply(&"ZI".parse().unwrap()).to_string(), "+XX");
        assert_eq!(t.apply(&"IZ".parse().unwrap()).to_string(), "+ZZ");
        assert_eq!(t.apply(&"XI".parse().unwrap()).to_string(), "+ZI");
    }

    #[test]
    fn heisenberg_is_inverse_direction() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.s(1);
        c.cx(0, 1);
        let forward = CliffordTableau::from_circuit(&c);
        let heisenberg = CliffordTableau::heisenberg_from_circuit(&c);
        for s in ["XI", "IZ", "YY", "ZX"] {
            let p: PauliString = s.parse().unwrap();
            let roundtrip = heisenberg.apply_signed(&forward.apply(&p));
            assert_eq!(
                roundtrip,
                SignedPauli::positive(p),
                "U†(U P U†)U must be P for {s}"
            );
        }
    }

    #[test]
    fn composition_matches_circuit_concatenation() {
        let mut c1 = Circuit::new(3);
        c1.h(0);
        c1.cx(0, 1);
        let mut c2 = Circuit::new(3);
        c2.s(1);
        c2.cx(1, 2);
        let t1 = CliffordTableau::from_circuit(&c1);
        let t2 = CliffordTableau::from_circuit(&c2);
        let mut both = c1.clone();
        both.append(&c2);
        let t_both = CliffordTableau::from_circuit(&both);
        assert_eq!(t1.then(&t2), t_both);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.s(2);
        c.cx(2, 3);
        c.cx(1, 2);
        c.sdg(3);
        c.h(3);
        let t = CliffordTableau::from_circuit(&c);
        let inv = t.inverse();
        assert!(t.then(&inv).is_identity());
        assert!(inv.then(&t).is_identity());
        // And it matches the tableau of the inverse circuit.
        assert_eq!(inv, CliffordTableau::from_circuit(&c.inverse()));
    }

    #[test]
    fn apply_preserves_commutation() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.s(1);
        c.cx(1, 2);
        let t = CliffordTableau::from_circuit(&c);
        let pairs = [("XXI", "ZZI"), ("XYZ", "YZX"), ("ZII", "XII")];
        for (a, b) in pairs {
            let pa: PauliString = a.parse().unwrap();
            let pb: PauliString = b.parse().unwrap();
            let ia = t.apply(&pa);
            let ib = t.apply(&pb);
            assert_eq!(
                pa.commutes_with(&pb),
                ia.pauli().commutes_with(ib.pauli()),
                "conjugation must preserve (anti)commutation of {a}, {b}"
            );
        }
    }

    #[test]
    fn signed_application_respects_input_sign() {
        let t = CliffordTableau::from_circuit(&cx01());
        let sp: SignedPauli = "-ZZ".parse().unwrap();
        assert_eq!(t.apply_signed(&sp).to_string(), "-IZ");
    }

    #[test]
    fn swap_and_cz_gates_compose_correctly() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        c.cz(0, 1);
        let t = CliffordTableau::from_circuit(&c);
        // Swap then CZ: X0 -> X1 -> X1 Z0.
        assert_eq!(t.apply(&"XI".parse().unwrap()).to_string(), "+ZX");
    }

    #[test]
    #[should_panic(expected = "qubit count mismatch")]
    fn mismatched_apply_panics() {
        let t = CliffordTableau::identity(2);
        let _ = t.apply(&"XXX".parse().unwrap());
    }
}

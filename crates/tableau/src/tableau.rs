//! The Clifford tableau: a compact representation of a Clifford conjugation
//! map, stored as word-packed bit-planes.

use std::fmt;

use quclear_circuit::{Circuit, Gate};
use quclear_pauli::{BitVec, PauliFrame, PauliOp, PauliString, SignedPauli};
use rayon::prelude::*;
use simd::Lane;

use crate::rules::conjugate_all_by_gate;

/// Lane width of the phase-tracking frame-sweep kernels. These keep seven
/// or more planes live per loop iteration, so lanes wider than one vector
/// register spill to the stack and run *slower* than scalar. With AVX2 a
/// 4-word lane is exactly one ymm register (7 live lanes fit in 16), so the
/// workspace-wide `simd::LANE_WORDS` knob applies up to 4; on narrower ISAs
/// (SSE2/NEON baseline) these kernels stay scalar and the wide lanes are
/// reserved for the ≤3-stream kernels, where they measure ~2.5× faster.
const LW: usize = if cfg!(target_feature = "avx2") {
    if simd::LANE_WORDS < 4 {
        simd::LANE_WORDS
    } else {
        4
    }
} else {
    1
};

/// Minimum words of the batch dimension per parallel block of
/// [`CliffordTableau::apply_frame`]. Below this, a block's share of the
/// generator sweep is too small to amortize a thread spawn, so the sweep
/// stays sequential (128 words = 8192 batch rows per block).
const MIN_BLOCK_WORDS: usize = 128;

// --- lane kernels of the generator sweep -----------------------------------
//
// Each kernel multiplies one generator image literal into the accumulator
// planes of one qubit column for every selected row at once, fusing the
// 2-bit phase ripple add (i-exponent mod 4, planes `p1 p0`) with the literal
// XOR so each word of each plane is loaded and stored exactly once.
// `add2(d1 d0)` is: carry = p0 & d0; p0 ^= d0; p1 ^= d1 ^ carry.

/// X-factor multiply: `delta = za·(1 + 2·xa)` → `d0 = sel & oz`,
/// `d1 = d0 & ox`, then `ox ^= sel`.
fn mul_x_factor<const W: usize>(
    sel: &[u64],
    ox: &mut [u64],
    oz: &[u64],
    p0: &mut [u64],
    p1: &mut [u64],
) {
    let len = sel.len();
    let mut i = 0;
    while i + W <= len {
        let lsel = Lane::<W>::load(&sel[i..]);
        let lox = Lane::<W>::load(&ox[i..]);
        let loz = Lane::<W>::load(&oz[i..]);
        let lp0 = Lane::<W>::load(&p0[i..]);
        let lp1 = Lane::<W>::load(&p1[i..]);
        let d0 = lsel & loz;
        let carry = lp0 & d0;
        (lp0 ^ d0).store(&mut p0[i..]);
        (lp1 ^ (d0 & lox) ^ carry).store(&mut p1[i..]);
        (lox ^ lsel).store(&mut ox[i..]);
        i += W;
    }
    while i < len {
        let d0 = sel[i] & oz[i];
        let carry = p0[i] & d0;
        p0[i] ^= d0;
        p1[i] ^= (d0 & ox[i]) ^ carry;
        ox[i] ^= sel[i];
        i += 1;
    }
}

/// Z-factor multiply: `delta = xa·(3 − 2·za)` → `d0 = sel & ox`,
/// `d1 = d0 & !oz`, then `oz ^= sel`.
fn mul_z_factor<const W: usize>(
    sel: &[u64],
    ox: &[u64],
    oz: &mut [u64],
    p0: &mut [u64],
    p1: &mut [u64],
) {
    let len = sel.len();
    let mut i = 0;
    while i + W <= len {
        let lsel = Lane::<W>::load(&sel[i..]);
        let lox = Lane::<W>::load(&ox[i..]);
        let loz = Lane::<W>::load(&oz[i..]);
        let lp0 = Lane::<W>::load(&p0[i..]);
        let lp1 = Lane::<W>::load(&p1[i..]);
        let d0 = lsel & lox;
        let carry = lp0 & d0;
        (lp0 ^ d0).store(&mut p0[i..]);
        (lp1 ^ d0.andnot(loz) ^ carry).store(&mut p1[i..]);
        (loz ^ lsel).store(&mut oz[i..]);
        i += W;
    }
    while i < len {
        let d0 = sel[i] & ox[i];
        let carry = p0[i] & d0;
        p0[i] ^= d0;
        p1[i] ^= (d0 & !oz[i]) ^ carry;
        oz[i] ^= sel[i];
        i += 1;
    }
}

/// Y-factor multiply: `delta = 0,1,3,0` for `(xa,za) = 00,10,01,11` →
/// `d0 = sel & (ox ^ oz)`, `d1 = sel & oz & !ox`, then both planes flip.
fn mul_y_factor<const W: usize>(
    sel: &[u64],
    ox: &mut [u64],
    oz: &mut [u64],
    p0: &mut [u64],
    p1: &mut [u64],
) {
    let len = sel.len();
    let mut i = 0;
    while i + W <= len {
        let lsel = Lane::<W>::load(&sel[i..]);
        let lox = Lane::<W>::load(&ox[i..]);
        let loz = Lane::<W>::load(&oz[i..]);
        let lp0 = Lane::<W>::load(&p0[i..]);
        let lp1 = Lane::<W>::load(&p1[i..]);
        let d0 = lsel & (lox ^ loz);
        let carry = lp0 & d0;
        (lp0 ^ d0).store(&mut p0[i..]);
        (lp1 ^ (lsel & loz).andnot(lox) ^ carry).store(&mut p1[i..]);
        (lox ^ lsel).store(&mut ox[i..]);
        (loz ^ lsel).store(&mut oz[i..]);
        i += W;
    }
    while i < len {
        let d0 = sel[i] & (ox[i] ^ oz[i]);
        let carry = p0[i] & d0;
        p0[i] ^= d0;
        p1[i] ^= (sel[i] & oz[i] & !ox[i]) ^ carry;
        ox[i] ^= sel[i];
        oz[i] ^= sel[i];
        i += 1;
    }
}

/// Accumulator planes of one batch-word block of the frame sweep: the output
/// X/Z literal planes (flattened `n × block_words`) and the sign plane.
struct BlockImage {
    ox: Vec<u64>,
    oz: Vec<u64>,
    p1: Vec<u64>,
}

/// Seeds the phase planes with `i^{#Y}` per row: one `add2(01)` per qubit
/// whose X and Z planes are both set (`d0 = x & z`, `d1 = 0`).
fn add_y_counts<const W: usize>(x: &[u64], z: &[u64], p0: &mut [u64], p1: &mut [u64]) {
    let len = x.len();
    let mut i = 0;
    while i + W <= len {
        let d0 = Lane::<W>::load(&x[i..]) & Lane::<W>::load(&z[i..]);
        let lp0 = Lane::<W>::load(&p0[i..]);
        let lp1 = Lane::<W>::load(&p1[i..]);
        (lp0 ^ d0).store(&mut p0[i..]);
        (lp1 ^ (lp0 & d0)).store(&mut p1[i..]);
        i += W;
    }
    while i < len {
        let d0 = x[i] & z[i];
        p1[i] ^= p0[i] & d0;
        p0[i] ^= d0;
        i += 1;
    }
}

/// A Clifford unitary `U` represented by the images of the Pauli generators
/// under conjugation: `U X_i U†` and `U Z_i U†` (the stabilizer-tableau
/// formalism of Aaronson and Gottesman, 4n² + O(n) bits).
///
/// The tableau *is* the map `P ↦ U·P·U†`; [`CliffordTableau::apply`] evaluates
/// it on arbitrary Pauli strings, [`CliffordTableau::then_gate`] composes it
/// with one more gate (`P ↦ g·M(P)·g†`), and [`CliffordTableau::inverse`]
/// produces the map of `U†`. This is exactly the machinery the QuCLEAR paper
/// uses to update Pauli strings and observables during Clifford Extraction and
/// Absorption.
///
/// # Representation
///
/// The `2n` generator images are held in a column-major [`PauliFrame`]: rows
/// `0..n` are the images of `X_0..X_{n-1}`, rows `n..2n` the images of
/// `Z_0..Z_{n-1}`, and for each qubit there is one X bit-plane and one Z
/// bit-plane over the generators plus a shared sign plane. In this layout
/// [`CliffordTableau::then_gate`] is a handful of XOR/AND word operations on
/// the planes of the touched qubits, and [`CliffordTableau::apply`] is a
/// masked popcount sweep — no per-qubit branching and no allocation per gate.
///
/// # Examples
///
/// ```
/// use quclear_circuit::Circuit;
/// use quclear_tableau::CliffordTableau;
///
/// // U = CNOT(0→1); then U·(Z⊗Z)·U† = I⊗Z.
/// let mut qc = Circuit::new(2);
/// qc.cx(0, 1);
/// let tableau = CliffordTableau::from_circuit(&qc);
/// let image = tableau.apply(&"ZZ".parse()?);
/// assert_eq!(image.to_string(), "+IZ");
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CliffordTableau {
    n: usize,
    /// Generator images: rows `0..n` = `U X_i U†`, rows `n..2n` = `U Z_i U†`.
    frame: PauliFrame,
}

impl CliffordTableau {
    /// The identity map on `n` qubits.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut frame = PauliFrame::identities(n, 2 * n);
        for q in 0..n {
            frame.set_op(q, q, PauliOp::X);
            frame.set_op(n + q, q, PauliOp::Z);
        }
        CliffordTableau { n, frame }
    }

    /// Builds a tableau from explicit generator images.
    fn from_rows(n: usize, x_rows: &[SignedPauli], z_rows: &[SignedPauli]) -> Self {
        debug_assert_eq!(x_rows.len(), n);
        debug_assert_eq!(z_rows.len(), n);
        let mut frame = PauliFrame::identities(n, 2 * n);
        for (q, row) in x_rows.iter().enumerate() {
            frame.load_row(q, row.pauli(), row.is_negative());
        }
        for (q, row) in z_rows.iter().enumerate() {
            frame.load_row(n + q, row.pauli(), row.is_negative());
        }
        CliffordTableau { n, frame }
    }

    /// Builds a tableau directly from explicit generator images:
    /// `x_images[q]` is `U X_q U†` and `z_images[q]` is `U Z_q U†`.
    ///
    /// This is the constructor for passes that *compute* a Clifford map row
    /// by row instead of replaying a circuit — e.g. the lift pass, which
    /// maintains Heisenberg generator images incrementally. The caller is
    /// responsible for supplying a valid symplectic map; debug builds verify
    /// the generator commutation relations (`U X_i U†` anticommutes with
    /// `U Z_i U†` and commutes with every other image).
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths or any image acts on
    /// a different number of qubits. In debug builds, also panics when the
    /// images do not satisfy the generator commutation relations.
    ///
    /// # Examples
    ///
    /// ```
    /// use quclear_tableau::CliffordTableau;
    ///
    /// // The Hadamard map on one qubit: X ↦ Z, Z ↦ X.
    /// let h = CliffordTableau::from_generator_images(
    ///     &["Z".parse()?],
    ///     &["X".parse()?],
    /// );
    /// assert_eq!(h.apply(&"X".parse()?).to_string(), "+Z");
    /// # Ok::<(), quclear_pauli::ParsePauliError>(())
    /// ```
    #[must_use]
    pub fn from_generator_images(x_images: &[SignedPauli], z_images: &[SignedPauli]) -> Self {
        let n = x_images.len();
        assert_eq!(
            z_images.len(),
            n,
            "generator image counts mismatch: {} X rows vs {} Z rows",
            n,
            z_images.len()
        );
        for row in x_images.iter().chain(z_images) {
            assert_eq!(
                row.num_qubits(),
                n,
                "generator image acts on {} qubits, expected {n}",
                row.num_qubits()
            );
        }
        #[cfg(debug_assertions)]
        for i in 0..n {
            for j in 0..n {
                debug_assert_eq!(
                    x_images[i].commutes_with(&z_images[j]),
                    i != j,
                    "images of X_{i} and Z_{j} violate the generator commutation relations"
                );
                debug_assert!(
                    i == j || x_images[i].commutes_with(&x_images[j]),
                    "images of X_{i} and X_{j} must commute"
                );
                debug_assert!(
                    i == j || z_images[i].commutes_with(&z_images[j]),
                    "images of Z_{i} and Z_{j} must commute"
                );
            }
        }
        CliffordTableau::from_rows(n, x_images, z_images)
    }

    /// Builds the map `P ↦ U·P·U†` of the Clifford circuit `U`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-Clifford gates.
    #[must_use]
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut tableau = CliffordTableau::identity(circuit.num_qubits());
        for gate in circuit.gates() {
            tableau.then_gate(gate);
        }
        tableau
    }

    /// Builds the *Heisenberg* map `P ↦ U†·P·U` of the Clifford circuit `U`.
    ///
    /// This is the direction the QuCLEAR paper uses for updating Pauli strings
    /// and observables (`P₂ = U†·P₁·U`).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-Clifford gates.
    #[must_use]
    pub fn heisenberg_from_circuit(circuit: &Circuit) -> Self {
        CliffordTableau::from_circuit(&circuit.inverse())
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The image of `X_q` under the map.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    #[must_use]
    pub fn x_image(&self, q: usize) -> SignedPauli {
        assert!(q < self.n, "qubit {q} out of range {}", self.n);
        self.frame.get(q)
    }

    /// The image of `Z_q` under the map.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    #[must_use]
    pub fn z_image(&self, q: usize) -> SignedPauli {
        assert!(q < self.n, "qubit {q} out of range {}", self.n);
        self.frame.get(self.n + q)
    }

    /// Post-composes the map with conjugation by one gate:
    /// `M'(P) = g·M(P)·g†`.
    ///
    /// Building a tableau from a circuit is exactly folding this over the
    /// gates in time order. With the bit-plane layout this touches only the
    /// planes of the gate's qubits: `O(n/64)` words, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not Clifford.
    pub fn then_gate(&mut self, gate: &Gate) {
        conjugate_all_by_gate(&mut self.frame, gate);
    }

    /// Post-composes with conjugation by the *inverse* of a gate:
    /// `M'(P) = g†·M(P)·g`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not Clifford.
    pub fn then_gate_inverse(&mut self, gate: &Gate) {
        self.then_gate(&gate.inverse());
    }

    /// Post-composes with every gate of a Clifford circuit in time order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-Clifford gates.
    pub fn then_circuit(&mut self, circuit: &Circuit) {
        for gate in circuit.gates() {
            self.then_gate(gate);
        }
    }

    /// Composes two maps: the result applies `self` first, then `other`
    /// (`(other ∘ self)(P) = other(self(P))`).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn then(&self, other: &CliffordTableau) -> CliffordTableau {
        assert_eq!(
            self.n, other.n,
            "qubit count mismatch in tableau composition"
        );
        let x_rows: Vec<SignedPauli> = (0..self.n)
            .map(|q| other.apply_signed(&self.x_image(q)))
            .collect();
        let z_rows: Vec<SignedPauli> = (0..self.n)
            .map(|q| other.apply_signed(&self.z_image(q)))
            .collect();
        CliffordTableau::from_rows(self.n, &x_rows, &z_rows)
    }

    /// Applies the map to a phase-free Pauli string, returning `±P'`.
    ///
    /// The image is the ordered product of the selected generator images,
    /// `U P U† = i^{#Y(P)} ∏_q (U X_q U†)^{x_q} (U Z_q U†)^{z_q}`, evaluated
    /// word-parallel: for every qubit column the result bits are masked
    /// parities of the bit-planes, and the i-exponent is accumulated from
    /// popcounts (the per-column product phase) rather than per-qubit
    /// string multiplications.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn apply(&self, pauli: &PauliString) -> SignedPauli {
        assert_eq!(
            pauli.num_qubits(),
            self.n,
            "qubit count mismatch in tableau application"
        );
        let n = self.n;
        let rows = 2 * n;
        // Select generator rows: row q for an X factor at qubit q, row n+q
        // for a Z factor. The multiplication order is "all X rows, then all
        // Z rows, each by ascending qubit" — this differs from the
        // interleaved X_q,Z_q order only by swaps of commuting factors
        // (X_q and Z_{q'} with q ≠ q'), so the operator is unchanged.
        let mut mask = BitVec::zeros(rows);
        for q in pauli.x_bits().iter_ones() {
            mask.set(q, true);
        }
        for q in pauli.z_bits().iter_ones() {
            mask.set(n + q, true);
        }

        // i^{#Y}: the literal decomposition of P contributes i per Y factor
        // (word-level popcount, not a per-qubit loop).
        let mut phase: i64 = pauli.x_bits().and_count(pauli.z_bits()) as i64;
        let mut res_x = BitVec::zeros(n);
        let mut res_z = BitVec::zeros(n);
        let mask_words = mask.words();
        for j in 0..n {
            let xw = self.frame.x_plane(j).words();
            let zw = self.frame.z_plane(j).words();
            // Per-column product of the selected single-qubit factors, in
            // row order: ∏_i P_i = i^{Σ x_i z_i − x_tot·z_tot} ·
            // (−1)^{Σ_{i<k} z_i x_k} · literal(x_tot, z_tot).
            let mut yy = 0i64; // Σ x_i z_i
            let mut x_tot = 0u64;
            let mut z_tot = 0u64;
            let mut pair = 0u32; // parity of Σ_{i<k} z_i x_k
            let mut carry = 0u64; // all-ones iff parity of z bits so far is odd
            for (w, &m) in mask_words.iter().enumerate() {
                let ax = xw[w] & m;
                let az = zw[w] & m;
                yy += i64::from((ax & az).count_ones());
                x_tot ^= ax;
                z_tot ^= az;
                // Exclusive prefix parity of the z sequence, continued
                // across words via the carry mask.
                let mut inc = az;
                inc ^= inc << 1;
                inc ^= inc << 2;
                inc ^= inc << 4;
                inc ^= inc << 8;
                inc ^= inc << 16;
                inc ^= inc << 32;
                let exc = (inc << 1) ^ carry;
                pair ^= (ax & exc).count_ones() & 1;
                carry ^= 0u64.wrapping_sub(inc >> 63);
            }
            let xt = x_tot.count_ones() & 1 == 1;
            let zt = z_tot.count_ones() & 1 == 1;
            phase += yy - i64::from(xt && zt) + 2 * i64::from(pair);
            if xt {
                res_x.set(j, true);
            }
            if zt {
                res_z.set(j, true);
            }
        }
        // Row signs contribute (−1) each; i^{−#Y(result)} is already folded
        // in through the per-column literal reassembly above.
        if self.frame.sign_plane().and_parity(&mask) {
            phase += 2;
        }
        let total = phase.rem_euclid(4);
        assert!(
            total % 2 == 0,
            "Clifford conjugation produced imaginary phase i^{total}; tableau is corrupt"
        );
        SignedPauli::new(PauliString::from_xz(res_x, res_z), total == 2)
    }

    /// Applies the map to **every** row of a [`PauliFrame`] in one
    /// word-parallel sweep: row `i` of the result is `apply_signed(row_i)`.
    ///
    /// Instead of conjugating the rows one string at a time, the sweep walks
    /// the `2n` generator images in multiplication order (all X generators by
    /// ascending qubit, then all Z generators) and multiplies each image into
    /// the accumulator of *every* row that selects it simultaneously: the
    /// selector of generator `q` (resp. `n+q`) is the input's X (resp. Z)
    /// bit-plane of qubit `q`, so each per-column literal multiplication is a
    /// handful of AND/XOR word operations over the batch dimension. The
    /// `i`-exponent of each row is carried in two phase bit-planes (a masked
    /// 2-bit ripple counter) rather than per-row integers.
    ///
    /// This is the batched CA-Pre kernel: loading an observable set into one
    /// frame and applying the Heisenberg tableau rewrites all observables at
    /// `O(rows/64)` words per (generator, qubit) pair. The word sweeps run on
    /// wide lanes (`simd` shim), and large batches are split into independent
    /// word-range blocks executed on the rayon pool: every update is
    /// element-wise in the batch dimension, so the blocked result is
    /// bit-identical to the sequential one at any block size.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn apply_frame(&self, input: &PauliFrame) -> PauliFrame {
        let words = input.sign_plane().words().len();
        let threads = rayon::current_num_threads();
        // One block per thread, but never blocks so small the spawn overhead
        // dominates; threads == 1 degenerates to a single sequential block.
        let block_words = if threads <= 1 {
            words.max(1)
        } else {
            words.div_ceil(threads).max(MIN_BLOCK_WORDS)
        };
        self.apply_frame_chunked(input, block_words)
    }

    /// [`CliffordTableau::apply_frame`] with an explicit word-block size for
    /// the batch dimension (`block_words` ≥ 1; one 64-row word per unit).
    ///
    /// Exposed so tests can pin the chunking and verify that every block size
    /// — sequential (`block_words >= words`) or maximally split
    /// (`block_words == 1`) — produces bit-identical output.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn apply_frame_chunked(&self, input: &PauliFrame, block_words: usize) -> PauliFrame {
        assert_eq!(
            input.num_qubits(),
            self.n,
            "qubit count mismatch in tableau frame application"
        );
        let n = self.n;
        let rows = input.num_rows();
        let words = input.sign_plane().words().len();
        let mut out = PauliFrame::identities(n, rows);
        if words == 0 {
            return out;
        }
        let block_words = block_words.clamp(1, words);
        let ranges: Vec<(usize, usize)> = (0..words)
            .step_by(block_words)
            .map(|w0| (w0, (w0 + block_words).min(words)))
            .collect();
        let blocks: Vec<BlockImage> = if ranges.len() == 1 {
            vec![self.sweep_block(input, 0, words)]
        } else {
            ranges
                .par_iter()
                .map(|&(w0, w1)| self.sweep_block(input, w0, w1))
                .collect()
        };
        for (&(w0, w1), block) in ranges.iter().zip(&blocks) {
            let bw = w1 - w0;
            for j in 0..n {
                out.x_plane_mut(j).words_mut()[w0..w1].copy_from_slice(&block.ox[j * bw..][..bw]);
                out.z_plane_mut(j).words_mut()[w0..w1].copy_from_slice(&block.oz[j * bw..][..bw]);
            }
            out.sign_plane_mut().words_mut()[w0..w1].copy_from_slice(&block.p1);
        }
        debug_assert!(
            (0..n).all(|j| out.x_plane(j).tail_is_clear() && out.z_plane(j).tail_is_clear())
                && out.sign_plane().tail_is_clear(),
            "block stitch must not write past the batch width"
        );
        out
    }

    /// Runs the full generator sweep restricted to batch words `[w0, w1)`,
    /// returning the accumulator planes of that block.
    fn sweep_block(&self, input: &PauliFrame, w0: usize, w1: usize) -> BlockImage {
        let n = self.n;
        let bw = w1 - w0;

        // Accumulator bit-planes of the output literals (flattened n × bw:
        // column j at `j*bw..(j+1)*bw`), plus the i-exponent mod 4 as two
        // phase planes (p1 p0 little-endian per row).
        let mut ox = vec![0u64; n * bw];
        let mut oz = vec![0u64; n * bw];
        let mut p0 = vec![0u64; bw];
        let mut p1 = vec![0u64; bw];

        // i^{#Y(P)}: the literal decomposition of each input row contributes
        // one factor of i per Y, and an input −1 sign contributes i².
        for q in 0..n {
            add_y_counts::<LW>(
                &input.x_plane(q).words()[w0..w1],
                &input.z_plane(q).words()[w0..w1],
                &mut p0,
                &mut p1,
            );
        }
        simd::xor_into(&mut p1, &input.sign_plane().words()[w0..w1]);

        for g in 0..2 * n {
            let sel = if g < n {
                input.x_plane(g)
            } else {
                input.z_plane(g - n)
            };
            let selw = &sel.words()[w0..w1];
            if selw.iter().all(|&w| w == 0) {
                continue;
            }
            // A negative generator image contributes i² to every selecting row.
            if self.frame.sign_plane().get(g) {
                simd::xor_into(&mut p1, selw);
            }
            for j in 0..n {
                let gx = self.frame.x_plane(j).get(g);
                let gz = self.frame.z_plane(j).get(g);
                let oxj = &mut ox[j * bw..(j + 1) * bw];
                let ozj = &mut oz[j * bw..(j + 1) * bw];
                // Multiply the accumulator literal (xa, za) by the image's
                // literal (gx, gz) at this column, masked by the selector:
                // literal(a)·literal(b) = i^{delta}·literal(a⊕b) with
                // delta = xa·za + gx·gz − (xa⊕gx)(za⊕gz) + 2·za·gx (mod 4).
                match (gx, gz) {
                    (false, false) => {}
                    (true, false) => mul_x_factor::<LW>(selw, oxj, ozj, &mut p0, &mut p1),
                    (false, true) => mul_z_factor::<LW>(selw, oxj, ozj, &mut p0, &mut p1),
                    (true, true) => mul_y_factor::<LW>(selw, oxj, ozj, &mut p0, &mut p1),
                }
            }
        }

        // The result literal reassembly folds i^{−#Y(result)} back in the
        // same way the scalar `apply` does, so the surviving exponent must be
        // real: p0 ≡ 0 and p1 is the −1 sign plane.
        debug_assert!(
            p0.iter().all(|&w| w == 0),
            "Clifford frame conjugation produced an imaginary phase; tableau is corrupt"
        );
        BlockImage { ox, oz, p1 }
    }

    /// Applies the map to a signed Pauli.
    #[must_use]
    pub fn apply_signed(&self, pauli: &SignedPauli) -> SignedPauli {
        let result = self.apply(pauli.pauli());
        if pauli.is_negative() {
            -result
        } else {
            result
        }
    }

    /// Returns `true` if the map is the identity (all generators map to
    /// themselves with positive sign).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        if !self.frame.sign_plane().is_zero() {
            return false;
        }
        (0..self.n).all(|j| {
            let x = self.frame.x_plane(j);
            let z = self.frame.z_plane(j);
            x.count_ones() == 1 && x.get(j) && z.count_ones() == 1 && z.get(self.n + j)
        })
    }

    /// Direct access to the generator-image frame (rows `0..n` are X images,
    /// rows `n..2n` are Z images).
    #[must_use]
    pub fn generator_frame(&self) -> &PauliFrame {
        &self.frame
    }

    /// The inverse map (the tableau of `U†` if `self` is the tableau of `U`).
    ///
    /// Computed by inverting the symplectic (GF(2)) matrix of the map and
    /// fixing signs so that `self.apply(inverse.apply(P)) = P`.
    #[must_use]
    pub fn inverse(&self) -> CliffordTableau {
        let n = self.n;
        // Build the 2n × 2n GF(2) matrix A whose column j is the (x|z) vector
        // of the image of generator j (generators ordered X_0..X_{n-1},
        // Z_0..Z_{n-1}), then invert it to find generator preimages.
        let dim = 2 * n;
        let column = |row: &SignedPauli| -> Vec<bool> {
            let mut v = vec![false; dim];
            for q in 0..n {
                let (x, z) = row.pauli().op(q).xz();
                v[q] = x;
                v[n + q] = z;
            }
            v
        };
        // Augmented matrix [A | I], columns indexed by generator.
        let mut a: Vec<Vec<bool>> = vec![vec![false; dim]; dim];
        for j in 0..n {
            let cx = column(&self.x_image(j));
            let cz = column(&self.z_image(j));
            for i in 0..dim {
                a[i][j] = cx[i];
                a[i][n + j] = cz[i];
            }
        }
        let mut inv: Vec<Vec<bool>> = (0..dim)
            .map(|i| (0..dim).map(|j| i == j).collect())
            .collect();
        // Gauss–Jordan elimination over GF(2).
        for col in 0..dim {
            let pivot = (col..dim)
                .find(|&r| a[r][col])
                .expect("Clifford tableau matrix must be invertible");
            a.swap(col, pivot);
            inv.swap(col, pivot);
            for r in 0..dim {
                if r != col && a[r][col] {
                    for c in 0..dim {
                        a[r][c] ^= a[col][c];
                        inv[r][c] ^= inv[col][c];
                    }
                }
            }
        }
        // Row i of `inv` now expresses basis vector e_i in terms of the
        // original generator images; equivalently, column j of `inv` gives the
        // preimage of generator j.
        let preimage = |j: usize| -> PauliString {
            let mut x = BitVec::zeros(n);
            let mut z = BitVec::zeros(n);
            for q in 0..n {
                // Coefficient of X_q generator (index q) and Z_q (index n+q)
                // in the preimage of generator j.
                if inv[q][j] {
                    x.set(q, true);
                }
                if inv[n + q][j] {
                    z.set(q, true);
                }
            }
            PauliString::from_xz(x, z)
        };
        let mut x_rows = Vec::with_capacity(n);
        let mut z_rows = Vec::with_capacity(n);
        for q in 0..n {
            let px = preimage(q);
            let sign = self.apply(&px).is_negative();
            x_rows.push(SignedPauli::new(px, sign));
            let pz = preimage(n + q);
            let sign = self.apply(&pz).is_negative();
            z_rows.push(SignedPauli::new(pz, sign));
        }
        CliffordTableau::from_rows(n, &x_rows, &z_rows)
    }
}

impl fmt::Debug for CliffordTableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CliffordTableau on {} qubits:", self.n)?;
        for q in 0..self.n {
            writeln!(f, "  X_{q} -> {}", self.x_image(q))?;
        }
        for q in 0..self.n {
            writeln!(f, "  Z_{q} -> {}", self.z_image(q))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx01() -> Circuit {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c
    }

    #[test]
    fn identity_tableau_is_identity() {
        let t = CliffordTableau::identity(3);
        assert!(t.is_identity());
        let p: PauliString = "XYZ".parse().unwrap();
        assert_eq!(t.apply(&p), SignedPauli::positive(p));
    }

    #[test]
    fn cnot_tableau_matches_rules() {
        let t = CliffordTableau::from_circuit(&cx01());
        assert_eq!(t.apply(&"ZZ".parse().unwrap()).to_string(), "+IZ");
        assert_eq!(t.apply(&"XX".parse().unwrap()).to_string(), "+XI");
        assert_eq!(t.apply(&"XZ".parse().unwrap()).to_string(), "-YY");
        assert_eq!(t.apply(&"YY".parse().unwrap()).to_string(), "-XZ");
    }

    #[test]
    fn bell_circuit_stabilizers() {
        // H(0); CX(0,1) maps Z0 -> XX and Z1 -> ZZ: the Bell stabilizers.
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let t = CliffordTableau::from_circuit(&c);
        assert_eq!(t.apply(&"ZI".parse().unwrap()).to_string(), "+XX");
        assert_eq!(t.apply(&"IZ".parse().unwrap()).to_string(), "+ZZ");
        assert_eq!(t.apply(&"XI".parse().unwrap()).to_string(), "+ZI");
    }

    #[test]
    fn heisenberg_is_inverse_direction() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.s(1);
        c.cx(0, 1);
        let forward = CliffordTableau::from_circuit(&c);
        let heisenberg = CliffordTableau::heisenberg_from_circuit(&c);
        for s in ["XI", "IZ", "YY", "ZX"] {
            let p: PauliString = s.parse().unwrap();
            let roundtrip = heisenberg.apply_signed(&forward.apply(&p));
            assert_eq!(
                roundtrip,
                SignedPauli::positive(p),
                "U†(U P U†)U must be P for {s}"
            );
        }
    }

    #[test]
    fn composition_matches_circuit_concatenation() {
        let mut c1 = Circuit::new(3);
        c1.h(0);
        c1.cx(0, 1);
        let mut c2 = Circuit::new(3);
        c2.s(1);
        c2.cx(1, 2);
        let t1 = CliffordTableau::from_circuit(&c1);
        let t2 = CliffordTableau::from_circuit(&c2);
        let mut both = c1.clone();
        both.append(&c2);
        let t_both = CliffordTableau::from_circuit(&both);
        assert_eq!(t1.then(&t2), t_both);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.s(2);
        c.cx(2, 3);
        c.cx(1, 2);
        c.sdg(3);
        c.h(3);
        let t = CliffordTableau::from_circuit(&c);
        let inv = t.inverse();
        assert!(t.then(&inv).is_identity());
        assert!(inv.then(&t).is_identity());
        // And it matches the tableau of the inverse circuit.
        assert_eq!(inv, CliffordTableau::from_circuit(&c.inverse()));
    }

    #[test]
    fn apply_preserves_commutation() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.s(1);
        c.cx(1, 2);
        let t = CliffordTableau::from_circuit(&c);
        let pairs = [("XXI", "ZZI"), ("XYZ", "YZX"), ("ZII", "XII")];
        for (a, b) in pairs {
            let pa: PauliString = a.parse().unwrap();
            let pb: PauliString = b.parse().unwrap();
            let ia = t.apply(&pa);
            let ib = t.apply(&pb);
            assert_eq!(
                pa.commutes_with(&pb),
                ia.pauli().commutes_with(ib.pauli()),
                "conjugation must preserve (anti)commutation of {a}, {b}"
            );
        }
    }

    #[test]
    fn signed_application_respects_input_sign() {
        let t = CliffordTableau::from_circuit(&cx01());
        let sp: SignedPauli = "-ZZ".parse().unwrap();
        assert_eq!(t.apply_signed(&sp).to_string(), "-IZ");
    }

    #[test]
    fn swap_and_cz_gates_compose_correctly() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        c.cz(0, 1);
        let t = CliffordTableau::from_circuit(&c);
        // Swap then CZ: X0 -> X1 -> X1 Z0.
        assert_eq!(t.apply(&"XI".parse().unwrap()).to_string(), "+ZX");
    }

    /// The word-parallel apply must agree with multiplying out the generator
    /// images one at a time (the pre-bit-plane reference algorithm).
    #[test]
    fn apply_matches_row_by_row_reference() {
        let mut c = Circuit::new(5);
        c.h(0);
        c.cx(0, 3);
        c.s(2);
        c.cz(1, 4);
        c.sdg(3);
        c.cx(4, 2);
        c.push(Gate::SqrtX(1));
        c.swap(0, 2);
        let t = CliffordTableau::from_circuit(&c);
        let reference = |p: &PauliString| -> SignedPauli {
            let n = p.num_qubits();
            let mut acc = PauliString::identity(n);
            let mut phase: u8 = 0;
            let mut y_count: usize = 0;
            for q in 0..n {
                let (x, z) = p.op(q).xz();
                if x && z {
                    y_count += 1;
                }
                if x {
                    let row = t.x_image(q);
                    let (next, k) = acc.mul(row.pauli());
                    phase = (phase + k + if row.is_negative() { 2 } else { 0 }) % 4;
                    acc = next;
                }
                if z {
                    let row = t.z_image(q);
                    let (next, k) = acc.mul(row.pauli());
                    phase = (phase + k + if row.is_negative() { 2 } else { 0 }) % 4;
                    acc = next;
                }
            }
            let total = (phase + (y_count % 4) as u8) % 4;
            assert_eq!(total % 2, 0);
            SignedPauli::new(acc, total == 2)
        };
        for s in [
            "XYZIX", "ZZZZZ", "IIIII", "YIYIY", "XXXXX", "IZXYI", "YXZIZ",
        ] {
            let p: PauliString = s.parse().unwrap();
            assert_eq!(t.apply(&p), reference(&p), "apply mismatch on {s}");
        }
    }

    /// `apply_frame` must agree with per-string `apply_signed` on every row,
    /// including signed inputs and rows beyond one word.
    #[test]
    fn apply_frame_matches_per_string_apply() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 3);
        c.s(2);
        c.cz(1, 3);
        c.sdg(0);
        c.cx(2, 1);
        c.push(Gate::SqrtX(3));
        c.swap(1, 2);
        let t = CliffordTableau::from_circuit(&c);
        // 150 signed rows: cycle through a mix, crossing word boundaries.
        let pool = [
            "XYZI", "-ZZZZ", "IIII", "YIYI", "-XXXX", "IZXY", "YXZI", "-IYIZ",
        ];
        let rows: Vec<SignedPauli> = (0..150)
            .map(|i| pool[i % pool.len()].parse().unwrap())
            .collect();
        let frame = PauliFrame::from_signed(4, &rows);
        let image = t.apply_frame(&frame);
        assert_eq!(image.num_rows(), 150);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(image.get(i), t.apply_signed(row), "row {i}: {row}");
        }
    }

    #[test]
    fn apply_frame_on_empty_frame() {
        let t = CliffordTableau::identity(3);
        let frame = PauliFrame::identities(3, 0);
        assert_eq!(t.apply_frame(&frame).num_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "qubit count mismatch")]
    fn mismatched_apply_panics() {
        let t = CliffordTableau::identity(2);
        let _ = t.apply(&"XXX".parse().unwrap());
    }
}

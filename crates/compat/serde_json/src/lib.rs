//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: renders the [`serde::Json`] tree produced by the offline `serde`
//! stand-in. Only the entry points the workspace uses are provided.

#![warn(missing_docs)]

use std::fmt;

use serde::{Json, Serialize};

/// Serialization error (infallible in practice for this stand-in; kept for
/// signature compatibility).
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), Some(2), 0, &mut out)?;
    Ok(out)
}

fn render(
    value: &Json,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    let (newline, pad, pad_close) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * (depth + 1)),
            " ".repeat(width * depth),
        ),
        None => ("", String::new(), String::new()),
    };
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Uint(u) => out.push_str(&u.to_string()),
        Json::Float(x) => {
            if !x.is_finite() {
                return Err(Error {
                    message: format!("non-finite float {x} is not representable in JSON"),
                });
            }
            // Match serde_json: always distinguishable from integers.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Json::Str(s) => push_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(newline);
                out.push_str(&pad);
                render(item, indent, depth + 1, out)?;
            }
            out.push_str(newline);
            out.push_str(&pad_close);
            out.push(']');
        }
        Json::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(newline);
                out.push_str(&pad);
                push_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out)?;
            }
            out.push_str(newline);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
    Ok(())
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let mut m: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        m.insert("xs".into(), vec![1, 2]);
        assert_eq!(to_string(&m).unwrap(), r#"{"xs":[1,2]}"#);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"xs\": [\n"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}

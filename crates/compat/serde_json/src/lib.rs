//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: renders and parses the [`serde::Json`] tree used by the offline
//! `serde` stand-in. Only the entry points the workspace uses are provided:
//! [`to_string`] / [`to_string_pretty`] for serialization and [`from_str`]
//! (returning the dynamic [`Json`] tree) for deserialization — the
//! `quclear-serve` wire protocol reads typed fields out of the tree with
//! the `Json` accessors.

#![warn(missing_docs)]

use std::fmt;

use serde::{Json, Serialize};

/// Serialization error (infallible in practice for this stand-in; kept for
/// signature compatibility).
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    value_to_string(&value.to_json())
}

/// Serializes an already-built [`Json`] tree as compact JSON, without the
/// intermediate clone that going through [`Serialize::to_json`] on a
/// wrapper would cost (used by the `quclear-serve` wire protocol, whose
/// messages are built as trees directly).
///
/// # Errors
///
/// Returns an error if the tree contains a non-finite float.
pub fn value_to_string(value: &Json) -> Result<String, Error> {
    let mut out = String::new();
    render(value, None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), Some(2), 0, &mut out)?;
    Ok(out)
}

fn render(
    value: &Json,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    let (newline, pad, pad_close) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * (depth + 1)),
            " ".repeat(width * depth),
        ),
        None => ("", String::new(), String::new()),
    };
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Uint(u) => out.push_str(&u.to_string()),
        Json::Float(x) => {
            if !x.is_finite() {
                return Err(Error {
                    message: format!("non-finite float {x} is not representable in JSON"),
                });
            }
            // Match serde_json: always distinguishable from integers.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Json::Str(s) => push_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(newline);
                out.push_str(&pad);
                render(item, indent, depth + 1, out)?;
            }
            out.push_str(newline);
            out.push_str(&pad_close);
            out.push(']');
        }
        Json::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(newline);
                out.push_str(&pad);
                push_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out)?;
            }
            out.push_str(newline);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
    Ok(())
}

/// Parses JSON text into a [`Json`] tree.
///
/// Supports the full JSON grammar: all scalar types, nested arrays/objects,
/// string escapes (including `\uXXXX` with surrogate pairs), and arbitrary
/// whitespace. Numbers parse as `Uint`/`Int` when they are integral and in
/// range, `Float` otherwise. Nesting depth is bounded so untrusted network
/// input cannot overflow the stack.
///
/// # Errors
///
/// Returns an error describing the offending byte offset for malformed
/// input, trailing garbage, or over-deep nesting.
pub fn from_str(text: &str) -> Result<Json, Error> {
    let mut parser = Parser {
        src: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos < parser.src.len() {
        return Err(parser.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

/// Maximum nesting depth accepted by [`from_str`]: the parser recurses per
/// container, so untrusted input must not control the stack.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl fmt::Display) -> Error {
        Error {
            message: format!("{message} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    /// Consumes `word` if it is next (used for `true`/`false`/`null`).
    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, Error> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.error("JSON nesting is too deep"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_word("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_word("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_word("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.eat(b'}') {
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Object(entries));
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.eat(b']') {
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Array(items));
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.src.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.src.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired low
                                // surrogate escape *immediately* — we are
                                // inside a string literal, so no whitespace
                                // skipping (`eat` would) is allowed here.
                                if self.src.get(self.pos) == Some(&b'\\')
                                    && self.src.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let Some(chunk) = self.src.get(start..end) else {
                        return Err(self.error("truncated UTF-8 sequence"));
                    };
                    match std::str::from_utf8(chunk) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.error("invalid UTF-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let Some(chunk) = self.src.get(self.pos..self.pos + 4) else {
            return Err(self.error("truncated \\u escape"));
        };
        let text = std::str::from_utf8(chunk).map_err(|_| self.error("invalid \\u escape"))?;
        let value = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Json, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.src.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.src.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            // Prefer exact integer variants when the digits fit.
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Float(x)),
            Err(_) => Err(self.error(format!("invalid number `{text}`"))),
        }
    }
}

/// Length of the UTF-8 sequence introduced by `first` (1 for ASCII and for
/// malformed continuation bytes, which `from_utf8` then rejects).
fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let mut m: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        m.insert("xs".into(), vec![1, 2]);
        assert_eq!(to_string(&m).unwrap(), r#"{"xs":[1,2]}"#);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"xs\": [\n"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn parse_roundtrips_every_scalar() {
        assert_eq!(from_str("null").unwrap(), Json::Null);
        assert_eq!(from_str("true").unwrap(), Json::Bool(true));
        assert_eq!(from_str("false").unwrap(), Json::Bool(false));
        assert_eq!(from_str("42").unwrap(), Json::Uint(42));
        assert_eq!(from_str("-7").unwrap(), Json::Int(-7));
        assert_eq!(from_str("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(from_str("-1e3").unwrap(), Json::Float(-1000.0));
        assert_eq!(from_str(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_handles_containers_and_whitespace() {
        let value = from_str(" { \"xs\" : [ 1 , 2.5 , \"three\" ] , \"ok\": true } ").unwrap();
        assert_eq!(value.get("ok"), Some(&Json::Bool(true)));
        let xs = value.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert_eq!(xs[2].as_str(), Some("three"));
        assert_eq!(from_str("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Json::Object(vec![]));
    }

    #[test]
    fn parse_decodes_escapes_and_unicode() {
        assert_eq!(
            from_str(r#""a\"b\n\t\\\u0041""#).unwrap(),
            Json::Str("a\"b\n\t\\A".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            from_str(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // Raw (unescaped) multi-byte UTF-8 passes through.
        assert_eq!(from_str("\"héllo\"").unwrap(), Json::Str("héllo".into()));
        // The low surrogate must follow immediately: intervening characters
        // (even whitespace, which is insignificant *outside* strings) make
        // the high surrogate unpaired.
        assert!(from_str(r#""\ud83d \ude00""#).is_err());
        assert!(from_str(r#""\ud83dx\ude00""#).is_err());
    }

    #[test]
    fn serializer_output_parses_back_identically() {
        let mut m: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        m.insert("angles".into(), vec![0.5, -1.25, 3.0]);
        let text = to_string(&m).unwrap();
        let tree = from_str(&text).unwrap();
        let angles = tree.get("angles").unwrap().as_array().unwrap();
        let values: Vec<f64> = angles.iter().map(|v| v.as_f64().unwrap()).collect();
        assert_eq!(values, vec![0.5, -1.25, 3.0]);
        // Pretty output parses to the same tree.
        assert_eq!(from_str(&to_string_pretty(&m).unwrap()).unwrap(), tree);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "nul",
            "{",
            "[1,",
            "\"unterminated",
            "{\"k\" 1}",
            "1 2",
            "{,}",
            "[1 2]",
            "\"\\q\"",
            "\"\\ud83d\"",
            "--1",
            "+1",
        ] {
            assert!(from_str(bad).is_err(), "`{bad}` must not parse");
        }
        // Over-deep nesting errors instead of overflowing the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(from_str(&deep).is_err());
    }

    #[test]
    fn integer_edge_cases_pick_the_right_variant() {
        assert_eq!(from_str("0").unwrap(), Json::Uint(0));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Json::Uint(u64::MAX)
        );
        assert_eq!(
            from_str("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        );
        // Out-of-range integers degrade to floats like serde_json's
        // arbitrary_precision-less default.
        assert!(matches!(
            from_str("18446744073709551616").unwrap(),
            Json::Float(_)
        ));
    }
}

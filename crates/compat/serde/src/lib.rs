//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment of this repository has no network access, so this
//! crate provides the subset the workspace uses: a [`Serialize`] trait (here
//! producing an explicit [`Json`] tree rather than driving a generic
//! `Serializer`) and a `#[derive(Serialize)]` macro for structs with named
//! fields. `serde_json::to_string_pretty` renders the tree.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::Serialize;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    Uint(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`; integers widen losslessly (within 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Uint(u) => Some(*u as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::Uint(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Uint(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries of an object, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Looks up `key` in an object (first match; `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Types that can render themselves as a [`Json`] tree.
pub trait Serialize {
    /// Converts the value into a JSON tree.
    fn to_json(&self) -> Json;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Uint(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> Json {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3usize.to_json(), Json::Uint(3));
        assert_eq!((-3i32).to_json(), Json::Int(-3));
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!("hi".to_string().to_json(), Json::Str("hi".into()));
        assert_eq!(None::<u8>.to_json(), Json::Null);
        assert_eq!(
            vec![1u8, 2].to_json(),
            Json::Array(vec![Json::Uint(1), Json::Uint(2)])
        );
    }

    #[test]
    fn maps_are_ordered() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 1usize);
        m.insert("a".to_string(), 2usize);
        match m.to_json() {
            Json::Object(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}

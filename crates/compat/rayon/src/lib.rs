//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment of this repository has no network access, so this
//! crate implements the data-parallel subset the workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` plus [`join`]. Work is
//! executed on `std::thread::scope` threads — one contiguous chunk per
//! available core — and results are returned **in input order**, matching
//! rayon's `collect` semantics for indexed parallel iterators.
//!
//! There is no global thread pool and no work stealing: throughput is within
//! a small factor of rayon for the coarse-grained compilation jobs this
//! workspace parallelizes, which is all that is needed here.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// The common imports: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Number of worker threads used for parallel operations.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle.join().expect("rayon::join closure panicked");
        (ra, rb)
    })
}

/// Types that can produce a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a slice.
#[derive(Clone, Copy, Debug)]
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// Parallel map over a slice; consumed by [`ParMap::collect`].
#[derive(Clone, Copy, Debug)]
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Runs the map on scoped threads and collects results in input order.
    pub fn collect<C: FromOrderedParallel<U>>(self) -> C {
        C::from_ordered(self.run())
    }

    fn run(self) -> Vec<U> {
        let items = self.slice;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = current_num_threads().min(n).max(1);
        if threads == 1 {
            return items.iter().map(&self.f).collect();
        }
        let chunk_len = n.div_ceil(threads);
        let f = &self.f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()))
                .collect();
            let mut out = Vec::with_capacity(n);
            for handle in handles {
                out.extend(handle.join().expect("parallel map worker panicked"));
            }
            out
        })
    }
}

/// Collections buildable from an ordered parallel computation.
pub trait FromOrderedParallel<U> {
    /// Builds the collection from results in input order.
    fn from_ordered(items: Vec<U>) -> Self;
}

impl<U> FromOrderedParallel<U> for Vec<U> {
    fn from_ordered(items: Vec<U>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7usize];
        let out: Vec<usize> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}

//! End-to-end tests for the model checker itself: known-racy models must
//! fail (with replayable traces), known-correct models must pass, and the
//! scheduler's special powers — deadlock detection, virtual-time timeouts,
//! spurious wakeups, poisoning — must each be demonstrable.

use std::time::Duration;

use quclear_sched::sync::atomic::{AtomicU64, Ordering};
use quclear_sched::sync::{Arc, Condvar, Mutex, PoisonError};
use quclear_sched::time::Instant;
use quclear_sched::{thread, Explorer};

/// The canonical lost update: two unsynchronized read-modify-write
/// sequences on one atomic. DFS must find the interleaving where both
/// loads happen before either store.
fn lost_update_model() {
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&counter);
    let t = thread::spawn(move || {
        let v = c2.load(Ordering::SeqCst);
        c2.store(v + 1, Ordering::SeqCst);
    });
    let v = counter.load(Ordering::SeqCst);
    counter.store(v + 1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn dfs_finds_lost_update() {
    let report = Explorer::dfs()
        .max_schedules(10_000)
        .check(lost_update_model);
    let failure = report.assert_failed();
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(!failure.trace.is_empty());
}

#[test]
fn fetch_add_fixes_lost_update_and_exhausts() {
    let report = Explorer::dfs().max_schedules(10_000).check(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    report.assert_passed();
    assert!(report.exhausted, "small model should be fully enumerated");
    assert!(
        report.schedules > 1,
        "exploration must try multiple interleavings, got {}",
        report.schedules
    );
}

#[test]
fn mutexed_increment_passes() {
    let report = Explorer::dfs().max_schedules(10_000).check(|| {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g += 1;
        });
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
    report.assert_passed();
    assert!(report.exhausted);
}

/// A violation's recorded trace replays to the identical failure — the
/// acceptance-criteria determinism check.
#[test]
fn violation_replays_deterministically() {
    let report = Explorer::dfs()
        .max_schedules(10_000)
        .check(lost_update_model);
    let failure = report.assert_failed().clone();
    for _ in 0..3 {
        let replay = Explorer::dfs().replay_with(&failure.trace, lost_update_model);
        let replayed = replay
            .failure
            .as_ref()
            .expect("replay of a failing trace must fail");
        assert_eq!(replayed.message, failure.message);
        assert_eq!(replayed.trace, failure.trace);
    }
}

#[test]
fn random_mode_finds_lost_update_and_seed_replays() {
    let report = Explorer::random(42, 500).check(lost_update_model);
    let failure = report.assert_failed().clone();
    let seed = failure.seed.expect("random failures carry their seed");
    // Rerunning from the failing seed alone reproduces the violation in
    // the first schedule.
    let rerun = Explorer::random(seed, 1).check(lost_update_model);
    let refailure = rerun.assert_failed();
    assert_eq!(refailure.message, failure.message);
    assert_eq!(refailure.trace, failure.trace);
}

/// Classic AB/BA lock ordering: DFS must find the deadlock and say so.
#[test]
fn dfs_detects_lock_order_deadlock() {
    let report = Explorer::dfs().max_schedules(10_000).check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let failure = report.assert_failed();
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {}",
        failure.message
    );
}

/// An `if`-guarded condvar wait misses spurious wakeups; the scheduler
/// injects one and the model observes `done == false` after waking.
#[test]
fn spurious_wakeup_breaks_if_guarded_wait() {
    let report = Explorer::dfs()
        .spurious_wakeups(1)
        .max_schedules(20_000)
        .check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut done = m.lock().unwrap();
                *done = true;
                drop(done);
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut done = m.lock().unwrap();
            // BUG under test: `if` instead of `while`.
            if !*done {
                done = cv.wait(done).unwrap();
            }
            assert!(*done, "woke without the predicate (spurious wakeup)");
            drop(done);
            t.join().unwrap();
        });
    let failure = report.assert_failed();
    assert!(
        failure.message.contains("spurious"),
        "expected the spurious-wakeup assertion, got: {}",
        failure.message
    );
}

/// The same model with a proper `while` loop survives spurious wakeups.
#[test]
fn while_guarded_wait_survives_spurious_wakeups() {
    let report = Explorer::dfs()
        .spurious_wakeups(2)
        .max_schedules(50_000)
        .check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (m, cv) = &*p2;
                *m.lock().unwrap() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut done = m.lock().unwrap();
            while !*done {
                done = cv.wait(done).unwrap();
            }
            assert!(*done);
            drop(done);
            t.join().unwrap();
        });
    report.assert_passed();
    assert!(report.exhausted);
}

/// Timed waits resolve by scheduler choice, not wall clock: with no
/// notifier at all, the only way forward is the timeout firing, and the
/// virtual clock must have advanced past the deadline.
#[test]
fn wait_timeout_fires_under_virtual_time() {
    let report = Explorer::dfs().max_schedules(10_000).check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (m, cv) = &*pair;
        let before = Instant::now();
        let deadline = before + Duration::from_millis(50);
        let mut done = m.lock().unwrap();
        let mut timed_out = false;
        while !*done {
            let now = Instant::now();
            if now >= deadline {
                timed_out = true;
                break;
            }
            let (g, result) = cv.wait_timeout(done, deadline - now).unwrap();
            done = g;
            if result.timed_out() {
                timed_out = true;
                break;
            }
        }
        drop(done);
        assert!(
            timed_out,
            "no notifier exists; only the timeout can resolve"
        );
        assert!(Instant::now() >= deadline, "clock must pass the deadline");
    });
    report.assert_passed();
    assert!(report.exhausted);
}

/// A panicking guard holder poisons the mutex for the next locker, same
/// as `std`; poison recovery via `PoisonError::into_inner` works.
#[test]
fn panicking_holder_poisons_mutex() {
    let report = Explorer::dfs().max_schedules(10_000).check(|| {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g = m2.lock().unwrap();
                panic!("holder dies");
            }));
            assert!(caught.is_err());
        });
        t.join().unwrap();
        // After the holder's panic the lock is poisoned but recoverable.
        let g = m.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(*g, 7);
    });
    report.assert_passed();
}

/// Uncaught panics on child threads fail the model even when nobody joins
/// the thread (std would silently swallow them until `join`).
#[test]
fn uncaught_child_panic_fails_the_model() {
    let report = Explorer::dfs().max_schedules(100).check(|| {
        let t = thread::spawn(|| panic!("child exploded"));
        // Deliberately ignore the join result.
        let _ = t.join();
    });
    let failure = report.assert_failed();
    assert!(
        failure.message.contains("child exploded"),
        "expected the child's panic message, got: {}",
        failure.message
    );
}

/// Regression: a run that aborts while a spawned child has not yet had its
/// first turn must still terminate. The child's startup wait can unwind
/// with the abort token, and that unwind has to reach `thread_finished` —
/// otherwise the controller waits on the finished count forever and the
/// whole test process wedges.
#[test]
fn abort_before_child_starts_terminates() {
    let report = Explorer::dfs().max_schedules(100).check(|| {
        let _unjoined = thread::spawn(|| ());
        panic!("root fails before the child runs");
    });
    let failure = report.assert_failed();
    assert!(
        failure.message.contains("root fails before the child runs"),
        "unexpected failure: {}",
        failure.message
    );
}

/// `notify_one`'s wake target is a scheduling decision: with two threads
/// parked on the same condvar, DFS must explore waking *each* of them, not
/// deterministically the first-parked one. The model asserts a wake-order-
/// dependent claim ("the first-spawned waiter is always the one woken")
/// that only a non-default wake choice can refute.
#[test]
fn dfs_explores_notify_one_wake_order() {
    let report = Explorer::dfs()
        .spurious_wakeups(0)
        .max_schedules(50_000)
        .check(|| {
            // Shared state: (parked-waiter count, phase 0=parked 1=go 2=done).
            let shared = Arc::new((Mutex::new((0u32, 0u32)), Condvar::new(), Condvar::new()));
            let order = Arc::new(Mutex::new(Vec::new()));
            let waiter = |id: u32| {
                let shared = Arc::clone(&shared);
                let order = Arc::clone(&order);
                thread::spawn(move || {
                    let (m, cv_ready, cv_go) = &*shared;
                    let mut g = m.lock().unwrap();
                    g.0 += 1;
                    cv_ready.notify_all();
                    while g.1 == 0 {
                        g = cv_go.wait(g).unwrap();
                    }
                    g.1 = 2;
                    drop(g);
                    order.lock().unwrap().push(id);
                    cv_go.notify_all();
                })
            };
            let a = waiter(0);
            let b = waiter(1);
            let (m, cv_ready, cv_go) = &*shared;
            let mut g = m.lock().unwrap();
            // Both waiters increment under the lock and release it only by
            // parking on cv_go, so observing 2 here proves both are parked.
            while g.0 < 2 {
                g = cv_ready.wait(g).unwrap();
            }
            g.1 = 1;
            drop(g);
            cv_go.notify_one();
            a.join().unwrap();
            b.join().unwrap();
            let order = order.lock().unwrap();
            assert_eq!(order[0], 0, "notify_one woke waiter {}", order[0]);
        });
    let failure = report.assert_failed();
    assert!(
        failure.message.contains("notify_one woke waiter"),
        "expected the wake-order assertion, got: {}",
        failure.message
    );
}

/// A corrupted or hand-edited trace must be rejected loudly, not silently
/// replayed as candidate 0 (which would "replay" a different schedule).
#[test]
#[should_panic(expected = "malformed schedule trace")]
fn replay_rejects_malformed_trace() {
    let _ = Explorer::dfs().replay_with("0.zzz.1", lost_update_model);
}

/// The shim types degrade to plain `std` behavior outside a model run.
#[test]
fn shims_pass_through_outside_models() {
    let m = Mutex::new(1u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 2);

    let counter = AtomicU64::new(0);
    counter.fetch_add(3, Ordering::Relaxed);
    assert_eq!(counter.load(Ordering::Relaxed), 3);

    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let p2 = Arc::clone(&pair);
    let t = thread::spawn(move || {
        let (m, cv) = &*p2;
        *m.lock().unwrap() = true;
        cv.notify_all();
    });
    let (m, cv) = &*pair;
    let mut done = m.lock().unwrap();
    while !*done {
        let (g, _timeout) = cv.wait_timeout(done, Duration::from_secs(5)).unwrap();
        done = g;
    }
    drop(done);
    t.join().unwrap();

    let a = Instant::now();
    let b = a + Duration::from_millis(1);
    assert!(b > a);
    assert_eq!(b.saturating_duration_since(a), Duration::from_millis(1));
}

/// Exploration count is reported and grows with preemption budget.
#[test]
fn preemption_budget_scales_exploration() {
    let model = || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 3);
    };
    let narrow = Explorer::dfs()
        .max_preemptions(0)
        .max_schedules(100_000)
        .check(model);
    let wide = Explorer::dfs()
        .max_preemptions(2)
        .max_schedules(100_000)
        .check(model);
    narrow.assert_passed();
    wide.assert_passed();
    assert!(
        wide.schedules > narrow.schedules,
        "preemptions must widen the schedule space: {} vs {}",
        wide.schedules,
        narrow.schedules
    );
}

/// Replaying a trace that names choices the model's schedule tree does not
/// have (wrong model, stale trace) is reported as divergence rather than
/// silently exploring something else.
#[test]
fn replay_of_mismatched_trace_reports_divergence() {
    let report = Explorer::dfs().replay_with("9.9.9.9", lost_update_model);
    let failure = report.assert_failed();
    assert!(
        failure.message.contains("diverged"),
        "expected divergence report, got: {}",
        failure.message
    );
}

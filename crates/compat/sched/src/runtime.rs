//! The controlled scheduler: one model run, many real threads, exactly one
//! of them executing at a time.
//!
//! Every shim operation (lock, unlock, atomic access, condvar wait/notify,
//! spawn, join, thread exit) funnels through a *decision point*: the running
//! thread builds the set of schedulable candidates, asks the run's
//! [`RunPolicy`] which one goes next, hands the baton over, and parks on a
//! (real) condvar until the baton comes back. The decision sequence — one
//! small integer per point — *is* the schedule: record it and a failing
//! interleaving replays exactly; enumerate it and small models are explored
//! exhaustively.
//!
//! # What a "candidate" is
//!
//! * every `Runnable` thread;
//! * `FireTimeout(t)` for every thread parked in a timed condvar wait —
//!   choosing it wakes `t` with `timed_out = true` and advances the virtual
//!   clock past the wait's deadline (time in a model is logical: it moves
//!   only when the scheduler decides a timeout fires);
//! * `Spurious(t)` for every thread parked in any condvar wait, while the
//!   run's spurious-wakeup budget lasts — choosing it wakes `t` with
//!   `timed_out = false` and no notification, exactly the wakeup the
//!   platform is allowed to invent. Code that handles condvars with an `if`
//!   instead of a `while` fails under this choice.
//!
//! No candidate at a decision point is a **deadlock**: the run fails with a
//! dump of every thread's blocked state and the schedule that got there.
//!
//! # Memory model
//!
//! Exploration is *sequentially consistent*: every atomic access is a
//! scheduling point executed with `SeqCst` regardless of the declared
//! [`Ordering`](std::sync::atomic::Ordering). Declared orderings are still
//! part of the source (and audited by the `xtask` lint); the checker
//! explores all SC interleavings, which soundly under-approximates weaker
//! orderings — a violation found here is a real violation, while bugs that
//! need non-SC reordering to surface are out of scope and must be argued
//! with `// ordering:` comments instead.
//!
//! # Abort protocol
//!
//! When a run fails (root assertion, deadlock, step bound), the scheduler
//! flips `abort`: every parked thread wakes, panics with a private
//! [`AbortToken`], and unwinds out of the model; every shim operation
//! degenerates into a non-blocking passthrough so the unwinds cannot get
//! stuck on shim-level lock state. The controller then harvests the
//! recorded failure and trace.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::Duration;

/// Panic payload used to unwind model threads after a run aborts. Private:
/// model code never observes it (any thread that would is itself unwound).
pub(crate) struct AbortToken;

/// Why a thread cannot run right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RunState {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting for a shim mutex (by object id) to be released.
    BlockedMutex(usize),
    /// Waiting for a shim rwlock to admit a reader.
    BlockedRwRead(usize),
    /// Waiting for a shim rwlock to admit the writer.
    BlockedRwWrite(usize),
    /// Parked in a condvar wait; `deadline_ns` is the virtual-clock expiry
    /// of a timed wait (`None` = untimed).
    BlockedCondvar { cv: usize, deadline_ns: Option<u64> },
    /// Waiting for another model thread to finish.
    BlockedJoin(usize),
    /// Exited (normally or by panic).
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    run: RunState,
    /// Set by the scheduler when a timed condvar wait was resolved by the
    /// `FireTimeout` choice rather than a notification.
    timed_out: bool,
}

impl ThreadState {
    fn runnable(&self) -> bool {
        self.run == RunState::Runnable
    }
}

#[derive(Debug, Default)]
struct LockState {
    locked: bool,
}

#[derive(Debug, Default)]
struct RwState {
    readers: usize,
    writer: bool,
}

/// Per-run tuning; see [`crate::explore::Explorer`] for the user-facing
/// builder.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RunConfig {
    /// Decision points before the run fails as a livelock.
    pub max_steps: usize,
    /// Preemptions (switching away from a thread that could continue)
    /// allowed per run; bounds the DFS tree polynomially.
    pub max_preemptions: usize,
    /// Spurious condvar wakeups the scheduler may inject per run.
    pub spurious_wakeups: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 20_000,
            max_preemptions: 2,
            spurious_wakeups: 1,
        }
    }
}

/// The source of scheduling decisions for one run: a replayed prefix
/// (DFS / replay) or a seeded RNG, recording every `(chosen, arity)` pair.
#[derive(Debug)]
pub(crate) struct RunPolicy {
    mode: PolicyMode,
    /// Every decision taken this run: `(chosen index, candidate count)`.
    pub decisions: Vec<(u16, u16)>,
    /// Set when a replayed prefix named an out-of-range candidate — the
    /// model diverged from the recorded run (nondeterminism outside the
    /// scheduler's control, e.g. randomized hashing).
    pub diverged: bool,
}

#[derive(Debug)]
enum PolicyMode {
    /// Follow `prefix`, then always pick candidate 0 (DFS leftmost descent).
    Prefix(Vec<u16>),
    /// SplitMix64 stream; uniform pick at every point.
    Random(u64),
}

impl RunPolicy {
    pub(crate) fn prefix(prefix: Vec<u16>) -> Self {
        RunPolicy {
            mode: PolicyMode::Prefix(prefix),
            decisions: Vec::new(),
            diverged: false,
        }
    }

    pub(crate) fn random(seed: u64) -> Self {
        RunPolicy {
            // SplitMix64 state must never be 0-degenerate; the golden-ratio
            // increment below guarantees full period from any seed.
            mode: PolicyMode::Random(seed),
            decisions: Vec::new(),
            diverged: false,
        }
    }

    fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        let step = self.decisions.len();
        let chosen = match &mut self.mode {
            PolicyMode::Prefix(prefix) => match prefix.get(step) {
                Some(&c) if (c as usize) < n => c as usize,
                Some(_) => {
                    self.diverged = true;
                    n - 1
                }
                None => 0,
            },
            PolicyMode::Random(state) => {
                // SplitMix64 step.
                *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z % n as u64) as usize
            }
        };
        self.decisions
            .push((chosen as u16, u16::try_from(n).unwrap_or(u16::MAX)));
        chosen
    }
}

/// One scheduling alternative at a decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Candidate {
    Run(usize),
    FireTimeout(usize),
    Spurious(usize),
}

#[derive(Debug)]
struct SchedState {
    threads: Vec<ThreadState>,
    current: usize,
    policy: RunPolicy,
    abort: bool,
    failure: Option<String>,
    clock_ns: u64,
    locks: HashMap<usize, LockState>,
    rwlocks: HashMap<usize, RwState>,
    preemptions: usize,
    spurious_left: u32,
    finished: usize,
    config: RunConfig,
}

impl SchedState {
    fn candidates(&self) -> Vec<Candidate> {
        let mut out = Vec::new();
        for (tid, t) in self.threads.iter().enumerate() {
            if t.runnable() {
                out.push(Candidate::Run(tid));
            }
        }
        for (tid, t) in self.threads.iter().enumerate() {
            if let RunState::BlockedCondvar {
                deadline_ns: Some(_),
                ..
            } = t.run
            {
                out.push(Candidate::FireTimeout(tid));
            }
        }
        if self.spurious_left > 0 {
            for (tid, t) in self.threads.iter().enumerate() {
                if matches!(t.run, RunState::BlockedCondvar { .. }) {
                    out.push(Candidate::Spurious(tid));
                }
            }
        }
        out
    }

    fn blocked_dump(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(tid, t)| format!("thread {tid}: {:?}", t.run))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// The shared scheduler for one model run.
pub(crate) struct Scheduler {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

/// Outcome of one completed run, harvested by the explorer.
pub(crate) struct RunOutcome {
    pub failure: Option<String>,
    pub decisions: Vec<(u16, u16)>,
    pub diverged: bool,
}

thread_local! {
    /// The scheduler driving this thread, plus this thread's model id.
    /// `None` outside model threads — every shim type falls back to its
    /// `std` counterpart in that case.
    static CONTEXT: std::cell::RefCell<Option<(Arc<Scheduler>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Rendered panic info for the most recent panic on this thread, stored
    /// by the model-aware panic hook so failures carry file:line context.
    static LAST_PANIC: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// The scheduler + model-thread-id of the calling thread, if any.
pub(crate) fn context() -> Option<(Arc<Scheduler>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// True when the calling thread belongs to an active model run.
pub(crate) fn in_model() -> bool {
    CONTEXT.with(|c| c.borrow().is_some())
}

fn set_context(ctx: Option<(Arc<Scheduler>, usize)>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

fn take_last_panic() -> Option<String> {
    LAST_PANIC.with(|p| p.borrow_mut().take())
}

/// Installs (once, process-wide) a panic hook that silences panics on model
/// threads — exploration deliberately panics thousands of times — while
/// recording their rendered message for failure reports. Panics outside
/// model threads go to the previously installed hook unchanged.
fn install_model_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if in_model() {
                LAST_PANIC.with(|p| *p.borrow_mut() = Some(info.to_string()));
            } else {
                previous(info);
            }
        }));
    });
}

/// Unwinds the calling thread out of an aborted run — unless it is already
/// unwinding, in which case it simply returns and the caller proceeds in
/// free-run mode (a second panic during unwind would abort the process).
fn abort_unwind() {
    if !std::thread::panicking() {
        std::panic::panic_any(AbortToken);
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[allow(clippy::unused_self)]
impl Scheduler {
    fn new(policy: RunPolicy, config: RunConfig) -> Scheduler {
        Scheduler {
            state: StdMutex::new(SchedState {
                threads: vec![ThreadState {
                    run: RunState::Runnable,
                    timed_out: false,
                }],
                current: 0,
                policy,
                abort: false,
                failure: None,
                clock_ns: 0,
                locks: HashMap::new(),
                rwlocks: HashMap::new(),
                preemptions: 0,
                spurious_left: config.spurious_wakeups,
                finished: 0,
                config,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SchedState> {
        // The scheduler's own mutex can only be poisoned by a bug in this
        // module; recovering keeps the abort protocol able to drain threads.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records the first failure, flips `abort`, and wakes everyone.
    fn fail(&self, st: &mut SchedState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Picks the next thread to run. Must be called with the state lock
    /// held by a thread that is about to stop running (yield, block, or
    /// finish). Returns `false` when the run aborted instead of scheduling.
    fn decide(&self, st: &mut SchedState) -> bool {
        if st.abort {
            return false;
        }
        if st.policy.decisions.len() >= st.config.max_steps {
            self.fail(
                st,
                format!(
                    "step bound exceeded ({} decision points): livelock or a model too \
                     large for this bound",
                    st.config.max_steps
                ),
            );
            return false;
        }
        let mut candidates = st.candidates();
        if candidates.is_empty() {
            if st.finished == st.threads.len() {
                // Everyone exited; nothing to schedule, nothing wrong.
                self.cv.notify_all();
                return true;
            }
            let dump = st.blocked_dump();
            self.fail(st, format!("deadlock: no schedulable thread ({dump})"));
            return false;
        }
        let current_runnable = st
            .threads
            .get(st.current)
            .is_some_and(ThreadState::runnable);
        if current_runnable && st.preemptions >= st.config.max_preemptions {
            // Preemption budget spent: the running thread keeps running.
            candidates.retain(|c| *c == Candidate::Run(st.current));
            debug_assert!(!candidates.is_empty());
        }
        let chosen = candidates[st.policy.pick(candidates.len())];
        if current_runnable && chosen != Candidate::Run(st.current) {
            st.preemptions += 1;
        }
        match chosen {
            Candidate::Run(t) => st.current = t,
            Candidate::FireTimeout(t) => {
                if let RunState::BlockedCondvar {
                    deadline_ns: Some(at),
                    ..
                } = st.threads[t].run
                {
                    // Logical time jumps to the deadline: the wait expired.
                    st.clock_ns = st.clock_ns.max(at);
                }
                st.threads[t].run = RunState::Runnable;
                st.threads[t].timed_out = true;
                st.current = t;
            }
            Candidate::Spurious(t) => {
                st.threads[t].run = RunState::Runnable;
                st.threads[t].timed_out = false;
                st.spurious_left -= 1;
                st.current = t;
            }
        }
        self.cv.notify_all();
        true
    }

    /// Parks until the baton is back: this thread is `current` and
    /// runnable. Panics with [`AbortToken`] if the run aborts meanwhile.
    fn wait_for_turn<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, SchedState>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        loop {
            if st.abort {
                if std::thread::panicking() {
                    // Free-run: let the unwinder proceed out of turn.
                    return st;
                }
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.current == me && st.threads[me].runnable() {
                return st;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// One decision point: the visible-operation prologue used by every
    /// shim op. After it returns, the calling thread holds the baton.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock_state();
        if st.abort || !self.decide(&mut st) {
            drop(st);
            abort_unwind();
            return;
        }
        drop(self.wait_for_turn(st, me));
    }

    /// Blocks the calling thread with `reason` until something wakes it.
    fn block_on(&self, mut st: std::sync::MutexGuard<'_, SchedState>, me: usize, reason: RunState) {
        st.threads[me].run = reason;
        if !self.decide(&mut st) {
            // The wake below matters even for free-runners: a blocked state
            // left behind would wedge the controller's finished count.
            st.threads[me].run = RunState::Runnable;
            drop(st);
            abort_unwind();
            return;
        }
        drop(self.wait_for_turn(st, me));
    }

    // ----- mutex ---------------------------------------------------------

    pub(crate) fn mutex_lock(&self, id: usize, me: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            if st.abort {
                // Free-run: take it unconditionally; the real mutex inside
                // the shim still provides mutual exclusion for unwinders.
                return;
            }
            let lock = st.locks.entry(id).or_default();
            if !lock.locked {
                lock.locked = true;
                return;
            }
            // Being scheduled after the wake below *is* the next decision;
            // re-check without a fresh yield.
            self.block_on(st, me, RunState::BlockedMutex(id));
        }
    }

    pub(crate) fn mutex_unlock(&self, id: usize, me: usize) {
        let mut st = self.lock_state();
        st.locks.entry(id).or_default().locked = false;
        for t in &mut st.threads {
            if t.run == RunState::BlockedMutex(id) {
                t.run = RunState::Runnable;
            }
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        // The release is a visible op: someone else may run before the
        // unlocking thread's next instruction.
        if !self.decide(&mut st) {
            drop(st);
            abort_unwind();
            return;
        }
        drop(self.wait_for_turn(st, me));
    }

    // ----- rwlock --------------------------------------------------------

    pub(crate) fn rw_read_lock(&self, id: usize, me: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            if st.abort {
                return;
            }
            let rw = st.rwlocks.entry(id).or_default();
            if !rw.writer {
                rw.readers += 1;
                return;
            }
            self.block_on(st, me, RunState::BlockedRwRead(id));
        }
    }

    pub(crate) fn rw_read_unlock(&self, id: usize, me: usize) {
        let mut st = self.lock_state();
        let rw = st.rwlocks.entry(id).or_default();
        rw.readers = rw.readers.saturating_sub(1);
        if rw.readers == 0 {
            for t in &mut st.threads {
                if t.run == RunState::BlockedRwWrite(id) {
                    t.run = RunState::Runnable;
                }
            }
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        if !self.decide(&mut st) {
            drop(st);
            abort_unwind();
            return;
        }
        drop(self.wait_for_turn(st, me));
    }

    pub(crate) fn rw_write_lock(&self, id: usize, me: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            if st.abort {
                return;
            }
            let rw = st.rwlocks.entry(id).or_default();
            if !rw.writer && rw.readers == 0 {
                rw.writer = true;
                return;
            }
            self.block_on(st, me, RunState::BlockedRwWrite(id));
        }
    }

    pub(crate) fn rw_write_unlock(&self, id: usize, me: usize) {
        let mut st = self.lock_state();
        st.rwlocks.entry(id).or_default().writer = false;
        for t in &mut st.threads {
            if matches!(
                t.run,
                RunState::BlockedRwRead(l) | RunState::BlockedRwWrite(l) if l == id
            ) {
                t.run = RunState::Runnable;
            }
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        if !self.decide(&mut st) {
            drop(st);
            abort_unwind();
            return;
        }
        drop(self.wait_for_turn(st, me));
    }

    // ----- condvar -------------------------------------------------------

    /// Releases the shim-level mutex `mutex_id`, parks on `cv_id`
    /// (optionally with a virtual-clock timeout), and returns whether the
    /// wait resolved as a timeout. The caller reacquires the mutex via
    /// [`Scheduler::mutex_relock`] afterwards.
    pub(crate) fn condvar_wait(
        &self,
        cv_id: usize,
        mutex_id: usize,
        me: usize,
        timeout: Option<Duration>,
    ) -> bool {
        let mut st = self.lock_state();
        if st.abort {
            return false;
        }
        st.locks.entry(mutex_id).or_default().locked = false;
        for t in &mut st.threads {
            if t.run == RunState::BlockedMutex(mutex_id) {
                t.run = RunState::Runnable;
            }
        }
        let deadline_ns = timeout.map(|d| st.clock_ns.saturating_add(duration_to_ns(d)));
        st.threads[me].timed_out = false;
        st.threads[me].run = RunState::BlockedCondvar {
            cv: cv_id,
            deadline_ns,
        };
        if !self.decide(&mut st) {
            st.threads[me].run = RunState::Runnable;
            drop(st);
            abort_unwind();
            return false;
        }
        let st = self.wait_for_turn(st, me);
        let timed_out = st.threads[me].timed_out;
        drop(st);
        timed_out
    }

    /// Reacquires a mutex after a condvar wait, without the initial yield
    /// of [`Scheduler::mutex_lock`] (being rescheduled after the wake was
    /// the decision).
    pub(crate) fn mutex_relock(&self, id: usize, me: usize) {
        loop {
            let mut st = self.lock_state();
            if st.abort {
                return;
            }
            let lock = st.locks.entry(id).or_default();
            if !lock.locked {
                lock.locked = true;
                return;
            }
            self.block_on(st, me, RunState::BlockedMutex(id));
        }
    }

    pub(crate) fn condvar_notify(&self, cv_id: usize, me: usize, all: bool) {
        let mut st = self.lock_state();
        if st.abort {
            self.cv.notify_all();
            return;
        }
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.run, RunState::BlockedCondvar { cv, .. } if cv == cv_id))
            .map(|(tid, _)| tid)
            .collect();
        if all {
            for &tid in &waiters {
                st.threads[tid].run = RunState::Runnable;
                st.threads[tid].timed_out = false;
            }
        } else if !waiters.is_empty() {
            // Which parked thread a notify_one wakes is unspecified on real
            // platforms, so it is a decision point: DFS must enumerate every
            // waiter, not silently always wake the lowest tid.
            let tid = waiters[st.policy.pick(waiters.len())];
            st.threads[tid].run = RunState::Runnable;
            st.threads[tid].timed_out = false;
        }
        if !self.decide(&mut st) {
            drop(st);
            abort_unwind();
            return;
        }
        drop(self.wait_for_turn(st, me));
    }

    // ----- threads -------------------------------------------------------

    /// Registers a child thread (runnable, waiting for its first turn) and
    /// returns its model id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(ThreadState {
            run: RunState::Runnable,
            timed_out: false,
        });
        st.threads.len() - 1
    }

    /// First thing a freshly spawned model thread does: wait to be
    /// scheduled.
    pub(crate) fn thread_started(&self, me: usize) {
        let st = self.lock_state();
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        drop(self.wait_for_turn(st, me));
    }

    /// Marks the calling thread finished, wakes joiners, and hands the
    /// baton on. Never blocks and never panics: it runs during unwinds.
    pub(crate) fn thread_finished(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me].run = RunState::Finished;
        st.finished += 1;
        let me_id = me;
        for t in &mut st.threads {
            if t.run == RunState::BlockedJoin(me_id) {
                t.run = RunState::Runnable;
            }
        }
        if st.finished == st.threads.len() {
            self.cv.notify_all();
            return;
        }
        if !st.abort {
            // Ignore a failed decide: `fail` already set abort + notified.
            let _ = self.decide(&mut st);
        } else {
            self.cv.notify_all();
        }
    }

    /// Blocks until thread `target` finishes.
    pub(crate) fn join_thread(&self, target: usize, me: usize) {
        self.yield_point(me);
        let st = self.lock_state();
        if st.abort {
            drop(st);
            abort_unwind();
            return;
        }
        if st.threads[target].run == RunState::Finished {
            return;
        }
        self.block_on(st, me, RunState::BlockedJoin(target));
    }

    /// Current virtual time in nanoseconds.
    pub(crate) fn clock_ns(&self) -> u64 {
        self.lock_state().clock_ns
    }

    /// Root-thread failure reporting: a panic in the root (assertion)
    /// thread fails the run with its rendered message.
    fn fail_from_root(&self, message: String) {
        let mut st = self.lock_state();
        self.fail(&mut st, message);
    }
}

fn duration_to_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Spawn used by the shim `thread` module: registers the child with the
/// calling thread's scheduler and injects the scheduler context into the
/// child. Outside a model it is exactly `std::thread::spawn`.
pub(crate) fn spawn_model_thread<T: Send + 'static>(
    f: impl FnOnce() -> T + Send + 'static,
) -> (
    std::thread::JoinHandle<std::thread::Result<T>>,
    Option<usize>,
) {
    match context() {
        None => (
            std::thread::spawn(move || catch_unwind(AssertUnwindSafe(f))),
            None,
        ),
        Some((sched, _parent)) => {
            let tid = sched.register_thread();
            let child_sched = Arc::clone(&sched);
            let handle = std::thread::spawn(move || {
                set_context(Some((Arc::clone(&child_sched), tid)));
                // `thread_started` must sit inside the catch_unwind: it can
                // panic with AbortToken when the run aborts before this
                // child's first turn, and an unwind escaping the closure
                // would skip `thread_finished`, wedging the controller's
                // finished-count wait forever.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    child_sched.thread_started(tid);
                    f()
                }));
                if let Err(payload) = &result {
                    // An uncaught panic on a child thread is a model failure
                    // in its own right — std would only surface it through
                    // `join`, which a model may never call. Models that
                    // *expect* a panic (panicking-leader scenarios) contain
                    // it with `catch_unwind` inside the closure.
                    if !payload.is::<AbortToken>() {
                        let message = take_last_panic().unwrap_or_else(|| {
                            format!("panicked: {}", payload_message(&**payload))
                        });
                        child_sched.fail_from_root(format!("model thread {tid}: {message}"));
                    }
                }
                child_sched.thread_finished(tid);
                set_context(None);
                result
            });
            (handle, Some(tid))
        }
    }
}

/// Runs `model` once under a fresh scheduler with the given policy and
/// returns the harvested outcome. Used by the explorer; not public API.
pub(crate) fn run_once(
    config: RunConfig,
    policy: RunPolicy,
    model: Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    install_model_panic_hook();
    let scheduler = Arc::new(Scheduler::new(policy, config));
    let root_sched = Arc::clone(&scheduler);
    let root = std::thread::spawn(move || {
        set_context(Some((Arc::clone(&root_sched), 0)));
        // Same rule as spawned children: `thread_started` can abort-unwind
        // and must not escape past `thread_finished` below.
        let result = catch_unwind(AssertUnwindSafe(|| {
            root_sched.thread_started(0);
            model();
        }));
        if let Err(payload) = result {
            if !payload.is::<AbortToken>() {
                let message = take_last_panic().unwrap_or_else(|| {
                    format!("root thread panicked: {}", payload_message(&*payload))
                });
                root_sched.fail_from_root(message);
            }
        }
        root_sched.thread_finished(0);
        set_context(None);
    });

    // Wait for every registered model thread to finish. Children register
    // as the run progresses, so re-read the count each wakeup.
    {
        let mut st = scheduler.lock_state();
        loop {
            if st.finished == st.threads.len() {
                break;
            }
            st = scheduler
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    let _ = root.join();

    let st = scheduler.lock_state();
    RunOutcome {
        failure: st.failure.clone(),
        decisions: st.policy.decisions.clone(),
        diverged: st.policy.diverged,
    }
}

/// Identity of a shim primitive: its inner object's address. Stable for
/// the primitive's lifetime (shim ops take `&self`); an address reused by a
/// later primitive inherits only quiescent (unlocked, waiter-free) state.
pub(crate) fn object_id<T: ?Sized>(inner: &T) -> usize {
    std::ptr::from_ref(inner).cast::<()>() as usize
}

//! Virtual time: an `Instant` that reads the model's logical clock.
//!
//! Inside a model run, [`Instant::now`] returns the scheduler's virtual
//! clock — nanoseconds that advance **only** when the scheduler fires a
//! timed wait's deadline (see [`crate::sync::Condvar::wait_timeout`]).
//! Real wall-clock time never leaks in, so a model's deadline logic
//! (`now >= at`, `at - now`) is a pure function of the explored schedule
//! and every run replays bit-identically. Outside a model run this is
//! `std::time::Instant` with the same API subset.
//!
//! The two representations never mix in practice (a value created inside a
//! model run is consumed inside it); comparing or subtracting across them
//! panics rather than inventing an ordering.

use std::cmp::Ordering as CmpOrdering;
use std::ops::{Add, Sub};
use std::time::Duration;

use crate::runtime;

/// Drop-in `std::time::Instant` subset with a virtual-clock representation
/// for model runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instant(Repr);

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Repr {
    Real(std::time::Instant),
    /// Nanoseconds on the owning scheduler's virtual clock.
    Virtual(u64),
}

impl Instant {
    /// The current instant: wall clock outside a model run, the
    /// scheduler's virtual clock inside one.
    #[must_use]
    pub fn now() -> Instant {
        match runtime::context() {
            None => Instant(Repr::Real(std::time::Instant::now())),
            Some((sched, _)) => Instant(Repr::Virtual(sched.clock_ns())),
        }
    }

    /// `self - earlier`, saturating to zero when `earlier` is later.
    #[must_use]
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        match (self.0, earlier.0) {
            (Repr::Real(a), Repr::Real(b)) => a.saturating_duration_since(b),
            (Repr::Virtual(a), Repr::Virtual(b)) => Duration::from_nanos(a.saturating_sub(b)),
            _ => mixed_repr(),
        }
    }

    /// `self - earlier`; panics if `earlier` is later (as `std` does).
    #[must_use]
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        match (self.0, earlier.0) {
            (Repr::Real(a), Repr::Real(b)) => a.duration_since(b),
            (Repr::Virtual(a), Repr::Virtual(b)) => {
                assert!(a >= b, "duration_since: earlier instant is later");
                Duration::from_nanos(a - b)
            }
            _ => mixed_repr(),
        }
    }

    /// Time since this instant was captured.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    /// `self + duration`, `None` on overflow.
    #[must_use]
    pub fn checked_add(&self, duration: Duration) -> Option<Instant> {
        match self.0 {
            Repr::Real(a) => a.checked_add(duration).map(|i| Instant(Repr::Real(i))),
            Repr::Virtual(a) => u64::try_from(duration.as_nanos())
                .ok()
                .and_then(|d| a.checked_add(d))
                .map(|ns| Instant(Repr::Virtual(ns))),
        }
    }

    /// `self - duration`, `None` on underflow.
    #[must_use]
    pub fn checked_sub(&self, duration: Duration) -> Option<Instant> {
        match self.0 {
            Repr::Real(a) => a.checked_sub(duration).map(|i| Instant(Repr::Real(i))),
            Repr::Virtual(a) => u64::try_from(duration.as_nanos())
                .ok()
                .and_then(|d| a.checked_sub(d))
                .map(|ns| Instant(Repr::Virtual(ns))),
        }
    }
}

impl PartialOrd for Instant {
    fn partial_cmp(&self, other: &Instant) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instant {
    fn cmp(&self, other: &Instant) -> CmpOrdering {
        match (self.0, other.0) {
            (Repr::Real(a), Repr::Real(b)) => a.cmp(&b),
            (Repr::Virtual(a), Repr::Virtual(b)) => a.cmp(&b),
            _ => mixed_repr(),
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        self.checked_add(rhs)
            .expect("overflow when adding duration to instant")
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        self.checked_sub(rhs)
            .expect("underflow when subtracting duration from instant")
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

fn mixed_repr() -> ! {
    panic!(
        "cannot mix a real-clock Instant with a virtual-clock Instant: one was \
         created inside a model run and the other outside it"
    )
}

//! Drop-in replacements for the `std::sync` subset the workspace uses.
//!
//! Outside a model run every type here defers to its `std` counterpart with
//! zero behavioral difference. Inside a model run (a thread spawned by
//! [`crate::Explorer::check`] or [`crate::thread::spawn`] under one), every
//! visible operation — acquire, release, atomic access, condvar park and
//! notify — first passes a scheduling decision point, so the explorer
//! controls exactly which thread performs the next visible step.
//!
//! The shim owns *blocking and ordering*; it does not reimplement the
//! primitives. A model-mode `lock()` first wins exclusivity from the
//! scheduler (blocking means parking in the scheduler, never in the OS),
//! then takes the real `std::sync::Mutex` uncontended underneath. That
//! keeps the crate `#![forbid(unsafe_code)]`, and poisoning falls out for
//! free: a panicking thread drops the real guard, the real mutex poisons,
//! and the next locker sees `Err(PoisonError)` exactly as with `std`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub use std::sync::{Arc, LockResult, PoisonError, Weak};

use crate::runtime::{self, Scheduler};

/// (scheduler, object id, model thread id) captured when a guard was taken
/// under a scheduler; `None` for plain `std` operation.
type Ctx = Option<(Arc<Scheduler>, usize, usize)>;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// `std::sync::Mutex` with scheduler-controlled blocking in model runs.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = match runtime::context() {
            None => None,
            Some((sched, me)) => {
                let id = runtime::object_id(&self.inner);
                sched.mutex_lock(id, me);
                Some((sched, id, me))
            }
        };
        rebuild_mutex(self, self.inner.lock(), ctx)
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]; releases shim-level ownership after the real guard.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    ctx: Ctx,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Takes the guard apart without running `Drop` (used by condvar
    /// waits, which hand the release to the scheduler themselves).
    fn dissolve(mut self) -> (&'a Mutex<T>, Option<std::sync::MutexGuard<'a, T>>, Ctx) {
        let lock = self.lock;
        let inner = self.inner.take();
        let ctx = self.ctx.take();
        std::mem::forget(self);
        (lock, inner, ctx)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard dissolved")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard dissolved")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real guard first (so the mutex is actually free), then the shim
        // release (which may schedule another thread straight into it).
        drop(self.inner.take());
        if let Some((sched, id, me)) = self.ctx.take() {
            sched.mutex_unlock(id, me);
        }
    }
}

fn rebuild_mutex<'a, T: ?Sized>(
    lock: &'a Mutex<T>,
    res: LockResult<std::sync::MutexGuard<'a, T>>,
    ctx: Ctx,
) -> LockResult<MutexGuard<'a, T>> {
    match res {
        Ok(inner) => Ok(MutexGuard {
            lock,
            inner: Some(inner),
            ctx,
        }),
        Err(poison) => Err(PoisonError::new(MutexGuard {
            lock,
            inner: Some(poison.into_inner()),
            ctx,
        })),
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_timeout`]; mirrors `std::sync::WaitTimeoutResult`
/// (whose constructor is private, hence the local type).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// `std::sync::Condvar` with scheduler-controlled parking in model runs.
///
/// Under a scheduler, timed waits never consult the OS clock: a timeout is
/// a *scheduling choice* that advances the model's virtual clock past the
/// deadline, so deadline paths (e.g. detach-on-expiry) are explored like
/// any other interleaving. The scheduler may also inject spurious wakeups,
/// within the explorer's configured budget.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[must_use]
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (lock, inner, ctx) = guard.dissolve();
        match ctx {
            None => {
                let inner = inner.expect("guard dissolved");
                rebuild_mutex(lock, self.inner.wait(inner), None)
            }
            Some((sched, mutex_id, me)) => {
                drop(inner);
                let cv_id = runtime::object_id(&self.inner);
                let _ = sched.condvar_wait(cv_id, mutex_id, me, None);
                sched.mutex_relock(mutex_id, me);
                rebuild_mutex(lock, lock.inner.lock(), Some((sched, mutex_id, me)))
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (lock, inner, ctx) = guard.dissolve();
        match ctx {
            None => {
                let inner = inner.expect("guard dissolved");
                match self.inner.wait_timeout(inner, timeout) {
                    Ok((g, t)) => {
                        let g = rebuild_mutex(lock, Ok(g), None)
                            .unwrap_or_else(PoisonError::into_inner);
                        Ok((g, WaitTimeoutResult(t.timed_out())))
                    }
                    Err(poison) => {
                        let (g, t) = poison.into_inner();
                        let g = rebuild_mutex(lock, Ok(g), None)
                            .unwrap_or_else(PoisonError::into_inner);
                        Err(PoisonError::new((g, WaitTimeoutResult(t.timed_out()))))
                    }
                }
            }
            Some((sched, mutex_id, me)) => {
                drop(inner);
                let cv_id = runtime::object_id(&self.inner);
                let timed_out = sched.condvar_wait(cv_id, mutex_id, me, Some(timeout));
                sched.mutex_relock(mutex_id, me);
                match rebuild_mutex(lock, lock.inner.lock(), Some((sched, mutex_id, me))) {
                    Ok(g) => Ok((g, WaitTimeoutResult(timed_out))),
                    Err(poison) => Err(PoisonError::new((
                        poison.into_inner(),
                        WaitTimeoutResult(timed_out),
                    ))),
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match runtime::context() {
            None => self.inner.notify_one(),
            Some((sched, me)) => {
                sched.condvar_notify(runtime::object_id(&self.inner), me, false);
            }
        }
    }

    pub fn notify_all(&self) {
        match runtime::context() {
            None => self.inner.notify_all(),
            Some((sched, me)) => {
                sched.condvar_notify(runtime::object_id(&self.inner), me, true);
            }
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// `std::sync::RwLock` with scheduler-controlled blocking in model runs.
/// Writer-preference is not modeled: any admissible reader/writer may be
/// scheduled, which over-approximates real platforms (finds more bugs).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let ctx = match runtime::context() {
            None => None,
            Some((sched, me)) => {
                let id = runtime::object_id(&self.inner);
                sched.rw_read_lock(id, me);
                Some((sched, id, me))
            }
        };
        match self.inner.read() {
            Ok(inner) => Ok(RwLockReadGuard {
                inner: Some(inner),
                ctx,
            }),
            Err(poison) => Err(PoisonError::new(RwLockReadGuard {
                inner: Some(poison.into_inner()),
                ctx,
            })),
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let ctx = match runtime::context() {
            None => None,
            Some((sched, me)) => {
                let id = runtime::object_id(&self.inner);
                sched.rw_write_lock(id, me);
                Some((sched, id, me))
            }
        };
        match self.inner.write() {
            Ok(inner) => Ok(RwLockWriteGuard {
                inner: Some(inner),
                ctx,
            }),
            Err(poison) => Err(PoisonError::new(RwLockWriteGuard {
                inner: Some(poison.into_inner()),
                ctx,
            })),
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    ctx: Ctx,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard dissolved")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((sched, id, me)) = self.ctx.take() {
            sched.rw_read_unlock(id, me);
        }
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    ctx: Ctx,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard dissolved")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard dissolved")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((sched, id, me)) = self.ctx.take() {
            sched.rw_write_unlock(id, me);
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Atomics whose every access is a scheduling point in model runs.
///
/// Under the scheduler the run is explored *sequentially consistently*:
/// one thread executes at a time and every access is globally ordered, so
/// the declared [`Ordering`](std::sync::atomic::Ordering) cannot weaken
/// anything. This is a sound under-approximation — any violation found is
/// real; bugs that require non-SC reordering are out of scope and must be
/// justified with `// ordering:` audit comments (enforced by `xtask lint`).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::runtime;

    fn sync_point() {
        if let Some((sched, me)) = runtime::context() {
            sched.yield_point(me);
        }
    }

    macro_rules! int_atomic {
        ($name:ident, $std:ident, $int:ty) => {
            /// Scheduler-aware wrapper over the `std` atomic of the same
            /// name; see the module docs for the model-run semantics.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                #[must_use]
                pub const fn new(value: $int) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(value),
                    }
                }

                #[must_use]
                pub fn load(&self, order: Ordering) -> $int {
                    sync_point();
                    self.inner.load(order)
                }

                pub fn store(&self, value: $int, order: Ordering) {
                    sync_point();
                    self.inner.store(value, order);
                }

                pub fn swap(&self, value: $int, order: Ordering) -> $int {
                    sync_point();
                    self.inner.swap(value, order)
                }

                pub fn fetch_add(&self, value: $int, order: Ordering) -> $int {
                    sync_point();
                    self.inner.fetch_add(value, order)
                }

                pub fn fetch_sub(&self, value: $int, order: Ordering) -> $int {
                    sync_point();
                    self.inner.fetch_sub(value, order)
                }

                pub fn fetch_max(&self, value: $int, order: Ordering) -> $int {
                    sync_point();
                    self.inner.fetch_max(value, order)
                }

                pub fn fetch_min(&self, value: $int, order: Ordering) -> $int {
                    sync_point();
                    self.inner.fetch_min(value, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    sync_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn get_mut(&mut self) -> &mut $int {
                    self.inner.get_mut()
                }

                #[must_use]
                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicU64, AtomicU64, u64);
    int_atomic!(AtomicUsize, AtomicUsize, usize);
    int_atomic!(AtomicI64, AtomicI64, i64);

    /// Scheduler-aware `AtomicBool`; see the module docs.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        #[must_use]
        pub const fn new(value: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(value),
            }
        }

        #[must_use]
        pub fn load(&self, order: Ordering) -> bool {
            sync_point();
            self.inner.load(order)
        }

        pub fn store(&self, value: bool, order: Ordering) {
            sync_point();
            self.inner.store(value, order);
        }

        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            sync_point();
            self.inner.swap(value, order)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            sync_point();
            self.inner.compare_exchange(current, new, success, failure)
        }

        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }

        #[must_use]
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }
}

//! Schedule exploration: bounded-exhaustive DFS and seeded random modes,
//! plus deterministic replay of a recorded trace.
//!
//! A schedule is the sequence of `(chosen, arity)` decisions the scheduler
//! took (see [`crate::runtime`]). DFS enumerates schedules by backtracking
//! over that sequence: after a run records decisions `d_0 … d_k`, the next
//! run replays the longest prefix whose final decision can be incremented
//! (`chosen + 1 < arity`) and lets the scheduler descend leftmost (always
//! candidate 0) from there. When no prefix can be incremented, the space —
//! as pruned by the preemption bound — is exhausted.
//!
//! Random mode drives each run from a SplitMix64 stream seeded with
//! `base_seed + run_index`; a failure report prints the seed *and* the
//! recorded trace, and either replays the identical interleaving.

use std::sync::Arc;

use crate::runtime::{run_once, RunConfig, RunPolicy};

/// How [`Explorer::check`] walks the schedule space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Dfs,
    Random { seed: u64 },
}

/// Builder for a model-checking run over a closure.
///
/// ```
/// use quclear_sched::{Explorer, sync::{Arc, Mutex}, thread};
///
/// let report = Explorer::dfs().max_schedules(500).check(|| {
///     let m = Arc::new(Mutex::new(0u32));
///     let m2 = Arc::clone(&m);
///     let t = thread::spawn(move || *m2.lock().unwrap() += 1);
///     *m.lock().unwrap() += 1;
///     t.join().unwrap();
///     assert_eq!(*m.lock().unwrap(), 2);
/// });
/// report.assert_passed();
/// assert!(report.schedules > 1); // multiple interleavings really ran
/// ```
#[derive(Clone, Debug)]
pub struct Explorer {
    mode: Mode,
    config: RunConfig,
    max_schedules: usize,
}

impl Explorer {
    /// Bounded-exhaustive DFS. Use for small models (2–3 threads, a few
    /// operations each); combine with [`Explorer::max_schedules`] as a
    /// safety net. Models explored this way must be deterministic apart
    /// from scheduling — in particular, avoid randomized hashing deciding
    /// control flow (e.g. use single-shard caches).
    pub fn dfs() -> Explorer {
        Explorer {
            mode: Mode::Dfs,
            config: RunConfig::default(),
            max_schedules: 100_000,
        }
    }

    /// Seeded random (PCT-style) exploration: `runs` schedules drawn from
    /// seeds `seed, seed+1, …`. Use for models too large for DFS.
    pub fn random(seed: u64, runs: usize) -> Explorer {
        Explorer {
            mode: Mode::Random { seed },
            config: RunConfig::default(),
            max_schedules: runs,
        }
    }

    /// Caps the number of schedules explored (DFS safety net / random run
    /// count).
    #[must_use]
    pub fn max_schedules(mut self, n: usize) -> Explorer {
        self.max_schedules = n;
        self
    }

    /// Decision points allowed per run before failing as a livelock.
    #[must_use]
    pub fn max_steps(mut self, n: usize) -> Explorer {
        self.config.max_steps = n;
        self
    }

    /// Preemption bound per run (default 2). Raising it grows the DFS
    /// space combinatorially but covers more aggressive interleavings.
    #[must_use]
    pub fn max_preemptions(mut self, n: usize) -> Explorer {
        self.config.max_preemptions = n;
        self
    }

    /// Spurious condvar wakeups the scheduler may inject per run
    /// (default 1; 0 disables them).
    #[must_use]
    pub fn spurious_wakeups(mut self, n: u32) -> Explorer {
        self.config.spurious_wakeups = n;
        self
    }

    /// Explores the model and returns a [`Report`]. The closure runs once
    /// per schedule, on a fresh root thread each time; everything it
    /// captures must be `Send + Sync` and re-created inside (the closure is
    /// the whole model: build state, spawn shim threads, join, assert).
    pub fn check<F>(&self, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        match self.mode {
            Mode::Random { seed } => {
                let mut schedules = 0usize;
                for i in 0..self.max_schedules {
                    let run_seed = seed.wrapping_add(i as u64);
                    let outcome =
                        run_once(self.config, RunPolicy::random(run_seed), Arc::clone(&model));
                    schedules += 1;
                    if let Some(message) = outcome.failure {
                        return Self::fail_report(
                            message,
                            Some(run_seed),
                            &outcome.decisions,
                            schedules,
                        );
                    }
                }
                Report {
                    schedules,
                    failure: None,
                    exhausted: false,
                }
            }
            Mode::Dfs => {
                let mut prefix: Vec<u16> = Vec::new();
                let mut schedules = 0usize;
                loop {
                    if schedules >= self.max_schedules {
                        return Report {
                            schedules,
                            failure: None,
                            exhausted: false,
                        };
                    }
                    let outcome = run_once(
                        self.config,
                        RunPolicy::prefix(prefix.clone()),
                        Arc::clone(&model),
                    );
                    schedules += 1;
                    if outcome.diverged {
                        return Self::fail_report(
                            "model diverged from recorded schedule: control flow depends on \
                             nondeterminism outside the scheduler (randomized hashing, real \
                             time, ...) — make the model schedule-deterministic or use \
                             Explorer::random"
                                .to_string(),
                            None,
                            &outcome.decisions,
                            schedules,
                        );
                    }
                    if let Some(message) = outcome.failure {
                        return Self::fail_report(message, None, &outcome.decisions, schedules);
                    }
                    // Backtrack: longest prefix whose last decision has an
                    // unexplored sibling.
                    let mut next = outcome.decisions;
                    loop {
                        match next.pop() {
                            None => {
                                return Report {
                                    schedules,
                                    failure: None,
                                    exhausted: true,
                                };
                            }
                            Some((chosen, arity)) => {
                                if chosen + 1 < arity {
                                    next.push((chosen + 1, arity));
                                    break;
                                }
                            }
                        }
                    }
                    prefix = next.iter().map(|&(c, _)| c).collect();
                }
            }
        }
    }

    fn fail_report(
        message: String,
        seed: Option<u64>,
        decisions: &[(u16, u16)],
        schedules: usize,
    ) -> Report {
        Report {
            schedules,
            failure: Some(Failure {
                message,
                seed,
                trace: format_trace(decisions),
            }),
            exhausted: false,
        }
    }
}

/// A violation found by exploration, with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Rendered panic / deadlock / divergence message.
    pub message: String,
    /// Seed of the failing run (random mode only).
    pub seed: Option<u64>,
    /// Dot-separated decision trace; feed to [`Explorer::replay_with`] (or
    /// a `RunPolicy` prefix) to re-execute the identical interleaving.
    pub trace: String,
}

/// Outcome of [`Explorer::check`].
#[derive(Clone, Debug)]
pub struct Report {
    /// Interleavings actually executed.
    pub schedules: usize,
    /// First violation found, if any (exploration stops at the first).
    pub failure: Option<Failure>,
    /// DFS only: true when the bounded space was fully enumerated (rather
    /// than cut off by [`Explorer::max_schedules`]).
    pub exhausted: bool,
}

impl Report {
    /// Panics with a replay-ready report if any schedule failed.
    pub fn assert_passed(&self) {
        if let Some(f) = &self.failure {
            let seed = f.seed.map_or_else(String::new, |s| format!(" seed={s}"));
            panic!(
                "model check failed after {} schedule(s){seed}\n  trace: {}\n  {}",
                self.schedules, f.trace, f.message
            );
        }
    }

    /// Panics unless a violation was found — for tests that pin down a
    /// known-bad model (regression models for fixed bugs run against the
    /// *buggy* logic re-expressed locally).
    pub fn assert_failed(&self) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "expected a violation but {} schedule(s) all passed",
                self.schedules
            )
        })
    }
}

impl Explorer {
    /// Replays one recorded trace against `model` and returns its report.
    /// The trace must come from a [`Failure`] of the same model.
    pub fn replay_with<F>(&self, trace: &str, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let outcome = run_once(self.config, RunPolicy::prefix(parse_trace(trace)), model);
        if outcome.diverged {
            return Self::fail_report(
                "replay diverged from the recorded schedule: the model (or the trace) does \
                 not match the run that produced it"
                    .to_string(),
                None,
                &outcome.decisions,
                1,
            );
        }
        Report {
            schedules: 1,
            failure: outcome.failure.map(|message| Failure {
                message,
                seed: None,
                trace: format_trace(&outcome.decisions),
            }),
            exhausted: false,
        }
    }
}

fn format_trace(decisions: &[(u16, u16)]) -> String {
    decisions
        .iter()
        .map(|&(c, _)| c.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

fn parse_trace(trace: &str) -> Vec<u16> {
    trace
        .split('.')
        .filter(|s| !s.is_empty())
        .map(|s| {
            // A corrupted token must not silently replay a different
            // schedule: defaulting would break the bit-exact replay
            // contract, so reject the trace outright.
            s.parse::<u16>().unwrap_or_else(|_| {
                panic!("malformed schedule trace: token {s:?} in {trace:?} is not a u16")
            })
        })
        .collect()
}

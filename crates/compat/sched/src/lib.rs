//! quclear-sched: a deterministic concurrency model checker.
//!
//! Loom/shuttle-style schedule exploration for the workspace's concurrent
//! machinery, built in the compat-shim discipline: no dependencies, no
//! `unsafe`, and drop-in replacements for exactly the `std::sync` /
//! `std::time` subset the workspace uses.
//!
//! # How it works
//!
//! A model is a closure. [`Explorer::check`] runs it once per *schedule*:
//! real OS threads execute it, but a controlled scheduler lets only one
//! run at a time and chooses, at every visible operation (lock, unlock,
//! atomic access, condvar park/notify, spawn/join), which thread performs
//! the next step. The sequence of choices is recorded, so
//!
//! * **DFS mode** ([`Explorer::dfs`]) backtracks over the choice tree and
//!   enumerates every interleaving (bounded by a preemption budget and a
//!   schedule cap), and
//! * **random mode** ([`Explorer::random`]) samples schedules from seeds,
//!   PCT-style, for models too large to enumerate —
//!
//! and any failure replays exactly: the report carries the seed and the
//! decision trace, and [`Explorer::replay_with`] re-executes it.
//!
//! Timeouts are scheduler choices against a virtual clock (no wall time in
//! models — see [`time::Instant`]), condvars get budget-bounded spurious
//! wakeups, and a panicking thread poisons locks exactly as `std` does, so
//! unwind-path invariants (poison recovery, RAII guards) are explorable.
//!
//! # Writing a model
//!
//! Build all state inside the closure, spawn threads with
//! [`thread::spawn`], join them, and assert the invariant at the end (or
//! inside the threads). Keep models small — 2–3 threads, a handful of
//! operations — and schedule-deterministic: control flow must not depend
//! on randomized hashing or other nondeterminism the scheduler cannot see
//! (DFS detects and reports divergence).
//!
//! ```
//! use quclear_sched::{sync::{Arc, Mutex}, thread, Explorer};
//!
//! let report = Explorer::dfs().check(|| {
//!     let m = Arc::new(Mutex::new(0u32));
//!     let m2 = Arc::clone(&m);
//!     let t = thread::spawn(move || *m2.lock().unwrap() += 1);
//!     *m.lock().unwrap() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*m.lock().unwrap(), 2);
//! });
//! report.assert_passed();
//! assert!(report.exhausted);
//! ```

#![forbid(unsafe_code)]

mod explore;
mod runtime;
pub mod sync;
pub mod thread;
pub mod time;

pub use explore::{Explorer, Failure, Report};

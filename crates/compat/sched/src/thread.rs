//! Thread spawning for models: children of a model thread join the model.
//!
//! [`spawn`] called from inside a model run registers the child with the
//! run's scheduler — it starts parked and runs only when scheduled, like
//! every other model thread. Called outside a model run it is exactly
//! `std::thread::spawn` (plus the panic-to-`join` indirection `std` already
//! has). Models use this module directly; production code keeps spawning
//! real threads however it already does.

use crate::runtime;

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<std::thread::Result<T>>,
    /// Model thread id when spawned under a scheduler.
    tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result (`Err` holds
    /// the panic payload, as with `std`). In a model run, the wait is a
    /// scheduler block: other threads interleave while this one waits.
    ///
    /// # Errors
    ///
    /// The spawned closure's panic payload, exactly like
    /// `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(tid) = self.tid {
            if let Some((sched, me)) = runtime::context() {
                sched.join_thread(tid, me);
            }
        }
        match self.inner.join() {
            Ok(result) => result,
            Err(payload) => Err(payload),
        }
    }

    /// Whether the thread has finished running.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Spawns a thread; inside a model run the child is a model thread driven
/// by the scheduler.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (inner, tid) = runtime::spawn_model_thread(f);
    JoinHandle { inner, tid }
}

/// A pure scheduling point: in a model run, lets the scheduler hand the
/// baton to any runnable thread; outside one, `std::thread::yield_now`.
pub fn yield_now() {
    match runtime::context() {
        None => std::thread::yield_now(),
        Some((sched, me)) => sched.yield_point(me),
    }
}

//! Derive macro for the offline `serde` stand-in.
//!
//! Supports `#[derive(Serialize)]` on structs with named fields (the only
//! shape the workspace serializes). The input is parsed directly from the
//! token stream — no `syn`/`quote`, since the build environment is offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        other => {
            return Err(format!(
                "Serialize derive supports only structs, found {other:?}"
            ))
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("Serialize derive does not support generic structs".to_string());
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "Serialize derive supports only structs with named fields, found {other:?}"
            ))
        }
    };

    let fields = parse_field_names(body)?;

    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "(::std::string::String::from({field:?}), ::serde::Serialize::to_json(&self.{field})),"
        ));
    }

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{\n\
                 ::serde::Json::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("generated code failed to parse: {e:?}"))
}

/// Extracts field names from the token stream inside the struct braces.
fn parse_field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;

    while i < tokens.len() {
        // Skip attributes (doc comments arrive as `#[doc = "…"]`).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        // Skip visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let Some(tree) = tokens.get(i) else { break };
        let TokenTree::Ident(field) = tree else {
            return Err(format!("expected field name, found {tree:?}"));
        };
        fields.push(field.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Skip the type: consume until a top-level comma, tracking angle
        // brackets so `BTreeMap<String, V>` stays one type.
        let mut angle_depth = 0i32;
        while let Some(tree) = tokens.get(i) {
            if let TokenTree::Punct(p) = tree {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }

    Ok(fields)
}

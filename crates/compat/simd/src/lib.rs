//! Offline stand-in for a portable-SIMD crate (`std::simd` / `wide`).
//!
//! The build environment of this repository has no network access (and the
//! stable toolchain has no `std::simd`), so this crate provides the small
//! SIMD surface the workspace's bit-plane kernels need: a [`Lane`] — a fixed
//! block of `W` consecutive `u64` words treated as one wide bitwise value —
//! plus slice kernels (`xor_into`, `and_popcount`, …) that walk a slice one
//! lane at a time with a scalar tail loop.
//!
//! Nothing here uses intrinsics: a `Lane` is a plain `[u64; W]` and every
//! operation is a fixed-length element-wise loop, which LLVM reliably
//! auto-vectorizes into SSE2/AVX2/NEON at `W ∈ {2, 4, 8}`. The point of the
//! abstraction is to give the compiler *provably* unit-stride, fixed-trip
//! inner loops (and the optimizer a single obvious unroll factor) instead of
//! hoping it widens a `zip` over `Vec<u64>` by itself — and to give the
//! workspace one `#[cfg]`-selectable knob for the width.
//!
//! # Width selection
//!
//! The crate-level constant [`LANE_WORDS`] is chosen by cargo feature —
//! `lane2` / `lane4` (default) / `lane8`, widest wins, scalar `1` when none
//! is enabled — and [`DefaultLane`] is the corresponding `Lane` type. The
//! default slice kernels (`xor_into`, …) are monomorphized at `LANE_WORDS`;
//! their `*_w` variants take the width as a const generic so tests can
//! compare **every** supported width against the scalar oracle in one build.
//!
//! # Examples
//!
//! ```
//! use simd::{Lane, LANE_WORDS};
//!
//! let a = Lane::<4>::splat(0b1010);
//! let b = Lane::<4>::splat(0b0110);
//! assert_eq!((a ^ b).popcount(), 4 * 2);
//!
//! let mut dst = vec![0u64; 100];
//! let src = vec![u64::MAX; 100];
//! simd::xor_into(&mut dst, &src);
//! assert_eq!(simd::popcount(&dst), 100 * 64);
//! assert!(LANE_WORDS.is_power_of_two());
//! ```

#![warn(missing_docs)]

use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// The configured lane width of the default kernels, in 64-bit words.
///
/// Selected by cargo feature (`lane2`/`lane4`/`lane8`; widest enabled wins);
/// `1` — the scalar `u64` fallback — when no width feature is enabled.
#[cfg(feature = "lane8")]
pub const LANE_WORDS: usize = 8;
/// The configured lane width of the default kernels, in 64-bit words.
#[cfg(all(feature = "lane4", not(feature = "lane8")))]
pub const LANE_WORDS: usize = 4;
/// The configured lane width of the default kernels, in 64-bit words.
#[cfg(all(feature = "lane2", not(any(feature = "lane4", feature = "lane8"))))]
pub const LANE_WORDS: usize = 2;
/// The configured lane width of the default kernels, in 64-bit words.
#[cfg(not(any(feature = "lane2", feature = "lane4", feature = "lane8")))]
pub const LANE_WORDS: usize = 1;

/// The [`Lane`] type at the configured [`LANE_WORDS`] width.
pub type DefaultLane = Lane<LANE_WORDS>;

/// A fixed block of `W` consecutive `u64` words treated as one wide bitwise
/// value: `64·W` bits with element-wise XOR/AND/OR/NOT, a masked-update
/// helper and a popcount.
///
/// `Lane` is `Copy` and lives entirely in registers; kernels load one lane
/// from a slice, combine lanes, and store the result back
/// ([`Lane::load`]/[`Lane::store`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lane<const W: usize>(pub [u64; W]);

impl<const W: usize> Default for Lane<W> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const W: usize> Lane<W> {
    /// The all-zero lane.
    pub const ZERO: Self = Lane([0; W]);

    /// Broadcasts one word into every element of the lane.
    #[inline]
    #[must_use]
    pub fn splat(word: u64) -> Self {
        Lane([word; W])
    }

    /// Loads the first `W` words of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < W`.
    #[inline]
    #[must_use]
    pub fn load(src: &[u64]) -> Self {
        let mut out = [0u64; W];
        out.copy_from_slice(&src[..W]);
        Lane(out)
    }

    /// Stores the lane into the first `W` words of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < W`.
    #[inline]
    pub fn store(self, dst: &mut [u64]) {
        dst[..W].copy_from_slice(&self.0);
    }

    /// Element-wise `self & !other` (AND-NOT, the sign-update primitive of
    /// the `S†`/`√X` conjugation kernels).
    #[inline]
    #[must_use]
    pub fn andnot(self, other: Self) -> Self {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(&other.0) {
            *o &= !b;
        }
        Lane(out)
    }

    /// Masked update: replaces the bits of `self` selected by `mask` with the
    /// corresponding bits of `other` (`(self & !mask) | (other & mask)`).
    #[inline]
    #[must_use]
    pub fn select(self, other: Self, mask: Self) -> Self {
        let mut out = self.0;
        for ((o, b), m) in out.iter_mut().zip(&other.0).zip(&mask.0) {
            *o = (*o & !m) | (b & m);
        }
        Lane(out)
    }

    /// Number of set bits across the whole lane.
    #[inline]
    #[must_use]
    pub fn popcount(self) -> u32 {
        let mut total = 0u32;
        for w in self.0 {
            total += w.count_ones();
        }
        total
    }

    /// Returns `true` if every bit of the lane is zero.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        let mut acc = 0u64;
        for w in self.0 {
            acc |= w;
        }
        acc == 0
    }
}

macro_rules! lane_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl<const W: usize> $trait for Lane<W> {
            type Output = Lane<W>;

            #[inline]
            fn $method(self, rhs: Lane<W>) -> Lane<W> {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(&rhs.0) {
                    *o $op r;
                }
                Lane(out)
            }
        }

        impl<const W: usize> $assign_trait for Lane<W> {
            #[inline]
            fn $assign_method(&mut self, rhs: Lane<W>) {
                for (o, r) in self.0.iter_mut().zip(&rhs.0) {
                    *o $op r;
                }
            }
        }
    };
}

lane_binop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);
lane_binop!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
lane_binop!(BitOr, bitor, BitOrAssign, bitor_assign, |=);

impl<const W: usize> Not for Lane<W> {
    type Output = Lane<W>;

    #[inline]
    fn not(self) -> Lane<W> {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = !*o;
        }
        Lane(out)
    }
}

// --- slice kernels ---------------------------------------------------------
//
// Every kernel walks the slices one lane at a time (`W` words) and finishes
// the remainder with a scalar loop, so any slice length — including lengths
// that are not a multiple of the lane width — is handled exactly. The `_w`
// variants take the width as a const generic; the unsuffixed functions are
// the same kernels monomorphized at the configured `LANE_WORDS`.

/// Asserts the shared length of a kernel's slices.
macro_rules! check_len {
    ($len:expr, $($s:expr),+) => {
        $(debug_assert_eq!($s.len(), $len, "simd kernel slice length mismatch");)+
    };
}

/// `dst[i] ^= src[i]` at lane width `W`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_into_w<const W: usize>(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "xor_into length mismatch");
    let len = dst.len();
    let mut i = 0;
    while i + W <= len {
        let a = Lane::<W>::load(&dst[i..]);
        let b = Lane::<W>::load(&src[i..]);
        (a ^ b).store(&mut dst[i..]);
        i += W;
    }
    while i < len {
        dst[i] ^= src[i];
        i += 1;
    }
}

/// `dst[i] &= src[i]` at lane width `W`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn and_into_w<const W: usize>(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "and_into length mismatch");
    let len = dst.len();
    let mut i = 0;
    while i + W <= len {
        let a = Lane::<W>::load(&dst[i..]);
        let b = Lane::<W>::load(&src[i..]);
        (a & b).store(&mut dst[i..]);
        i += W;
    }
    while i < len {
        dst[i] &= src[i];
        i += 1;
    }
}

/// `dst[i] |= src[i]` at lane width `W`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn or_into_w<const W: usize>(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "or_into length mismatch");
    let len = dst.len();
    let mut i = 0;
    while i + W <= len {
        let a = Lane::<W>::load(&dst[i..]);
        let b = Lane::<W>::load(&src[i..]);
        (a | b).store(&mut dst[i..]);
        i += W;
    }
    while i < len {
        dst[i] |= src[i];
        i += 1;
    }
}

/// `dst[i] ^= a[i] & b[i]` at lane width `W` (the word-parallel sign-update
/// primitive).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_and_into_w<const W: usize>(dst: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(dst.len(), a.len(), "xor_and_into length mismatch");
    assert_eq!(dst.len(), b.len(), "xor_and_into length mismatch");
    let len = dst.len();
    let mut i = 0;
    while i + W <= len {
        let d = Lane::<W>::load(&dst[i..]);
        let la = Lane::<W>::load(&a[i..]);
        let lb = Lane::<W>::load(&b[i..]);
        (d ^ (la & lb)).store(&mut dst[i..]);
        i += W;
    }
    while i < len {
        dst[i] ^= a[i] & b[i];
        i += 1;
    }
}

/// `dst[i] ^= a[i] & !b[i]` at lane width `W`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_andnot_into_w<const W: usize>(dst: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(dst.len(), a.len(), "xor_andnot_into length mismatch");
    assert_eq!(dst.len(), b.len(), "xor_andnot_into length mismatch");
    let len = dst.len();
    let mut i = 0;
    while i + W <= len {
        let d = Lane::<W>::load(&dst[i..]);
        let la = Lane::<W>::load(&a[i..]);
        let lb = Lane::<W>::load(&b[i..]);
        (d ^ la.andnot(lb)).store(&mut dst[i..]);
        i += W;
    }
    while i < len {
        dst[i] ^= a[i] & !b[i];
        i += 1;
    }
}

/// XORs every source slice into `dst` in **one pass over `dst`**: each
/// destination lane is loaded once, combined with the matching lane of every
/// source, and stored once — `k` sources cost one read of each source plus a
/// single read-modify-write of the destination, instead of `k` full passes.
///
/// This is the inner step of the packed GF(2) mat-mul
/// (`Gf2Matrix::mul_planes`): an output plane is the XOR of the input planes
/// its matrix row selects.
///
/// # Panics
///
/// Panics if any source length differs from `dst.len()`.
pub fn xor_many_into_w<const W: usize>(dst: &mut [u64], srcs: &[&[u64]]) {
    let len = dst.len();
    for s in srcs {
        assert_eq!(s.len(), len, "xor_many_into length mismatch");
    }
    let mut i = 0;
    while i + W <= len {
        let mut acc = Lane::<W>::load(&dst[i..]);
        for s in srcs {
            acc ^= Lane::<W>::load(&s[i..]);
        }
        acc.store(&mut dst[i..]);
        i += W;
    }
    while i < len {
        let mut acc = dst[i];
        for s in srcs {
            acc ^= s[i];
        }
        dst[i] = acc;
        i += 1;
    }
}

/// Total set bits of a slice at lane width `W`.
#[must_use]
pub fn popcount_w<const W: usize>(words: &[u64]) -> u64 {
    let len = words.len();
    let mut total = 0u64;
    let mut i = 0;
    while i + W <= len {
        total += u64::from(Lane::<W>::load(&words[i..]).popcount());
        i += W;
    }
    while i < len {
        total += u64::from(words[i].count_ones());
        i += 1;
    }
    total
}

/// Popcount of the element-wise AND of two slices (the symplectic-product /
/// commutation-check primitive), without materializing the AND.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn and_popcount_w<const W: usize>(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "and_popcount length mismatch");
    let len = a.len();
    let mut total = 0u64;
    let mut i = 0;
    while i + W <= len {
        let la = Lane::<W>::load(&a[i..]);
        let lb = Lane::<W>::load(&b[i..]);
        total += u64::from((la & lb).popcount());
        i += W;
    }
    while i < len {
        total += u64::from((a[i] & b[i]).count_ones());
        i += 1;
    }
    total
}

/// Popcount of the XOR of all source slices, fused: no parity buffer is ever
/// materialized — each lane of every source is read once and the running
/// popcount lives in registers.
///
/// This is the batched expectation estimator (`ShotBatch::parity_expectation`):
/// the XOR of an observable's support planes is the per-shot parity and its
/// popcount counts the `−1` outcomes. `len` gives the slice length so an
/// empty selection (`srcs = []`, parity identically zero) is well-defined.
///
/// # Panics
///
/// Panics if any source length differs from `len`.
#[must_use]
pub fn xor_popcount_w<const W: usize>(srcs: &[&[u64]], len: usize) -> u64 {
    for s in srcs {
        assert_eq!(s.len(), len, "xor_popcount length mismatch");
    }
    let Some((first, rest)) = srcs.split_first() else {
        return 0;
    };
    check_len!(len, first);
    let mut total = 0u64;
    let mut i = 0;
    while i + W <= len {
        let mut acc = Lane::<W>::load(&first[i..]);
        for s in rest {
            acc ^= Lane::<W>::load(&s[i..]);
        }
        total += u64::from(acc.popcount());
        i += W;
    }
    while i < len {
        let mut acc = first[i];
        for s in rest {
            acc ^= s[i];
        }
        total += u64::from(acc.count_ones());
        i += 1;
    }
    total
}

macro_rules! default_kernels {
    ($(
        $(#[$doc:meta])*
        fn $name:ident ( $($arg:ident : $ty:ty),* ) $(-> $ret:ty)? => $generic:ident;
    )+) => {
        $(
            $(#[$doc])*
            #[inline]
            pub fn $name($($arg: $ty),*) $(-> $ret)? {
                $generic::<LANE_WORDS>($($arg),*)
            }
        )+
    };
}

default_kernels! {
    /// [`xor_into_w`] at the configured [`LANE_WORDS`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn xor_into(dst: &mut [u64], src: &[u64]) => xor_into_w;
    /// [`and_into_w`] at the configured [`LANE_WORDS`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn and_into(dst: &mut [u64], src: &[u64]) => and_into_w;
    /// [`or_into_w`] at the configured [`LANE_WORDS`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn or_into(dst: &mut [u64], src: &[u64]) => or_into_w;
    /// [`xor_and_into_w`] at the configured [`LANE_WORDS`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn xor_and_into(dst: &mut [u64], a: &[u64], b: &[u64]) => xor_and_into_w;
    /// [`xor_andnot_into_w`] at the configured [`LANE_WORDS`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn xor_andnot_into(dst: &mut [u64], a: &[u64], b: &[u64]) => xor_andnot_into_w;
    /// [`xor_many_into_w`] at the configured [`LANE_WORDS`].
    ///
    /// # Panics
    ///
    /// Panics if any source length differs from `dst.len()`.
    fn xor_many_into(dst: &mut [u64], srcs: &[&[u64]]) => xor_many_into_w;
}

/// [`popcount_w`] at the configured [`LANE_WORDS`].
#[inline]
#[must_use]
pub fn popcount(words: &[u64]) -> u64 {
    popcount_w::<LANE_WORDS>(words)
}

/// [`and_popcount_w`] at the configured [`LANE_WORDS`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
#[must_use]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    and_popcount_w::<LANE_WORDS>(a, b)
}

/// [`xor_popcount_w`] at the configured [`LANE_WORDS`].
///
/// # Panics
///
/// Panics if any source length differs from `len`.
#[inline]
#[must_use]
pub fn xor_popcount(srcs: &[&[u64]], len: usize) -> u64 {
    xor_popcount_w::<LANE_WORDS>(srcs, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(len: usize, seed: u64) -> Vec<u64> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                s
            })
            .collect()
    }

    /// Runs `check` at every supported lane width.
    macro_rules! every_width {
        ($w:ident => $body:block) => {{
            const $w: usize = 1;
            $body
        }
        {
            const $w: usize = 2;
            $body
        }
        {
            const $w: usize = 4;
            $body
        }
        {
            const $w: usize = 8;
            $body
        }};
    }

    #[test]
    fn lane_ops_match_wordwise() {
        let a = Lane::<4>([1, 2, 3, u64::MAX]);
        let b = Lane::<4>([3, 2, 1, 0]);
        assert_eq!((a ^ b).0, [2, 0, 2, u64::MAX]);
        assert_eq!((a & b).0, [1, 2, 1, 0]);
        assert_eq!((a | b).0, [3, 2, 3, u64::MAX]);
        assert_eq!((!Lane::<2>([0, u64::MAX])).0, [u64::MAX, 0]);
        assert_eq!(a.andnot(b).0, [0, 0, 2, u64::MAX]);
        assert_eq!(a.popcount(), 1 + 1 + 2 + 64);
        assert!(Lane::<3>::ZERO.is_zero());
        assert!(!a.is_zero());
        let mut c = a;
        c ^= b;
        assert_eq!(c, a ^ b);
    }

    #[test]
    fn lane_select_replaces_masked_bits() {
        let a = Lane::<2>::splat(0b1100);
        let b = Lane::<2>::splat(0b1010);
        let m = Lane::<2>::splat(0b0110);
        assert_eq!(a.select(b, m).0, [0b1010, 0b1010]);
    }

    #[test]
    fn lane_load_store_roundtrip() {
        let src = data(10, 1);
        let lane = Lane::<8>::load(&src);
        let mut out = vec![0u64; 10];
        lane.store(&mut out);
        assert_eq!(&out[..8], &src[..8]);
        assert_eq!(&out[8..], &[0, 0]);
    }

    #[test]
    fn slice_kernels_match_scalar_at_every_width_and_odd_lengths() {
        for len in [0usize, 1, 3, 7, 8, 9, 31, 64, 65, 100] {
            let a = data(len, 7);
            let b = data(len, 11);
            let c = data(len, 13);
            every_width!(W => {
                let mut d = a.clone();
                xor_into_w::<W>(&mut d, &b);
                for i in 0..len {
                    assert_eq!(d[i], a[i] ^ b[i]);
                }
                let mut d = a.clone();
                and_into_w::<W>(&mut d, &b);
                for i in 0..len {
                    assert_eq!(d[i], a[i] & b[i]);
                }
                let mut d = a.clone();
                or_into_w::<W>(&mut d, &b);
                for i in 0..len {
                    assert_eq!(d[i], a[i] | b[i]);
                }
                let mut d = a.clone();
                xor_and_into_w::<W>(&mut d, &b, &c);
                for i in 0..len {
                    assert_eq!(d[i], a[i] ^ (b[i] & c[i]));
                }
                let mut d = a.clone();
                xor_andnot_into_w::<W>(&mut d, &b, &c);
                for i in 0..len {
                    assert_eq!(d[i], a[i] ^ (b[i] & !c[i]));
                }
                let mut d = a.clone();
                xor_many_into_w::<W>(&mut d, &[&b, &c, &b]);
                for i in 0..len {
                    assert_eq!(d[i], a[i] ^ c[i], "three sources, two cancel");
                }
                let want: u64 = a.iter().map(|w| u64::from(w.count_ones())).sum();
                assert_eq!(popcount_w::<W>(&a), want);
                let want: u64 = (0..len).map(|i| u64::from((a[i] & b[i]).count_ones())).sum();
                assert_eq!(and_popcount_w::<W>(&a, &b), want);
                let want: u64 = (0..len)
                    .map(|i| u64::from((a[i] ^ b[i] ^ c[i]).count_ones()))
                    .sum();
                assert_eq!(xor_popcount_w::<W>(&[&a, &b, &c], len), want);
                assert_eq!(xor_popcount_w::<W>(&[], len), 0);
            });
        }
    }

    #[test]
    fn default_kernels_use_the_configured_width() {
        assert!(matches!(LANE_WORDS, 1 | 2 | 4 | 8));
        let a = data(37, 3);
        let b = data(37, 5);
        let mut d = a.clone();
        xor_into(&mut d, &b);
        let mut e = a.clone();
        xor_into_w::<LANE_WORDS>(&mut e, &b);
        assert_eq!(d, e);
        assert_eq!(popcount(&a), popcount_w::<1>(&a));
        assert_eq!(and_popcount(&a, &b), and_popcount_w::<1>(&a, &b));
        let mut m = a.clone();
        xor_many_into(&mut m, &[&b]);
        assert_eq!(m, d);
        assert_eq!(xor_popcount(&[&a, &b], 37), popcount(&d));
        let mut o = a.clone();
        or_into(&mut o, &b);
        let mut an = a.clone();
        and_into(&mut an, &b);
        let mut x1 = a.clone();
        xor_and_into(&mut x1, &b, &a);
        let mut x2 = a.clone();
        xor_andnot_into(&mut x2, &b, &a);
        for i in 0..37 {
            assert_eq!(o[i], a[i] | b[i]);
            assert_eq!(an[i], a[i] & b[i]);
            assert_eq!(x1[i], a[i] ^ (b[i] & a[i]));
            assert_eq!(x2[i], a[i] ^ (b[i] & !a[i]));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut d = vec![0u64; 4];
        xor_into(&mut d, &[0u64; 5]);
    }
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment of this repository has no network access, so this
//! crate implements the API subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! [`prop_assert!`]/[`prop_assert_eq!`], the [`Strategy`] trait with
//! `prop_map`, range and tuple strategies, [`collection::vec`], [`any`] and
//! [`Just`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports the generated inputs via
//!   `Debug` but is not minimized.
//! * **Deterministic seeding** — each test derives its RNG seed from the
//!   test name, so failures reproduce exactly in CI.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Everything a property test usually imports, via
/// `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the simulator-backed
        // suites fast while still exercising plenty of structure.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic test RNG (SplitMix64 seeded from the test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name`.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        self.next_u64() % bound
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u64 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded to keep arithmetic in tests well-behaved.
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<bool>()`, `any::<u8>()`, …
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// Strategy for vectors of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `len` (a `usize`, `Range<usize>` or `RangeInclusive<usize>`).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Skips the current case when the precondition does not hold.
///
/// Real proptest rejects the inputs and draws fresh ones; this stand-in
/// simply ends the case vacuously, which preserves soundness (no false
/// failures) at the cost of running fewer effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
}

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u8..100, b in 0u8..100) {
///         prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
///     }
/// }
/// # addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(::std::stringify!($name));
            for case in 0..config.cases {
                let ($($arg,)+) = (
                    $($crate::Strategy::generate(&($strat), &mut rng),)+
                );
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "property `{}` failed at case {}/{}:\n{}",
                        ::std::stringify!($name), case + 1, config.cases, message
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 2usize..9, f in -1.0f64..1.0) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Vectors respect the length range and mapping applies elementwise.
        #[test]
        fn vec_and_map(v in prop::collection::vec((0u8..4).prop_map(|b| b * 2), 1..=5)) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|x| x % 2 == 0 && *x < 8));
        }

        #[test]
        fn any_bool_and_just(b in any::<bool>(), j in Just(41usize)) {
            prop_assert!(usize::from(b) <= 1);
            prop_assert_eq!(j, 41);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

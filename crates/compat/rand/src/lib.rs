//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no network access, so this
//! crate implements exactly the `rand 0.8` API subset the workspace uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator is SplitMix64 —
//! deterministic, fast and statistically fine for tests, benchmarks and
//! synthetic workload generation (it is *not* cryptographically secure, and
//! neither stream matches the real `StdRng`).

#![warn(missing_docs)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    // 53 random mantissa bits, the standard conversion.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic for a given seed. The stream differs from the real
    /// `rand::rngs::StdRng` (ChaCha12), which only matters if byte-exact
    /// reproduction of upstream fixtures is required.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let w = rng.gen_range(0..=4u8);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no network access, so this
//! crate implements the API subset the workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`]
//! and [`black_box`].
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! `sample_size` samples; each sample runs the closure enough times to take
//! roughly [`SAMPLE_TARGET`]. Median, minimum and mean per-iteration times
//! are printed in a criterion-like format. Passing `--test` (as `cargo test`
//! does for harness-less targets) runs every closure exactly once. Setting
//! the `CRITERION_JSON` environment variable to a path appends one JSON line
//! per benchmark: `{"id": .., "median_ns": .., "min_ns": .., "mean_ns": ..}`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measurement sample.
pub const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.samples_ns = vec![0.0];
            return;
        }
        // Calibrate: how many iterations fit in one sample window?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        // Warm-up.
        for _ in 0..iters_per_sample.min(100) {
            black_box(routine());
        }

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }
}

/// Summary statistics of one benchmark run, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Minimum per-iteration time.
    pub min_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
}

fn summarize(samples: &[f64]) -> Summary {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    Summary {
        median_ns: median,
        min_ns: min,
        mean_ns: mean,
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 50,
            test_mode: self.test_mode,
        }
    }

    /// Benchmarks a single closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let test_mode = self.test_mode;
        let mut group = self.benchmark_group("");
        group.run(id.to_string(), 50, test_mode, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let (sample_size, test_mode) = (self.sample_size, self.test_mode);
        self.run(id.to_string(), sample_size, test_mode, |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let (sample_size, test_mode) = (self.sample_size, self.test_mode);
        self.run(id.to_string(), sample_size, test_mode, f);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        sample_size: usize,
        test_mode: bool,
        mut f: F,
    ) {
        let full_id = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            test_mode,
            sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        if test_mode {
            println!("test {full_id} ... ok");
            return;
        }
        if bencher.samples_ns.is_empty() {
            println!("{full_id:<40} (no measurement: Bencher::iter never called)");
            return;
        }
        let summary = summarize(&bencher.samples_ns);
        println!(
            "{full_id:<40} time: [{} {} {}]",
            format_time(summary.min_ns),
            format_time(summary.median_ns),
            format_time(summary.mean_ns),
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"id\": \"{full_id}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}}}",
                    summary.median_ns, summary.min_ns, summary.mean_ns
                );
            }
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_orders_samples() {
        let s = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 2.0);
        assert!((s.mean_ns - 2.0).abs() < 1e-9);
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(12.0).contains("ns"));
        assert!(format_time(12_000.0).contains("µs"));
        assert!(format_time(12_000_000.0).contains("ms"));
        assert!(format_time(12_000_000_000.0).contains('s'));
    }

    #[test]
    fn bencher_runs_in_test_mode() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }
}

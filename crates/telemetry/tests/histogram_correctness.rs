//! Pins the histogram's quantile estimates to a naive sort-based oracle and
//! its snapshots to the coherence invariant under concurrent recording.
//!
//! The histogram promises estimates within the power-of-two bucket of the
//! true sample (≤2× relative error) and never above the observed max; the
//! oracle here computes exact rank statistics from the sorted samples and
//! checks both bounds across empty, single-sample, one-bucket, and
//! cross-bucket distributions.

use proptest::prelude::*;
use quclear_telemetry::{bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram};

/// Exact rank-statistic oracle: the value at rank `⌈q·n⌉` of the sorted
/// samples (the same nearest-rank definition the histogram estimates).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts the histogram estimate lands inside the power-of-two bucket of
/// the oracle's exact answer, for every probed quantile.
fn check_against_oracle(samples: &[u64]) -> Result<(), String> {
    let histogram = Histogram::new();
    for &v in samples {
        histogram.record(v);
    }
    let snap = histogram.snapshot();
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();

    prop_assert_eq!(snap.count(), samples.len() as u64);
    if samples.is_empty() {
        prop_assert_eq!(snap.quantile(0.5), 0);
        return Ok(());
    }
    prop_assert_eq!(snap.max(), *sorted.last().unwrap());
    // The histogram's sum wraps on overflow (atomic fetch_add semantics),
    // so the oracle wraps too.
    prop_assert_eq!(
        snap.sum(),
        samples.iter().fold(0u64, |acc, &v| acc.wrapping_add(v))
    );

    for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let exact = oracle_quantile(&sorted, q);
        let estimate = snap.quantile(q);
        let bucket = bucket_index(exact);
        prop_assert!(
            estimate >= bucket_lower_bound(bucket) && estimate <= bucket_upper_bound(bucket),
            "q={} exact={} (bucket {}) estimate={} outside [{}, {}]",
            q,
            exact,
            bucket,
            estimate,
            bucket_lower_bound(bucket),
            bucket_upper_bound(bucket)
        );
        prop_assert!(
            estimate <= snap.max(),
            "q={} estimate={} exceeds max={}",
            q,
            estimate,
            snap.max()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Narrow-range samples: most mass lands in a handful of buckets, with
    /// heavy per-bucket collisions exercising the interpolation path.
    #[test]
    fn quantiles_match_oracle_narrow(samples in prop::collection::vec(0u64..5_000, 0..200)) {
        check_against_oracle(&samples)?;
    }

    /// Wide-range samples spread across the full 64-bucket span (value =
    /// mantissa shifted by a random exponent).
    #[test]
    fn quantiles_match_oracle_wide(
        samples in prop::collection::vec((0u32..64, 1u64..1024), 0..150)
    ) {
        let values: Vec<u64> = samples
            .iter()
            .map(|&(shift, mantissa)| mantissa.checked_shl(shift).unwrap_or(u64::MAX))
            .collect();
        check_against_oracle(&values)?;
    }

    /// Degenerate distribution: every sample in one bucket.
    #[test]
    fn quantiles_match_oracle_single_bucket(
        base in 1024u64..2048,
        count in 1usize..100,
    ) {
        let samples: Vec<u64> = (0..count).map(|i| base + (i as u64 % 7)).collect();
        check_against_oracle(&samples)?;
    }
}

#[test]
fn oracle_agrees_on_empty_and_single() {
    check_against_oracle(&[]).unwrap();
    check_against_oracle(&[0]).unwrap();
    check_against_oracle(&[u64::MAX]).unwrap();
    check_against_oracle(&[42]).unwrap();
}

#[test]
fn oracle_agrees_on_cross_bucket_bimodal() {
    // Half the mass at microsecond scale, half at second scale — the
    // shape of a latency histogram with a slow tail.
    let mut samples = Vec::new();
    for i in 0..50u64 {
        samples.push(1_000 + i);
        samples.push(1_000_000_000 + i * 1_000);
    }
    check_against_oracle(&samples).unwrap();
}

/// Snapshot coherence under fire: with writer threads recording
/// continuously, every snapshot must satisfy `count == Σ bucket counts`
/// (the invariant the serve stats path relies on) and counts must be
/// monotone across snapshots.
#[test]
fn snapshots_stay_coherent_under_concurrent_recording() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 200_000;

    let histogram = Arc::new(Histogram::new());
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let histogram = Arc::clone(&histogram);
            std::thread::spawn(move || {
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(w as u64 + 1);
                for _ in 0..PER_WRITER {
                    // xorshift: cheap full-range values.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    histogram.record(x);
                }
            })
        })
        .collect();

    let reader = {
        let histogram = Arc::clone(&histogram);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last_count = 0u64;
            let mut snapshots = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = histogram.snapshot();
                let count = snap.count();
                let bucket_total: u64 = snap.buckets().iter().sum();
                assert_eq!(count, bucket_total, "count must equal Σ buckets");
                assert!(count >= last_count, "counts must be monotone");
                last_count = count;
                snapshots += 1;
            }
            snapshots
        })
    };

    for writer in writers {
        writer.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let snapshots_taken = reader.join().unwrap();
    assert!(snapshots_taken > 0);

    let final_snap = histogram.snapshot();
    assert_eq!(final_snap.count(), WRITERS as u64 * PER_WRITER);
    assert_eq!(final_snap.count(), final_snap.buckets().iter().sum::<u64>());
}

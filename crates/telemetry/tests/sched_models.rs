//! Schedule-exhaustive models for the telemetry primitives.
//!
//! Built only with `--features sched-model`: the crate's sync primitives
//! (see `src/sync.rs`) are routed through the `quclear-sched` deterministic
//! scheduler, so every test below explores thread interleavings exhaustively
//! (bounded DFS) instead of trusting whatever the OS scheduler happens to
//! produce. Run with:
//!
//! ```text
//! cargo test -p quclear-telemetry --features sched-model --test sched_models
//! ```

use quclear_sched::sync::atomic::{AtomicU64, Ordering};
use quclear_sched::sync::Arc;
use quclear_sched::{thread, Explorer};
use quclear_telemetry::{Gauge, Histogram};

/// Every sample a snapshot *counts* must be present in the snapshot's `sum`
/// and `max`: the documented contract is "`sum` and `max` may reflect a few
/// **more** samples than `count`", never fewer. The model checker originally
/// broke this invariant against the real `Histogram` (see
/// `buggy_bucket_first_record_order_is_detected` for the pinned bug); the
/// current sum-before-bucket record order upholds it in every interleaving.
#[test]
fn histogram_snapshot_never_undercounts_sum() {
    let report = Explorer::dfs().check(|| {
        let h = Arc::new(Histogram::new());
        let h2 = Arc::clone(&h);
        let recorder = thread::spawn(move || h2.record(1000));
        let snap = h.snapshot();
        if snap.count() == 1 {
            assert_eq!(snap.sum(), 1000, "counted sample missing from sum");
            assert_eq!(snap.max(), 1000, "counted sample missing from max");
        }
        recorder.join().unwrap();
        let settled = h.snapshot();
        assert_eq!(settled.count(), 1);
        assert_eq!(settled.sum(), 1000);
        assert_eq!(settled.max(), 1000);
    });
    report.assert_passed();
    assert!(report.exhausted, "model is small enough to enumerate fully");
    eprintln!(
        "histogram record/snapshot coherence: {} interleavings explored",
        report.schedules
    );
}

/// Pinned regression for the schedule bug the checker found in
/// `Histogram::record`: incrementing the bucket *before* adding to `sum`
/// (while `snapshot` reads buckets before `sum`) lets a snapshot count a
/// sample whose value is missing from `sum`, so `mean()` under-reports. The
/// pre-fix order is re-expressed here on raw atomics; the checker must still
/// find the violation, and the violation must replay from its trace.
#[test]
fn buggy_bucket_first_record_order_is_detected() {
    fn model() {
        let bucket = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let (b2, s2) = (Arc::clone(&bucket), Arc::clone(&sum));
        let recorder = thread::spawn(move || {
            // The pre-fix record order: count the sample, then its value.
            b2.fetch_add(1, Ordering::SeqCst);
            s2.fetch_add(1000, Ordering::SeqCst);
        });
        // The snapshot order (unchanged by the fix): buckets, then sum.
        let count = bucket.load(Ordering::SeqCst);
        let observed_sum = sum.load(Ordering::SeqCst);
        if count == 1 {
            assert_eq!(observed_sum, 1000, "counted sample missing from sum");
        }
        recorder.join().unwrap();
    }
    let report = Explorer::dfs().check(model);
    let failure = report.assert_failed().clone();
    assert!(failure.message.contains("missing from sum"));
    // The violation replays deterministically from its recorded trace.
    let replay = Explorer::dfs().replay_with(&failure.trace, model);
    let replayed = replay.failure.expect("replay must reproduce the violation");
    assert_eq!(replayed.message, failure.message);
}

/// `GaugeGuard` must restore the gauge on every unwind path, and a
/// concurrent observer must only ever read 0 or 1 while one guard cycles.
#[test]
fn gauge_guard_restores_on_every_unwind_path() {
    let report = Explorer::dfs().check(|| {
        let g = Arc::new(Gauge::new());
        let g2 = Arc::clone(&g);
        let worker = thread::spawn(move || {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = g2.track();
                panic!("unwind through the guard");
            }));
            assert!(caught.is_err());
        });
        // Observed at every explored interleaving point: in-flight count is
        // 0 or 1, never negative, never 2.
        let seen = g.get();
        assert!(seen == 0 || seen == 1, "gauge out of range: {seen}");
        worker.join().unwrap();
        assert_eq!(g.get(), 0, "guard must restore the gauge after unwind");
    });
    report.assert_passed();
    assert!(report.exhausted);
    eprintln!(
        "gauge-guard unwind safety: {} interleavings explored",
        report.schedules
    );
}

/// Two concurrent recorders + one snapshot: the snapshot's `count` is
/// coherent by construction (`count == Σ buckets`), bounded mid-flight, and
/// exact once both recorders joined.
#[test]
fn histogram_concurrent_records_settle_exactly() {
    let report = Explorer::dfs().check(|| {
        let h = Arc::new(Histogram::new());
        let (h1, h2) = (Arc::clone(&h), Arc::clone(&h));
        let r1 = thread::spawn(move || h1.record(8));
        let r2 = thread::spawn(move || h2.record(16));
        let mid = h.snapshot();
        assert!(mid.count() <= 2);
        assert!(mid.sum() <= 24);
        r1.join().unwrap();
        r2.join().unwrap();
        let settled = h.snapshot();
        assert_eq!(settled.count(), 2);
        assert_eq!(settled.sum(), 24);
        assert_eq!(settled.max(), 16);
    });
    report.assert_passed();
    eprintln!(
        "histogram two-recorder coherence: {} interleavings explored",
        report.schedules
    );
}

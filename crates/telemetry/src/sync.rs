//! Crate-local alias for the sync primitives the telemetry hot paths use.
//!
//! In production builds (the default) every name here is exactly its
//! `std::sync` counterpart — this module compiles away to re-exports. With
//! the `sched-model` feature the same names come from `quclear-sched`,
//! whose drop-in types route every acquire/release/atomic access through a
//! deterministic scheduler so the model-check suite
//! (`tests/sched_models.rs`) can explore interleavings exhaustively and
//! replay any violation. Production code must import sync primitives from
//! here, never from `std::sync` directly, or the checker cannot see them
//! (enforced by `cargo run -p xtask -- lint`).

#[cfg(feature = "sched-model")]
pub(crate) use quclear_sched::sync::{
    atomic, Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(not(feature = "sched-model"))]
pub(crate) use std::sync::{atomic, Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

//! Always-on observability for the QuCLEAR engine and serving stack.
//!
//! The ROADMAP's next steps — readiness-based serving against p99 targets,
//! resynthesis win/loss accounting — all need numbers, so this crate is the
//! measurement substrate the rest of the workspace records into. It follows
//! the repository's offline discipline: no `tracing`, no `prometheus` crate,
//! no global subscriber machinery — just atomics, one `RwLock` on the cold
//! registration path, and two exposition formats.
//!
//! The pieces:
//!
//! - [`Counter`] / [`Gauge`]: single-atomic scalars. [`Gauge::track`] gives
//!   a panic-safe RAII guard for "currently in flight" quantities.
//! - [`Histogram`]: 64 fixed power-of-two buckets, a three-relaxed-RMW
//!   record path (cheap enough to stay on in release builds — the
//!   `telemetry` bench in `quclear-bench` gates it under 100ns/op), and
//!   coherent snapshots with p50/p90/p99/max estimation.
//! - [`MetricsRegistry`]: names → shared metric handles. Registration is
//!   idempotent and returns the *same* cell, so bookkeeping reads (the
//!   engine's `stats()`) and metric exposition cannot drift apart.
//! - [`Span`] and the [`span!`] macro: RAII guards that record elapsed
//!   nanoseconds into a histogram on drop, optionally emitting a
//!   [`SlowEvent`] to a pluggable [`EventSink`] when a threshold is
//!   exceeded.
//! - [`MetricsSnapshot`]: plain-data snapshots that render as Prometheus
//!   text ([`MetricsSnapshot::to_prometheus_text`]) or cross the
//!   `quclear-serve` wire as JSON ([`MetricsSnapshot::to_json`] /
//!   [`MetricsSnapshot::from_json`]).
//!
//! # Example
//!
//! ```
//! use quclear_telemetry::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let hist = registry.histogram_labeled(
//!     "quclear_engine_stage_duration_ns",
//!     "engine pipeline stage latency",
//!     ("stage", "extract"),
//! );
//! for _ in 0..3 {
//!     let _span = registry.span_on(hist.clone(), "extract");
//!     // ... stage work ...
//! }
//! let snapshot = registry.snapshot();
//! let stage = snapshot
//!     .histogram("quclear_engine_stage_duration_ns", Some(("stage", "extract")))
//!     .unwrap();
//! assert_eq!(stage.count(), 3);
//! println!("{}", snapshot.to_prometheus_text());
//! ```

#![warn(missing_docs)]

mod histogram;
mod metric;
mod registry;
mod snapshot;
mod span;
mod sync;

pub use histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSnapshot, NUM_BUCKETS,
};
pub use metric::{Counter, Gauge, GaugeGuard};
pub use registry::MetricsRegistry;
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
pub use span::{EventSink, SlowEvent, Span};

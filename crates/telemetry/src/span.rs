//! RAII timing spans and slow-event sinks.
//!
//! A [`Span`] is the cheapest useful unit of tracing: it remembers when it
//! was created and, when dropped, records the elapsed nanoseconds into a
//! histogram. There is no subscriber machinery, no thread-local context
//! stack, no id allocation — a span is a start time plus an `Arc` to its
//! histogram. When a registry has an [`EventSink`] armed, spans that run at
//! least the configured threshold additionally hand the sink a structured
//! [`SlowEvent`], which is how "log every compile slower than 10ms" is
//! spelled without paying for formatting on the fast path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;

/// A structured record of a span that exceeded the slow threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowEvent {
    /// The span (and histogram) name.
    pub span: &'static str,
    /// How long the span ran, in nanoseconds.
    pub elapsed_ns: u64,
}

/// Receiver for [`SlowEvent`]s, installed via
/// [`crate::MetricsRegistry::set_event_sink`].
///
/// Called on the instrumented thread inside the span guard's drop:
/// implementations should be cheap (push to a channel, append a line) and
/// must not panic.
pub trait EventSink: Send + Sync + std::fmt::Debug {
    /// Handles one slow-span record.
    fn record(&self, event: &SlowEvent);
}

/// RAII guard that records its lifetime into a histogram on drop.
///
/// Created via [`crate::span!`], [`crate::MetricsRegistry::span_named`], or
/// — on hot paths that hold a histogram handle already —
/// [`crate::MetricsRegistry::span_on`].
///
/// # Examples
///
/// ```
/// use quclear_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// {
///     let _span = registry.span_named("compile");
///     // ... timed work ...
/// } // drop records elapsed ns into the `compile` histogram
/// assert_eq!(registry.snapshot().histogram("compile", None).unwrap().count(), 1);
/// ```
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    name: &'static str,
    slow: Option<(Arc<dyn EventSink>, u64)>,
    start: Instant,
}

impl Span {
    pub(crate) fn new(
        histogram: Arc<Histogram>,
        name: &'static str,
        slow: Option<(Arc<dyn EventSink>, u64)>,
        start: Instant,
    ) -> Self {
        Span {
            histogram,
            name,
            slow,
            start,
        }
    }

    /// The span's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Time elapsed since the span started (it keeps running until drop).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histogram.record(elapsed_ns);
        if let Some((sink, threshold_ns)) = &self.slow {
            if elapsed_ns >= *threshold_ns {
                sink.record(&SlowEvent {
                    span: self.name,
                    elapsed_ns,
                });
            }
        }
    }
}

/// Starts a [`Span`] by name.
///
/// `span!("compile")` times into the [global
/// registry](crate::MetricsRegistry::global); `span!(registry, "compile")`
/// times into an explicit one. Bind the guard — `let _span = span!(...)` —
/// so it lives until the end of the scope (`let _ =` would drop it
/// immediately and record ~0ns).
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.span_named($name)
    };
    ($name:expr) => {
        $crate::MetricsRegistry::global().span_named($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct CapturingSink {
        events: Mutex<Vec<SlowEvent>>,
    }

    impl EventSink for CapturingSink {
        fn record(&self, event: &SlowEvent) {
            self.events.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn span_records_into_its_histogram_on_drop() {
        let registry = MetricsRegistry::new();
        {
            let span = registry.span_named("stage");
            assert_eq!(span.name(), "stage");
        }
        let snap = registry.snapshot().histogram("stage", None).unwrap();
        assert_eq!(snap.count(), 1);
    }

    #[test]
    fn slow_spans_reach_the_sink_and_fast_ones_do_not() {
        let registry = MetricsRegistry::new();
        let sink = Arc::new(CapturingSink::default());
        registry.set_event_sink(Arc::clone(&sink) as Arc<dyn EventSink>, Duration::ZERO);
        drop(registry.span_named("always_slow"));
        assert_eq!(sink.events.lock().unwrap().len(), 1);
        assert_eq!(sink.events.lock().unwrap()[0].span, "always_slow");

        registry.set_event_sink(
            Arc::clone(&sink) as Arc<dyn EventSink>,
            Duration::from_secs(3600),
        );
        drop(registry.span_named("never_slow"));
        assert_eq!(sink.events.lock().unwrap().len(), 1, "threshold not met");

        registry.clear_event_sink();
        drop(registry.span_named("always_slow"));
        assert_eq!(sink.events.lock().unwrap().len(), 1, "sink disarmed");
    }

    #[test]
    fn span_macro_reaches_both_registries() {
        let registry = MetricsRegistry::new();
        drop(span!(registry, "local_span"));
        assert!(registry.snapshot().histogram("local_span", None).is_some());
        drop(span!("global_span_macro_test"));
        assert!(MetricsRegistry::global()
            .snapshot()
            .histogram("global_span_macro_test", None)
            .is_some());
    }
}

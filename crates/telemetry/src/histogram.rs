//! Lock-free log-bucketed histograms.
//!
//! A [`Histogram`] spreads recorded values over [`NUM_BUCKETS`] fixed
//! power-of-two buckets: bucket `0` holds the value `0`, bucket `i ≥ 1`
//! holds values in `[2^(i-1), 2^i)`, and the last bucket is unbounded
//! above. The record path is three atomic read-modify-writes (running sum,
//! running max, then the bucket count) — no locks, no allocation, no
//! branches beyond the bucket-index computation — so instrumentation can
//! stay enabled in release builds on hot paths.
//!
//! Quantiles are *estimated* from a [`HistogramSnapshot`]: the bucket
//! containing the requested rank is located exactly, and the value is
//! interpolated linearly within that bucket's range. The estimate is
//! therefore always inside the (power-of-two) bucket that contains the true
//! sample — a relative error bound of at most 2× — which is plenty for
//! latency dashboards and regression gates (property-tested against a
//! sort-based oracle in `tests/histogram_correctness.rs`).

use std::time::Duration;

use crate::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero, then one per power of two up to the
/// unbounded top bucket (`[2^62, u64::MAX]`).
pub const NUM_BUCKETS: usize = 64;

/// The bucket a value lands in: `0 → 0`, otherwise `⌊log2(v)⌋ + 1`, capped
/// at the top bucket.
#[must_use]
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// Inclusive lower bound of a bucket's range.
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// Exclusive upper bound of a bucket's range (saturating for the top
/// bucket, which is unbounded).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << index
    }
}

/// A lock-free histogram of `u64` samples (by convention: nanoseconds).
///
/// Concurrent [`Histogram::record`] calls never serialize; snapshots are
/// taken with [`Histogram::snapshot`] and are *coherent by construction*:
/// the snapshot's total count is defined as the sum of its bucket counts,
/// so `count == Σ buckets` holds in every snapshot no matter how many
/// threads are recording mid-read (a threaded test pins this).
///
/// # Examples
///
/// ```
/// use quclear_telemetry::Histogram;
///
/// let h = Histogram::new();
/// for v in [10, 20, 30, 40, 1000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 5);
/// assert_eq!(snap.max(), 1000);
/// assert!(snap.quantile(0.5) >= 16 && snap.quantile(0.5) <= 32);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: three atomic RMWs.
    ///
    /// The sample's *value* lands in `sum`/`max` **before** its bucket count
    /// is published: a snapshot that counts the sample therefore always sees
    /// its value too, so `sum`/`max` can run ahead of `count` but never
    /// behind it. (The model checker found the inverted order producing
    /// snapshots with `count == 1, sum == 0` — see
    /// `tests/sched_models.rs`.)
    #[inline]
    pub fn record(&self, value: u64) {
        // ordering: Relaxed — the Release bucket publish below carries
        // these additions to any snapshot that counts this sample.
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        // ordering: Release publishes the sum/max additions above to the
        // snapshot path, whose bucket loads are Acquire.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Release);
    }

    /// Records a duration as whole nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Takes a coherent point-in-time snapshot.
    ///
    /// Each bucket counter is read exactly once; the snapshot's `count` is
    /// *defined* as the sum of the bucket counts it read, so the coherence
    /// invariant `count == Σ buckets` cannot be violated by concurrent
    /// recording. `sum` and `max` are read after the buckets and may
    /// reflect a few more samples than `count` — snapshots are consistent
    /// but stale, like every other metric read in this workspace.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ordering: Acquire pairs with record()'s Release bucket increment,
        // so every sample this snapshot counts has its value visible in the
        // sum/max loads below (read after the buckets on purpose).
        let buckets: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Acquire));
        HistogramSnapshot {
            buckets,
            // ordering: Relaxed — running *ahead* of count is allowed;
            // running behind is ruled out by the Acquire bucket loads.
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; NUM_BUCKETS],
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from raw parts (used when decoding a snapshot
    /// that crossed the wire). `buckets` pairs are `(bucket index, count)`;
    /// out-of-range indices are ignored.
    #[must_use]
    pub fn from_parts(buckets: &[(usize, u64)], sum: u64, max: u64) -> Self {
        let mut full = [0u64; NUM_BUCKETS];
        for &(index, count) in buckets {
            if let Some(slot) = full.get_mut(index) {
                *slot = count;
            }
        }
        HistogramSnapshot {
            buckets: full,
            sum,
            max,
        }
    }

    /// Total number of recorded samples (the sum of the bucket counts —
    /// coherent with [`HistogramSnapshot::buckets`] by construction).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded values (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The per-bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// The non-empty buckets as `(index, count)` pairs (compact wire form).
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, &count)| (i, count))
            .collect()
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by locating the bucket
    /// containing rank `⌈q·count⌉` and interpolating linearly inside it.
    ///
    /// The estimate always lies within the power-of-two bucket that holds
    /// the true rank-`⌈q·count⌉` sample, and never above
    /// [`HistogramSnapshot::max`]. Returns 0 for an empty snapshot.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (index, &bucket_count) in self.buckets.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            if cumulative + bucket_count >= rank {
                let lower = bucket_lower_bound(index);
                let upper = bucket_upper_bound(index).min(self.max.max(lower));
                let within = (rank - cumulative) as f64 / bucket_count as f64;
                let estimate = lower as f64 + within * (upper - lower) as f64;
                return (estimate as u64).min(self.max);
            }
            cumulative += bucket_count;
        }
        self.max
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for index in 0..NUM_BUCKETS {
            let lower = bucket_lower_bound(index);
            assert_eq!(bucket_index(lower), index, "lower bound of {index}");
            if index < NUM_BUCKETS - 1 {
                let last = bucket_upper_bound(index) - 1;
                assert_eq!(bucket_index(last.max(lower)), index);
            }
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.sum(), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = Histogram::new();
        h.record(37);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.sum(), 37);
        assert_eq!(snap.max(), 37);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let estimate = snap.quantile(q);
            assert_eq!(bucket_index(estimate), bucket_index(37), "q={q}");
            assert!(estimate <= 37);
        }
    }

    #[test]
    fn quantiles_never_exceed_max() {
        let h = Histogram::new();
        // All in one bucket, max well below the bucket's upper bound.
        h.record(1025);
        h.record(1030);
        h.record(1040);
        let snap = h.snapshot();
        assert!(snap.quantile(0.99) <= 1040);
        assert!(snap.quantile(1.0) <= 1040);
    }

    #[test]
    fn durations_record_as_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        let snap = h.snapshot();
        assert_eq!(snap.sum(), 3_000);
        assert_eq!(snap.count(), 1);
    }

    #[test]
    fn from_parts_roundtrips_nonzero_buckets() {
        let h = Histogram::new();
        for v in [0, 1, 5, 5, 700, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        let rebuilt =
            HistogramSnapshot::from_parts(&snap.nonzero_buckets(), snap.sum(), snap.max());
        assert_eq!(rebuilt, snap);
    }
}

//! The metric registry: named handles out, coherent snapshots in.

use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{Arc, PoisonError, RwLock};

use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use crate::span::{EventSink, Span};

/// Identity of one metric: a name plus an optional `key="value"` label pair
/// (the subset of the Prometheus data model this workspace needs — one
/// dimension, e.g. `stage="extract"` or `kind="compile"`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) label: Option<(String, String)>,
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
struct Registered {
    metric: Metric,
    help: String,
}

/// A registry of named counters, gauges and histograms.
///
/// Handles are registered lazily and shared: registering the same
/// name+label twice returns the *same* underlying atomic cell, so a
/// subsystem that reads a counter for its own bookkeeping (the engine's
/// [`stats`](https://docs.rs) path) and the metrics exposition read one
/// source of truth. Registration takes a write lock (cold path);
/// recording through a handle is lock-free.
///
/// One registry normally serves the whole process — [`MetricsRegistry::global`]
/// hands out a process-wide instance — but independent instances are cheap
/// and keep tests isolated; the engine creates one per instance and the
/// serve layer joins it.
///
/// # Examples
///
/// ```
/// use quclear_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let requests = registry.counter("requests_total", "requests handled");
/// requests.inc();
/// let latency = registry.histogram_labeled(
///     "request_duration_ns",
///     "per-request latency",
///     ("kind", "compile"),
/// );
/// latency.record(1_250);
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counter_value("requests_total", None), Some(1));
/// assert!(snapshot.to_prometheus_text().contains("requests_total 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<MetricKey, Registered>>,
    /// Fast "is a sink installed?" check so the span drop path pays one
    /// relaxed load when slow-event emission is off (the common case).
    sink_armed: AtomicBool,
    sink: RwLock<Option<Arc<dyn EventSink>>>,
    slow_threshold_ns: AtomicU64,
}

fn read<T>(lock: &RwLock<T>) -> crate::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(lock: &RwLock<T>) -> crate::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry (created on first use). Library code in
    /// this workspace takes an explicit registry; the global instance exists
    /// for application code and the bare [`crate::span!`] macro form.
    #[must_use]
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn register(&self, key: MetricKey, help: &str, build: impl FnOnce() -> Metric) -> Metric {
        if let Some(existing) = read(&self.metrics).get(&key) {
            return existing.metric.clone();
        }
        let mut metrics = write(&self.metrics);
        metrics
            .entry(key)
            .or_insert_with(|| Registered {
                metric: build(),
                help: help.to_string(),
            })
            .metric
            .clone()
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    ///
    /// Panics if the name+label is already registered as a different metric
    /// kind — that is a programming error, not a runtime condition.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_impl(name, help, None)
    }

    /// Registers (or retrieves) a counter with a `key="value"` label.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind mismatch, like [`MetricsRegistry::counter`].
    #[must_use]
    pub fn counter_labeled(&self, name: &str, help: &str, label: (&str, &str)) -> Arc<Counter> {
        self.counter_impl(name, help, Some(label))
    }

    fn counter_impl(&self, name: &str, help: &str, label: Option<(&str, &str)>) -> Arc<Counter> {
        let key = metric_key(name, label);
        match self.register(key, help, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(counter) => counter,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind mismatch, like [`MetricsRegistry::counter`].
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_impl(name, help, None)
    }

    /// Registers (or retrieves) a gauge with a `key="value"` label.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind mismatch, like [`MetricsRegistry::counter`].
    #[must_use]
    pub fn gauge_labeled(&self, name: &str, help: &str, label: (&str, &str)) -> Arc<Gauge> {
        self.gauge_impl(name, help, Some(label))
    }

    fn gauge_impl(&self, name: &str, help: &str, label: Option<(&str, &str)>) -> Arc<Gauge> {
        let key = metric_key(name, label);
        match self.register(key, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(gauge) => gauge,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Registers (or retrieves) a histogram.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind mismatch, like [`MetricsRegistry::counter`].
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_impl(name, help, None)
    }

    /// Registers (or retrieves) a histogram with a `key="value"` label.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind mismatch, like [`MetricsRegistry::counter`].
    #[must_use]
    pub fn histogram_labeled(&self, name: &str, help: &str, label: (&str, &str)) -> Arc<Histogram> {
        self.histogram_impl(name, help, Some(label))
    }

    fn histogram_impl(
        &self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
    ) -> Arc<Histogram> {
        let key = metric_key(name, label);
        match self.register(key, help, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(histogram) => histogram,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// The histogram registered under `name` (+ optional label), if any —
    /// without registering one.
    #[must_use]
    pub fn find_histogram(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
    ) -> Option<Arc<Histogram>> {
        match &read(&self.metrics).get(&metric_key(name, label))?.metric {
            Metric::Histogram(histogram) => Some(Arc::clone(histogram)),
            _ => None,
        }
    }

    /// Installs a sink that receives a structured record for every span that
    /// runs at least `slow_threshold` (see [`crate::span!`] /
    /// [`MetricsRegistry::span_on`]). Pass through [`MetricsRegistry::clear_event_sink`]
    /// to disarm. Emission happens on the instrumented thread, inside the
    /// span guard's drop — sinks should be cheap (a channel send, a line to
    /// a log) and must not panic.
    pub fn set_event_sink(&self, sink: Arc<dyn EventSink>, slow_threshold: Duration) {
        // ordering: Relaxed — the threshold is published by the Release
        // store of `sink_armed` below; readers Acquire that flag first.
        self.slow_threshold_ns.store(
            u64::try_from(slow_threshold.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        *write(&self.sink) = Some(sink);
        self.sink_armed.store(true, Ordering::Release);
    }

    /// Removes the slow-event sink.
    pub fn clear_event_sink(&self) {
        self.sink_armed.store(false, Ordering::Release);
        *write(&self.sink) = None;
    }

    /// Starts a span recording into the histogram registered under `name`
    /// (registering it on demand). Prefer [`MetricsRegistry::span_on`] with
    /// a pre-registered handle on hot paths — it skips the name lookup.
    #[must_use]
    pub fn span_named(&self, name: &'static str) -> Span {
        let histogram = self.histogram(name, "span duration in nanoseconds");
        self.span_on(histogram, name)
    }

    /// Starts a span recording into an explicit histogram. The guard
    /// records the elapsed nanoseconds when dropped; if a slow-event sink
    /// is armed and the span ran at least the configured threshold, the
    /// sink receives a [`crate::SlowEvent`] naming the span.
    #[must_use]
    pub fn span_on(&self, histogram: Arc<Histogram>, name: &'static str) -> Span {
        let slow = if self.sink_armed.load(Ordering::Acquire) {
            read(&self.sink)
                .clone()
                // ordering: Relaxed — ordered after the armed flag's
                // Acquire load above, which pairs with set_event_sink.
                .map(|sink| (sink, self.slow_threshold_ns.load(Ordering::Relaxed)))
        } else {
            None
        };
        Span::new(histogram, name, slow, Instant::now())
    }

    /// A coherent point-in-time snapshot of every registered metric,
    /// ordered by name then label. Counters and gauges are single atomic
    /// loads; histograms snapshot their buckets (see
    /// [`crate::HistogramSnapshot`] for the coherence contract).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = read(&self.metrics);
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (key, registered) in metrics.iter() {
            let name = key.name.clone();
            let label = key.label.clone();
            let help = registered.help.clone();
            match &registered.metric {
                Metric::Counter(counter) => counters.push(CounterSample {
                    name,
                    label,
                    help,
                    value: counter.get(),
                }),
                Metric::Gauge(gauge) => gauges.push(GaugeSample {
                    name,
                    label,
                    help,
                    value: gauge.get(),
                }),
                Metric::Histogram(histogram) => histograms.push(HistogramSample::new(
                    name,
                    label,
                    help,
                    &histogram.snapshot(),
                )),
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

fn metric_key(name: &str, label: Option<(&str, &str)>) -> MetricKey {
    MetricKey {
        name: name.to_string(),
        label: label.map(|(k, v)| (k.to_string(), v.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn re_registration_returns_the_same_cell() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x_total", "first help wins");
        let b = registry.counter("x_total", "ignored");
        a.add(3);
        assert_eq!(b.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_distinguish_metrics() {
        let registry = MetricsRegistry::new();
        let compile = registry.counter_labeled("errs_total", "", ("kind", "compile"));
        let sweep = registry.counter_labeled("errs_total", "", ("kind", "sweep"));
        compile.inc();
        assert_eq!(sweep.get(), 0);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter_value("errs_total", Some(("kind", "compile"))),
            Some(1)
        );
        assert_eq!(
            snapshot.counter_value("errs_total", Some(("kind", "sweep"))),
            Some(0)
        );
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("confused", "");
        let _ = registry.gauge("confused", "");
    }

    #[test]
    fn find_histogram_does_not_register() {
        let registry = MetricsRegistry::new();
        assert!(registry.find_histogram("absent", None).is_none());
        let _ = registry.histogram("present_ns", "");
        assert!(registry.find_histogram("present_ns", None).is_some());
        assert!(registry.snapshot().counters.is_empty());
        assert_eq!(registry.snapshot().histograms.len(), 1);
    }

    #[test]
    fn global_registry_is_one_instance() {
        let a = MetricsRegistry::global();
        let b = MetricsRegistry::global();
        assert!(std::ptr::eq(a, b));
    }
}

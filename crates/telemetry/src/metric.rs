//! Scalar metrics: monotone counters and signed gauges.

use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use crate::sync::Arc;

/// A monotonically increasing event counter.
///
/// The record path is one relaxed `fetch_add`. Callers that need a
/// cross-counter ordering guarantee (the engine's coalesced-wait invariant)
/// can pick explicit orderings via [`Counter::add_ordered`] /
/// [`Counter::get_ordered`] — the counter is a thin veneer over one
/// `AtomicU64`, shared by every handle cloned from the registry, so the
/// stats path and the metrics-exposition path read the *same* cell.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — statistical counter; call sites with a
        // cross-counter invariant use add_ordered/get_ordered instead.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` with an explicit memory ordering.
    #[inline]
    pub fn add_ordered(&self, n: u64, ordering: Ordering) {
        self.value.fetch_add(n, ordering);
    }

    /// Current value (relaxed).
    #[must_use]
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — statistical read; see Counter::add.
        self.value.load(Ordering::Relaxed)
    }

    /// Current value with an explicit memory ordering.
    #[must_use]
    #[inline]
    pub fn get_ordered(&self, ordering: Ordering) -> u64 {
        self.value.load(ordering)
    }
}

/// An instantaneous signed value (queue depths, connection counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: i64) {
        // ordering: Relaxed — instantaneous reading; observers tolerate
        // staleness (dashboards, Debug output).
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (which may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        // ordering: Relaxed — the RMW's atomicity keeps paired inc/dec
        // balanced (the GaugeGuard invariant); no ordering is needed.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    #[must_use]
    #[inline]
    pub fn get(&self) -> i64 {
        // ordering: Relaxed — instantaneous reading; see Gauge::set.
        self.value.load(Ordering::Relaxed)
    }

    /// Increments now and returns a guard that decrements on drop —
    /// panic-safe tracking of "currently in flight" quantities.
    #[must_use]
    pub fn track(self: &Arc<Self>) -> GaugeGuard {
        self.inc();
        GaugeGuard {
            gauge: Arc::clone(self),
        }
    }
}

/// RAII guard from [`Gauge::track`]: decrements its gauge when dropped.
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Arc<Gauge>,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.add(3);
        g.dec();
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn gauge_guard_is_panic_safe() {
        let g = Arc::new(Gauge::new());
        let result = std::panic::catch_unwind({
            let g = Arc::clone(&g);
            move || {
                let _guard = g.track();
                assert_eq!(g.get(), 1);
                panic!("unwind through the guard");
            }
        });
        assert!(result.is_err());
        assert_eq!(g.get(), 0, "guard must decrement during unwind");
    }
}

//! Point-in-time metric snapshots and their two wire forms: a JSON tree
//! (for the `quclear-serve` protocol) and Prometheus text exposition.

use serde::Json;

use crate::histogram::{bucket_upper_bound, HistogramSnapshot, NUM_BUCKETS};

/// One counter's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Optional `key="value"` label pair.
    pub label: Option<(String, String)>,
    /// Help text (first registration wins).
    pub help: String,
    /// Counter value.
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Optional `key="value"` label pair.
    pub label: Option<(String, String)>,
    /// Help text.
    pub help: String,
    /// Gauge value.
    pub value: i64,
}

/// One histogram's buckets at snapshot time (nonzero buckets only — the
/// compact form that crosses the wire).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Optional `key="value"` label pair.
    pub label: Option<(String, String)>,
    /// Help text.
    pub help: String,
    /// Nonzero `(bucket index, count)` pairs, in bucket order.
    pub buckets: Vec<(usize, u64)>,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSample {
    pub(crate) fn new(
        name: String,
        label: Option<(String, String)>,
        help: String,
        snapshot: &HistogramSnapshot,
    ) -> Self {
        HistogramSample {
            name,
            label,
            help,
            buckets: snapshot.nonzero_buckets(),
            sum: snapshot.sum(),
            max: snapshot.max(),
        }
    }

    /// Rebuilds the full [`HistogramSnapshot`] (for quantile queries).
    #[must_use]
    pub fn histogram(&self) -> HistogramSnapshot {
        HistogramSnapshot::from_parts(&self.buckets, self.sum, self.max)
    }

    /// Total sample count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&(_, count)| count).sum()
    }
}

/// A coherent point-in-time copy of every metric in a
/// [`crate::MetricsRegistry`], ordered by name then label.
///
/// The snapshot is plain data: it can be inspected directly, rendered as
/// Prometheus text with [`MetricsSnapshot::to_prometheus_text`], shipped as
/// JSON with [`MetricsSnapshot::to_json`], and rebuilt on the other side
/// with [`MetricsSnapshot::from_json`] (the `quclear-serve` `metrics`
/// request does exactly that round trip).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter samples.
    pub counters: Vec<CounterSample>,
    /// Gauge samples.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// The value of the counter registered under `name` (+ optional label).
    #[must_use]
    pub fn counter_value(&self, name: &str, label: Option<(&str, &str)>) -> Option<u64> {
        self.counters
            .iter()
            .find(|s| s.name == name && label_matches(&s.label, label))
            .map(|s| s.value)
    }

    /// The value of the gauge registered under `name` (+ optional label).
    #[must_use]
    pub fn gauge_value(&self, name: &str, label: Option<(&str, &str)>) -> Option<i64> {
        self.gauges
            .iter()
            .find(|s| s.name == name && label_matches(&s.label, label))
            .map(|s| s.value)
    }

    /// The histogram registered under `name` (+ optional label), rebuilt
    /// for quantile queries.
    #[must_use]
    pub fn histogram(&self, name: &str, label: Option<(&str, &str)>) -> Option<HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|s| s.name == name && label_matches(&s.label, label))
            .map(HistogramSample::histogram)
    }

    /// All histogram samples that share `name`, as `(label, sample)` views —
    /// how per-stage / per-kind families are enumerated.
    #[must_use]
    pub fn histogram_family(&self, name: &str) -> Vec<&HistogramSample> {
        self.histograms.iter().filter(|s| s.name == name).collect()
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, cumulative `_bucket{le="..."}` lines
    /// with inclusive power-of-two bounds, `_sum` and `_count`).
    ///
    /// Bucket lines are emitted sparsely — only at the boundaries where the
    /// cumulative count actually changes, plus `+Inf` — which is valid
    /// exposition (the `le` values are just sample points of the CDF) and
    /// keeps 64-bucket histograms readable.
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_header: Option<String> = None;
        for sample in &self.counters {
            header(
                &mut out,
                &mut last_header,
                &sample.name,
                &sample.help,
                "counter",
            );
            let labels = render_labels(&sample.label, None);
            out.push_str(&format!("{}{} {}\n", sample.name, labels, sample.value));
        }
        for sample in &self.gauges {
            header(
                &mut out,
                &mut last_header,
                &sample.name,
                &sample.help,
                "gauge",
            );
            let labels = render_labels(&sample.label, None);
            out.push_str(&format!("{}{} {}\n", sample.name, labels, sample.value));
        }
        for sample in &self.histograms {
            header(
                &mut out,
                &mut last_header,
                &sample.name,
                &sample.help,
                "histogram",
            );
            let mut cumulative = 0u64;
            for &(index, count) in &sample.buckets {
                cumulative += count;
                if index < NUM_BUCKETS - 1 {
                    let le = bucket_upper_bound(index) - 1;
                    let labels = render_labels(&sample.label, Some(("le", &le.to_string())));
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        sample.name, labels, cumulative
                    ));
                }
            }
            let inf = render_labels(&sample.label, Some(("le", "+Inf")));
            out.push_str(&format!("{}_bucket{} {}\n", sample.name, inf, cumulative));
            let labels = render_labels(&sample.label, None);
            out.push_str(&format!("{}_sum{} {}\n", sample.name, labels, sample.sum));
            out.push_str(&format!("{}_count{} {}\n", sample.name, labels, cumulative));
        }
        out
    }

    /// Encodes the snapshot as a JSON tree (the `quclear-serve` wire form).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|s| {
                sample_object(
                    &s.name,
                    &s.label,
                    &s.help,
                    vec![("value", Json::Uint(s.value))],
                )
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|s| {
                sample_object(
                    &s.name,
                    &s.label,
                    &s.help,
                    vec![("value", Json::Int(s.value))],
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|s| {
                let buckets = s
                    .buckets
                    .iter()
                    .map(|&(index, count)| {
                        Json::Array(vec![Json::Uint(index as u64), Json::Uint(count)])
                    })
                    .collect();
                sample_object(
                    &s.name,
                    &s.label,
                    &s.help,
                    vec![
                        ("sum", Json::Uint(s.sum)),
                        ("max", Json::Uint(s.max)),
                        ("buckets", Json::Array(buckets)),
                    ],
                )
            })
            .collect();
        Json::Object(vec![
            ("counters".to_string(), Json::Array(counters)),
            ("gauges".to_string(), Json::Array(gauges)),
            ("histograms".to_string(), Json::Array(histograms)),
        ])
    }

    /// Decodes a snapshot from its [`MetricsSnapshot::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed element (input is
    /// network data on the client side, so no panics).
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let mut snapshot = MetricsSnapshot::default();
        for entry in sample_array(json, "counters")? {
            let (name, label, help) = sample_identity(entry, "counter")?;
            let value = required_u64(entry, "value", "counter")?;
            snapshot.counters.push(CounterSample {
                name,
                label,
                help,
                value,
            });
        }
        for entry in sample_array(json, "gauges")? {
            let (name, label, help) = sample_identity(entry, "gauge")?;
            let value = entry
                .get("value")
                .and_then(Json::as_i64)
                .ok_or("gauge sample is missing an integer `value`")?;
            snapshot.gauges.push(GaugeSample {
                name,
                label,
                help,
                value,
            });
        }
        for entry in sample_array(json, "histograms")? {
            let (name, label, help) = sample_identity(entry, "histogram")?;
            let sum = required_u64(entry, "sum", "histogram")?;
            let max = required_u64(entry, "max", "histogram")?;
            let mut buckets = Vec::new();
            for pair in entry
                .get("buckets")
                .and_then(Json::as_array)
                .ok_or("histogram sample is missing a `buckets` array")?
            {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or("histogram bucket must be an [index, count] pair")?;
                let index = pair[0]
                    .as_u64()
                    .filter(|&i| i < NUM_BUCKETS as u64)
                    .ok_or("histogram bucket index is out of range")?;
                let count = pair[1]
                    .as_u64()
                    .ok_or("histogram bucket count must be a u64")?;
                buckets.push((index as usize, count));
            }
            snapshot.histograms.push(HistogramSample {
                name,
                label,
                help,
                buckets,
                sum,
                max,
            });
        }
        Ok(snapshot)
    }
}

impl serde::Serialize for MetricsSnapshot {
    fn to_json(&self) -> Json {
        MetricsSnapshot::to_json(self)
    }
}

fn label_matches(sample: &Option<(String, String)>, wanted: Option<(&str, &str)>) -> bool {
    match (sample, wanted) {
        (None, None) => true,
        (Some((k, v)), Some((wk, wv))) => k == wk && v == wv,
        _ => false,
    }
}

/// Emits `# HELP` / `# TYPE` once per metric name (samples arrive sorted,
/// so a family's labeled series are consecutive).
fn header(out: &mut String, last: &mut Option<String>, name: &str, help: &str, kind: &str) {
    if last.as_deref() == Some(name) {
        return;
    }
    if !help.is_empty() {
        out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
    }
    out.push_str(&format!("# TYPE {name} {kind}\n"));
    *last = Some(name.to_string());
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(label: &Option<(String, String)>, extra: Option<(&str, &str)>) -> String {
    let mut pairs = Vec::new();
    if let Some((key, value)) = label {
        pairs.push(format!("{key}=\"{}\"", escape_label_value(value)));
    }
    if let Some((key, value)) = extra {
        pairs.push(format!("{key}=\"{}\"", escape_label_value(value)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn sample_object(
    name: &str,
    label: &Option<(String, String)>,
    help: &str,
    fields: Vec<(&str, Json)>,
) -> Json {
    let mut entries = vec![("name".to_string(), Json::Str(name.to_string()))];
    if let Some((key, value)) = label {
        entries.push((
            "label".to_string(),
            Json::Array(vec![Json::Str(key.clone()), Json::Str(value.clone())]),
        ));
    }
    if !help.is_empty() {
        entries.push(("help".to_string(), Json::Str(help.to_string())));
    }
    for (key, value) in fields {
        entries.push((key.to_string(), value));
    }
    Json::Object(entries)
}

fn sample_array<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], String> {
    match json.get(key) {
        None => Ok(&[]),
        Some(value) => value
            .as_array()
            .ok_or_else(|| format!("`{key}` must be an array")),
    }
}

/// `(name, label, help)` of a decoded sample object.
type SampleIdentity = (String, Option<(String, String)>, String);

fn sample_identity(entry: &Json, kind: &str) -> Result<SampleIdentity, String> {
    let name = entry
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{kind} sample is missing a string `name`"))?
        .to_string();
    let label = match entry.get("label") {
        None => None,
        Some(Json::Null) => None,
        Some(value) => {
            let pair = value
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("{kind} `label` must be a [key, value] pair"))?;
            let key = pair[0]
                .as_str()
                .ok_or_else(|| format!("{kind} label key must be a string"))?;
            let val = pair[1]
                .as_str()
                .ok_or_else(|| format!("{kind} label value must be a string"))?;
            Some((key.to_string(), val.to_string()))
        }
    };
    let help = entry
        .get("help")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    Ok((name, label, help))
}

fn required_u64(entry: &Json, key: &str, kind: &str) -> Result<u64, String> {
    entry
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{kind} sample is missing a u64 `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn populated_registry() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry
            .counter("requests_total", "requests handled")
            .add(7);
        registry
            .counter_labeled("errors_total", "errors by kind", ("kind", "compile"))
            .add(2);
        registry.gauge("queue_depth", "queued requests").set(-3);
        let h = registry.histogram_labeled(
            "stage_duration_ns",
            "per-stage latency",
            ("stage", "extract"),
        );
        h.record(0);
        h.record(5);
        h.record(900);
        registry
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let snapshot = populated_registry().snapshot();
        let rebuilt = MetricsSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(rebuilt, snapshot);
        // Through actual text, too.
        let text = serde_json::value_to_string(&snapshot.to_json()).unwrap();
        let reparsed = MetricsSnapshot::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(reparsed, snapshot);
    }

    #[test]
    fn lookups_respect_labels() {
        let snapshot = populated_registry().snapshot();
        assert_eq!(snapshot.counter_value("requests_total", None), Some(7));
        assert_eq!(
            snapshot.counter_value("requests_total", Some(("k", "v"))),
            None
        );
        assert_eq!(
            snapshot.counter_value("errors_total", Some(("kind", "compile"))),
            Some(2)
        );
        assert_eq!(snapshot.gauge_value("queue_depth", None), Some(-3));
        let h = snapshot
            .histogram("stage_duration_ns", Some(("stage", "extract")))
            .unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 900);
        assert_eq!(snapshot.histogram_family("stage_duration_ns").len(), 1);
    }

    #[test]
    fn prometheus_text_has_headers_labels_and_cumulative_buckets() {
        let text = populated_registry().snapshot().to_prometheus_text();
        assert!(text.contains("# HELP requests_total requests handled\n"));
        assert!(text.contains("# TYPE requests_total counter\n"));
        assert!(text.contains("requests_total 7\n"));
        assert!(text.contains("errors_total{kind=\"compile\"} 2\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth -3\n"));
        assert!(text.contains("# TYPE stage_duration_ns histogram\n"));
        // 0 → bucket 0 (le="0"), 5 → bucket 3 (le="7"), 900 → bucket 10 (le="1023").
        assert!(text.contains("stage_duration_ns_bucket{stage=\"extract\",le=\"0\"} 1\n"));
        assert!(text.contains("stage_duration_ns_bucket{stage=\"extract\",le=\"7\"} 2\n"));
        assert!(text.contains("stage_duration_ns_bucket{stage=\"extract\",le=\"1023\"} 3\n"));
        assert!(text.contains("stage_duration_ns_bucket{stage=\"extract\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("stage_duration_ns_sum{stage=\"extract\"} 905\n"));
        assert!(text.contains("stage_duration_ns_count{stage=\"extract\"} 3\n"));
    }

    #[test]
    fn headers_are_emitted_once_per_family() {
        let registry = MetricsRegistry::new();
        for kind in ["a", "b"] {
            registry
                .counter_labeled("family_total", "one family", ("kind", kind))
                .inc();
        }
        let text = registry.snapshot().to_prometheus_text();
        assert_eq!(text.matches("# TYPE family_total counter").count(), 1);
        assert_eq!(text.matches("# HELP family_total").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry
            .counter_labeled("odd_total", "", ("kind", "a\"b\\c"))
            .inc();
        let text = registry.snapshot().to_prometheus_text();
        assert!(text.contains("odd_total{kind=\"a\\\"b\\\\c\"} 1\n"));
    }

    #[test]
    fn from_json_rejects_malformed_samples() {
        for bad in [
            r#"{"counters":[{"value":1}]}"#,
            r#"{"counters":[{"name":"x"}]}"#,
            r#"{"counters":"nope"}"#,
            r#"{"histograms":[{"name":"h","sum":1,"max":1,"buckets":[[99]]}]}"#,
            r#"{"histograms":[{"name":"h","sum":1,"max":1,"buckets":[[400,1]]}]}"#,
            r#"{"gauges":[{"name":"g","label":["only-key"],"value":1}]}"#,
        ] {
            let tree = serde_json::from_str(bad).unwrap();
            assert!(MetricsSnapshot::from_json(&tree).is_err(), "{bad}");
        }
        // Absent sections are fine (forward compatibility).
        let empty = MetricsSnapshot::from_json(&serde_json::from_str("{}").unwrap()).unwrap();
        assert_eq!(empty, MetricsSnapshot::default());
    }
}

//! QAOA programs for MaxCut and LABS (the combinatorial-optimization
//! benchmarks of Table II).

use quclear_pauli::{PauliOp, PauliRotation, PauliString};
use std::collections::BTreeMap;

use crate::graphs::Graph;

/// Builds the QAOA MaxCut program for a graph: per layer, one `ZZ` rotation
/// per edge (problem Hamiltonian) followed by one `X` rotation per vertex
/// (mixer Hamiltonian). The initial `|+⟩` preparation layer is *not*
/// included — it is part of state preparation, not of the optimized kernel
/// (matching the paper's gate counting).
///
/// # Examples
///
/// ```
/// use quclear_workloads::{maxcut_qaoa, Graph};
///
/// let graph = Graph::regular(15, 4, 1);
/// let program = maxcut_qaoa(&graph, 1, 0.4, 0.9);
/// // Table II: MaxCut-(n15, r4) has 45 Pauli strings.
/// assert_eq!(program.len(), 45);
/// ```
#[must_use]
pub fn maxcut_qaoa(graph: &Graph, layers: usize, gamma: f64, beta: f64) -> Vec<PauliRotation> {
    let n = graph.num_vertices();
    let mut program = Vec::new();
    for layer in 0..layers {
        let g = gamma * (layer + 1) as f64;
        let b = beta * (layer + 1) as f64;
        for &(a, v) in graph.edges() {
            let mut p = PauliString::identity(n);
            p.set_op(a, PauliOp::Z);
            p.set_op(v, PauliOp::Z);
            program.push(PauliRotation::new(p, g));
        }
        for q in 0..n {
            program.push(PauliRotation::new(PauliString::single(n, q, PauliOp::X), b));
        }
    }
    program
}

/// The `|+⟩^⊗n` preparation circuit that precedes any QAOA kernel.
#[must_use]
pub fn qaoa_initial_layer(n: usize) -> quclear_circuit::Circuit {
    let mut c = quclear_circuit::Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c
}

/// The LABS (Low Autocorrelation Binary Sequences) problem Hamiltonian on
/// `n` spins: `H = Σ_k C_k²` with `C_k = Σ_i s_i s_{i+k}`, expanded into
/// distinct 2-body and 4-body `Z` terms with integer coefficients (constant
/// offsets dropped).
///
/// Returned as a map from Pauli string to coefficient, in deterministic
/// order.
#[must_use]
pub fn labs_hamiltonian(n: usize) -> Vec<(f64, PauliString)> {
    let mut terms: BTreeMap<String, (f64, PauliString)> = BTreeMap::new();
    let mut add = |indices: &mut Vec<usize>, coeff: f64| {
        indices.sort_unstable();
        indices.dedup();
        // Pairs of equal indices cancel (s_i² = 1); after dedup of an even
        // multiset the remaining indices define the Z string. We handle the
        // multiset reduction before calling `add`, so here indices are unique.
        if indices.is_empty() {
            return;
        }
        let mut p = PauliString::identity(n);
        for &i in indices.iter() {
            p.set_op(i, PauliOp::Z);
        }
        let key = p.to_string();
        terms
            .entry(key)
            .and_modify(|(c, _)| *c += coeff)
            .or_insert((coeff, p));
    };

    for k in 1..n {
        let upper = n - k;
        // C_k² = Σ_{i,j} s_i s_{i+k} s_j s_{j+k}.
        for i in 0..upper {
            for j in 0..upper {
                if i == j {
                    continue; // constant term
                }
                let mut multiset = [i, i + k, j, j + k];
                // Reduce the multiset: indices appearing twice cancel.
                multiset.sort_unstable();
                let mut reduced = Vec::new();
                let mut idx = 0;
                while idx < multiset.len() {
                    if idx + 1 < multiset.len() && multiset[idx] == multiset[idx + 1] {
                        idx += 2;
                    } else {
                        reduced.push(multiset[idx]);
                        idx += 1;
                    }
                }
                add(&mut reduced, 1.0);
            }
        }
    }
    terms
        .into_values()
        .filter(|(c, _)| c.abs() > 1e-12)
        .collect()
}

/// Builds the QAOA LABS program: per layer, one rotation per problem
/// Hamiltonian term followed by the `X` mixer on every qubit.
#[must_use]
pub fn labs_qaoa(n: usize, layers: usize, gamma: f64, beta: f64) -> Vec<PauliRotation> {
    let hamiltonian = labs_hamiltonian(n);
    let mut program = Vec::new();
    for layer in 0..layers {
        let g = gamma * (layer + 1) as f64;
        let b = beta * (layer + 1) as f64;
        for (coeff, pauli) in &hamiltonian {
            program.push(PauliRotation::new(pauli.clone(), g * coeff));
        }
        for q in 0..n {
            program.push(PauliRotation::new(PauliString::single(n, q, PauliOp::X), b));
        }
    }
    program
}

/// The MaxCut cost observable of a graph as signed Pauli terms: the cut value
/// is `Σ_edges (1 - ⟨Z_a Z_b⟩)/2`; this returns the `Z_a Z_b` observables.
#[must_use]
pub fn maxcut_observables(graph: &Graph) -> Vec<quclear_pauli::SignedPauli> {
    let n = graph.num_vertices();
    graph
        .edges()
        .iter()
        .map(|&(a, b)| {
            let mut p = PauliString::identity(n);
            p.set_op(a, PauliOp::Z);
            p.set_op(b, PauliOp::Z);
            quclear_pauli::SignedPauli::positive(p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxcut_counts_match_table_ii() {
        let cases = [
            (15usize, 4usize, 45usize, 60usize, 75usize),
            (20, 4, 60, 80, 100),
            (20, 8, 100, 160, 140),
            (20, 12, 140, 240, 180),
        ];
        for (n, r, paulis, cnots, singles) in cases {
            let graph = Graph::regular(n, r, 0xC0FFEE);
            let program = maxcut_qaoa(&graph, 1, 0.3, 0.7);
            assert_eq!(program.len(), paulis, "MaxCut-(n{n}, r{r}) Pauli count");
            let native_cnots: usize = program.iter().map(PauliRotation::native_cnot_cost).sum();
            let native_singles: usize = program
                .iter()
                .map(PauliRotation::native_single_qubit_cost)
                .sum();
            assert_eq!(native_cnots, cnots, "MaxCut-(n{n}, r{r}) native CNOTs");
            assert_eq!(
                native_singles, singles,
                "MaxCut-(n{n}, r{r}) native 1q gates"
            );
        }
    }

    #[test]
    fn random_maxcut_counts_match_table_ii() {
        let cases = [
            (10usize, 12usize, 22usize, 24usize, 42usize),
            (15, 63, 78, 126, 108),
            (20, 117, 137, 234, 177),
        ];
        for (n, e, paulis, cnots, singles) in cases {
            let graph = Graph::random(n, e, 0xBEEF);
            let program = maxcut_qaoa(&graph, 1, 0.3, 0.7);
            assert_eq!(program.len(), paulis);
            let native_cnots: usize = program.iter().map(PauliRotation::native_cnot_cost).sum();
            let native_singles: usize = program
                .iter()
                .map(PauliRotation::native_single_qubit_cost)
                .sum();
            assert_eq!(native_cnots, cnots);
            assert_eq!(native_singles, singles);
        }
    }

    #[test]
    fn labs_terms_are_z_only_with_weights_two_and_four() {
        let h = labs_hamiltonian(10);
        assert!(!h.is_empty());
        for (coeff, p) in &h {
            assert!(p.is_uniform(PauliOp::Z), "LABS terms are Z-only");
            assert!(
                p.weight() == 2 || p.weight() == 4,
                "unexpected weight {}",
                p.weight()
            );
            assert!(coeff.abs() > 0.0);
        }
    }

    #[test]
    fn labs_program_size_is_close_to_table_ii() {
        // Table II lists 80 / 267 / 635 Pauli strings for n = 10 / 15 / 20.
        // The exact count depends on how duplicate products are merged; our
        // canonical expansion must land in the same ballpark.
        for (n, expected) in [(10usize, 80usize), (15, 267), (20, 635)] {
            let program = labs_qaoa(n, 1, 0.3, 0.7);
            let count = program.len();
            let lower = expected * 7 / 10;
            let upper = expected * 13 / 10;
            assert!(
                (lower..=upper).contains(&count),
                "LABS-(n{n}): {count} terms vs paper {expected}"
            );
        }
    }

    #[test]
    fn multi_layer_qaoa_scales_linearly() {
        let graph = Graph::regular(10, 4, 1);
        let one = maxcut_qaoa(&graph, 1, 0.3, 0.7).len();
        let three = maxcut_qaoa(&graph, 3, 0.3, 0.7).len();
        assert_eq!(three, 3 * one);
    }

    #[test]
    fn maxcut_observables_one_per_edge() {
        let graph = Graph::regular(8, 4, 2);
        let obs = maxcut_observables(&graph);
        assert_eq!(obs.len(), graph.num_edges());
        assert!(obs.iter().all(|o| o.weight() == 2));
    }

    #[test]
    fn initial_layer_is_all_hadamards() {
        let layer = qaoa_initial_layer(5);
        assert_eq!(layer.len(), 5);
        assert_eq!(layer.cnot_count(), 0);
    }
}

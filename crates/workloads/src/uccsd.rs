//! UCCSD ansatz generation under the Jordan–Wigner transformation.
//!
//! The unitary coupled-cluster singles-and-doubles ansatz is the chemistry
//! workload of the paper's Table II (UCC-(electrons, spin-orbitals)). Each
//! fermionic excitation is mapped to Pauli rotations through Jordan–Wigner:
//! a single excitation `p→q` contributes two Pauli strings
//! (`X Z…Z Y` and `Y Z…Z X` spanning `p..q`), a double excitation
//! `(p,q)→(r,s)` contributes the standard eight weight-4 strings with `Z`
//! chains filling the gaps.

use quclear_pauli::{PauliOp, PauliRotation, PauliString};

/// A UCCSD ansatz specification.
///
/// Spin orbitals are interleaved (`even` = α, `odd` = β); the first
/// `electrons` spin orbitals are occupied. Excitations conserve total spin.
/// `repetitions` repeats the full excitation list (the paper's Table II
/// counts correspond to two repetitions).
///
/// # Examples
///
/// ```
/// use quclear_workloads::Uccsd;
///
/// // UCC-(2,4): the H₂ active space. Table II lists 24 Pauli strings.
/// let ansatz = Uccsd::new(2, 4);
/// assert_eq!(ansatz.rotations().len(), 24);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Uccsd {
    electrons: usize,
    spin_orbitals: usize,
    repetitions: usize,
}

impl Uccsd {
    /// Creates the standard two-repetition ansatz used by the paper's
    /// benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `electrons >= spin_orbitals` or `electrons == 0`.
    #[must_use]
    pub fn new(electrons: usize, spin_orbitals: usize) -> Self {
        Uccsd::with_repetitions(electrons, spin_orbitals, 2)
    }

    /// Creates an ansatz with an explicit number of repetitions.
    ///
    /// # Panics
    ///
    /// Panics if `electrons >= spin_orbitals`, `electrons == 0`, or
    /// `repetitions == 0`.
    #[must_use]
    pub fn with_repetitions(electrons: usize, spin_orbitals: usize, repetitions: usize) -> Self {
        assert!(electrons > 0, "need at least one electron");
        assert!(
            electrons < spin_orbitals,
            "need at least one virtual spin orbital"
        );
        assert!(repetitions > 0, "need at least one repetition");
        Uccsd {
            electrons,
            spin_orbitals,
            repetitions,
        }
    }

    /// Number of qubits (= spin orbitals).
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.spin_orbitals
    }

    /// The single excitations `(occupied, virtual)` conserving spin.
    #[must_use]
    pub fn single_excitations(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for p in 0..self.electrons {
            for q in self.electrons..self.spin_orbitals {
                if p % 2 == q % 2 {
                    out.push((p, q));
                }
            }
        }
        out
    }

    /// The double excitations `((p, q), (r, s))` with `p<q` occupied,
    /// `r<s` virtual, conserving total spin.
    #[must_use]
    pub fn double_excitations(&self) -> Vec<((usize, usize), (usize, usize))> {
        let mut out = Vec::new();
        for p in 0..self.electrons {
            for q in p + 1..self.electrons {
                for r in self.electrons..self.spin_orbitals {
                    for s in r + 1..self.spin_orbitals {
                        if (p % 2 + q % 2) == (r % 2 + s % 2) {
                            out.push(((p, q), (r, s)));
                        }
                    }
                }
            }
        }
        out
    }

    /// The full Pauli-rotation program of the ansatz, with deterministic
    /// placeholder amplitudes (the variational parameters do not affect gate
    /// counts).
    #[must_use]
    pub fn rotations(&self) -> Vec<PauliRotation> {
        let mut out = Vec::new();
        for rep in 0..self.repetitions {
            let base_angle = 0.1 + 0.05 * rep as f64;
            for (k, &(p, q)) in self.single_excitations().iter().enumerate() {
                let theta = base_angle + 0.01 * k as f64;
                out.extend(single_excitation_rotations(self.spin_orbitals, p, q, theta));
            }
            for (k, &((p, q), (r, s))) in self.double_excitations().iter().enumerate() {
                let theta = base_angle + 0.007 * k as f64;
                out.extend(double_excitation_rotations(
                    self.spin_orbitals,
                    p,
                    q,
                    r,
                    s,
                    theta,
                ));
            }
        }
        out
    }
}

/// The two Jordan–Wigner Pauli rotations of a single excitation `p → q`.
///
/// # Panics
///
/// Panics if `p >= q` or `q >= n`.
#[must_use]
pub fn single_excitation_rotations(n: usize, p: usize, q: usize, theta: f64) -> Vec<PauliRotation> {
    assert!(
        p < q && q < n,
        "invalid single excitation {p}→{q} on {n} qubits"
    );
    let build = |op_p: PauliOp, op_q: PauliOp| {
        let mut s = PauliString::identity(n);
        s.set_op(p, op_p);
        s.set_op(q, op_q);
        for z in p + 1..q {
            s.set_op(z, PauliOp::Z);
        }
        s
    };
    vec![
        PauliRotation::new(build(PauliOp::X, PauliOp::Y), theta / 2.0),
        PauliRotation::new(build(PauliOp::Y, PauliOp::X), -theta / 2.0),
    ]
}

/// The eight Jordan–Wigner Pauli rotations of a double excitation
/// `(p, q) → (r, s)`.
///
/// # Panics
///
/// Panics if the orbital indices are not strictly increasing pairs within
/// range.
#[must_use]
pub fn double_excitation_rotations(
    n: usize,
    p: usize,
    q: usize,
    r: usize,
    s: usize,
    theta: f64,
) -> Vec<PauliRotation> {
    assert!(
        p < q && r < s && q < n && s < n,
        "invalid double excitation"
    );
    // The standard eight terms with their signs (θ/8 amplitudes).
    let patterns: [([PauliOp; 4], f64); 8] = [
        ([PauliOp::X, PauliOp::X, PauliOp::X, PauliOp::Y], 1.0),
        ([PauliOp::X, PauliOp::X, PauliOp::Y, PauliOp::X], 1.0),
        ([PauliOp::X, PauliOp::Y, PauliOp::X, PauliOp::X], -1.0),
        ([PauliOp::Y, PauliOp::X, PauliOp::X, PauliOp::X], -1.0),
        ([PauliOp::Y, PauliOp::Y, PauliOp::Y, PauliOp::X], -1.0),
        ([PauliOp::Y, PauliOp::Y, PauliOp::X, PauliOp::Y], -1.0),
        ([PauliOp::Y, PauliOp::X, PauliOp::Y, PauliOp::Y], 1.0),
        ([PauliOp::X, PauliOp::Y, PauliOp::Y, PauliOp::Y], 1.0),
    ];
    let targets = [p, q, r, s];
    patterns
        .iter()
        .map(|(ops, sign)| {
            let mut string = PauliString::identity(n);
            for (&qubit, &op) in targets.iter().zip(ops.iter()) {
                string.set_op(qubit, op);
            }
            // Jordan–Wigner Z chains inside each excitation pair.
            for z in p + 1..q {
                string.set_op(z, PauliOp::Z);
            }
            for z in r + 1..s {
                string.set_op(z, PauliOp::Z);
            }
            PauliRotation::new(string, sign * theta / 8.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Pauli counts of Table II for the UCCSD benchmarks.
    #[test]
    fn pauli_counts_match_table_ii() {
        let expected = [
            ((2usize, 4usize), 24usize),
            ((2, 6), 80),
            ((4, 8), 320),
            ((6, 12), 1656),
        ];
        for ((e, o), count) in expected {
            let ansatz = Uccsd::new(e, o);
            assert_eq!(
                ansatz.rotations().len(),
                count,
                "UCC-({e},{o}) should have {count} Pauli strings"
            );
        }
    }

    #[test]
    fn larger_instances_match_table_ii() {
        assert_eq!(Uccsd::new(8, 16).rotations().len(), 5376);
        assert_eq!(Uccsd::new(10, 20).rotations().len(), 13400);
    }

    #[test]
    fn native_gate_counts_match_table_ii_for_ucc_2_4() {
        let rotations = Uccsd::new(2, 4).rotations();
        let cnots: usize = rotations.iter().map(PauliRotation::native_cnot_cost).sum();
        let singles: usize = rotations
            .iter()
            .map(PauliRotation::native_single_qubit_cost)
            .sum();
        assert_eq!(cnots, 128);
        assert_eq!(singles, 264);
    }

    #[test]
    fn native_gate_counts_match_table_ii_for_ucc_2_6() {
        let rotations = Uccsd::new(2, 6).rotations();
        let cnots: usize = rotations.iter().map(PauliRotation::native_cnot_cost).sum();
        assert_eq!(cnots, 544);
    }

    #[test]
    fn single_excitation_structure() {
        let rots = single_excitation_rotations(5, 1, 4, 0.3);
        assert_eq!(rots.len(), 2);
        assert_eq!(rots[0].pauli().to_string(), "IXZZY");
        assert_eq!(rots[1].pauli().to_string(), "IYZZX");
        assert_eq!(rots[0].angle(), 0.15);
        assert_eq!(rots[1].angle(), -0.15);
    }

    #[test]
    fn double_excitation_structure() {
        let rots = double_excitation_rotations(4, 0, 1, 2, 3, 0.8);
        assert_eq!(rots.len(), 8);
        // All strings have weight 4 and odd Y count.
        for r in &rots {
            assert_eq!(r.weight(), 4);
            let (_, _, y, _) = r.pauli().op_histogram();
            assert_eq!(
                y % 2,
                1,
                "JW double-excitation strings carry an odd number of Y"
            );
        }
    }

    #[test]
    fn excitations_conserve_spin() {
        let ansatz = Uccsd::new(4, 8);
        for (p, q) in ansatz.single_excitations() {
            assert_eq!(p % 2, q % 2);
        }
        for ((p, q), (r, s)) in ansatz.double_excitations() {
            assert_eq!((p % 2) + (q % 2), (r % 2) + (s % 2));
        }
    }

    #[test]
    #[should_panic(expected = "virtual")]
    fn rejects_full_occupation() {
        let _ = Uccsd::new(4, 4);
    }
}

//! Benchmark workload generators for the QuCLEAR reproduction.
//!
//! This crate generates the Pauli-rotation programs of the paper's Table II:
//!
//! * [`Uccsd`] — UCCSD ansätze under the Jordan–Wigner transformation
//!   (UCC-(2,4) … UCC-(10,20)),
//! * [`Molecule`] — synthetic molecular Hamiltonians with the Table II term
//!   counts for LiH, H₂O and benzene (see DESIGN.md for the substitution
//!   rationale),
//! * [`maxcut_qaoa`] / [`labs_qaoa`] and [`Graph`] — QAOA programs for MaxCut
//!   on regular and random graphs and for the LABS problem,
//! * [`Benchmark`] — the named 19-benchmark suite with native gate counts.
//!
//! # Examples
//!
//! ```
//! use quclear_workloads::Benchmark;
//!
//! let bench = Benchmark::Ucc(2, 4);
//! assert_eq!(bench.rotations().len(), 24);       // Table II: #Pauli
//! assert_eq!(bench.native_cnot_count(), 128);    // Table II: #CNOT
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod benchmark;
mod graphs;
mod molecular;
mod qaoa;
mod qasm_ansatz;
mod sweep;
mod uccsd;

pub use benchmark::{Benchmark, BenchmarkCategory};
pub use graphs::Graph;
pub use molecular::{synthetic_molecular_hamiltonian, Molecule};
pub use qaoa::{labs_hamiltonian, labs_qaoa, maxcut_observables, maxcut_qaoa, qaoa_initial_layer};
pub use qasm_ansatz::{hardware_efficient_qasm, zz_chain_qasm, QasmAnsatz};
pub use sweep::{
    qaoa_grid_sweep, qaoa_sampling_sweep, vqe_expectation_sweep, vqe_sweep, ObservableSweep,
    SweepScenario,
};
pub use uccsd::{double_excitation_rotations, single_excitation_rotations, Uccsd};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Benchmark>();
        assert_send_sync::<Graph>();
        assert_send_sync::<Molecule>();
        assert_send_sync::<Uccsd>();
    }
}

//! Synthetic molecular Hamiltonians for the Hamiltonian-simulation
//! benchmarks (LiH, H₂O, benzene).
//!
//! The original paper uses molecular Hamiltonians obtained from quantum
//! chemistry packages. Those integral files are not available in a
//! self-contained Rust workspace, so this module generates *synthetic*
//! Hamiltonians with the same qubit counts and Pauli-term counts as Table II
//! and a realistic Jordan–Wigner term structure: single-`Z` and `ZZ` number
//! terms, `X Z…Z X` / `Y Z…Z Y` hopping pairs, and weight-4 double-excitation
//! strings. The compiler only ever sees Pauli strings and coefficients, so
//! this preserves the behaviour the evaluation measures (see DESIGN.md §2.5).

use quclear_pauli::{PauliOp, PauliRotation, PauliString};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A named synthetic molecular Hamiltonian-simulation benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Molecule {
    /// Lithium hydride in a 6-qubit active space (61 Pauli terms).
    LiH,
    /// Water in an 8-qubit active space (184 Pauli terms).
    H2O,
    /// Benzene in a 12-qubit active space (1254 Pauli terms).
    Benzene,
}

impl Molecule {
    /// All molecules of the benchmark suite.
    pub const ALL: [Molecule; 3] = [Molecule::LiH, Molecule::H2O, Molecule::Benzene];

    /// Human-readable benchmark name (as used in Table II).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Molecule::LiH => "LiH",
            Molecule::H2O => "H2O",
            Molecule::Benzene => "benzene",
        }
    }

    /// Number of qubits of the active space.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        match self {
            Molecule::LiH => 6,
            Molecule::H2O => 8,
            Molecule::Benzene => 12,
        }
    }

    /// Number of Pauli terms (matching Table II).
    #[must_use]
    pub fn num_terms(&self) -> usize {
        match self {
            Molecule::LiH => 61,
            Molecule::H2O => 184,
            Molecule::Benzene => 1254,
        }
    }

    /// The synthetic Hamiltonian terms `(coefficient, Pauli string)`.
    #[must_use]
    pub fn hamiltonian(&self) -> Vec<(f64, PauliString)> {
        synthetic_molecular_hamiltonian(
            self.num_qubits(),
            self.num_terms(),
            0x5eed + self.num_qubits() as u64,
        )
    }

    /// One first-order Trotter step of `e^{-iHt}`: a rotation per Hamiltonian
    /// term, with angle `2·coefficient·t`.
    #[must_use]
    pub fn trotter_step(&self, time: f64) -> Vec<PauliRotation> {
        self.hamiltonian()
            .into_iter()
            .map(|(coeff, pauli)| PauliRotation::new(pauli, 2.0 * coeff * time))
            .collect()
    }

    /// The Hamiltonian terms as measurement observables (the VQE use case).
    #[must_use]
    pub fn observables(&self) -> Vec<quclear_pauli::SignedPauli> {
        self.hamiltonian()
            .into_iter()
            .map(|(coeff, pauli)| quclear_pauli::SignedPauli::new(pauli, coeff < 0.0))
            .collect()
    }
}

/// Generates a synthetic molecular-style Hamiltonian with exactly
/// `num_terms` distinct Pauli strings on `n` qubits.
///
/// Term classes are emitted in the order they dominate real Jordan–Wigner
/// molecular Hamiltonians: single-`Z`, `ZZ`, hopping pairs (`XZ…ZX` +
/// `YZ…ZY`), then weight-4 excitation strings until the target count is
/// reached.
///
/// # Panics
///
/// Panics if `num_terms` exceeds the number of distinct strings the generator
/// can produce for `n` qubits.
#[must_use]
pub fn synthetic_molecular_hamiltonian(
    n: usize,
    num_terms: usize,
    seed: u64,
) -> Vec<(f64, PauliString)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut terms: Vec<(f64, PauliString)> = Vec::new();
    let coeff = |rng: &mut StdRng, scale: f64| -> f64 {
        let magnitude: f64 = rng.gen_range(0.01..scale);
        if rng.gen_bool(0.5) {
            magnitude
        } else {
            -magnitude
        }
    };

    // Class 1: single-Z number terms.
    for q in 0..n {
        terms.push((coeff(&mut rng, 0.8), PauliString::single(n, q, PauliOp::Z)));
    }
    // Class 2: ZZ density-density terms.
    for a in 0..n {
        for b in a + 1..n {
            let mut s = PauliString::identity(n);
            s.set_op(a, PauliOp::Z);
            s.set_op(b, PauliOp::Z);
            terms.push((coeff(&mut rng, 0.4), s));
        }
    }
    // Class 3: hopping terms X Z…Z X and Y Z…Z Y on spin-conserving pairs.
    let mut hopping_pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| ((a + 2)..n).step_by(2).map(move |b| (a, b)))
        .collect();
    hopping_pairs.shuffle(&mut rng);
    for (a, b) in hopping_pairs {
        for op in [PauliOp::X, PauliOp::Y] {
            let mut s = PauliString::identity(n);
            s.set_op(a, op);
            s.set_op(b, op);
            for z in a + 1..b {
                s.set_op(z, PauliOp::Z);
            }
            terms.push((coeff(&mut rng, 0.2), s));
        }
    }
    // Class 4: weight-4 excitation strings on spin-conserving quadruples.
    let patterns = [
        [PauliOp::X, PauliOp::X, PauliOp::X, PauliOp::X],
        [PauliOp::X, PauliOp::X, PauliOp::Y, PauliOp::Y],
        [PauliOp::X, PauliOp::Y, PauliOp::X, PauliOp::Y],
        [PauliOp::Y, PauliOp::X, PauliOp::X, PauliOp::Y],
        [PauliOp::X, PauliOp::Y, PauliOp::Y, PauliOp::X],
        [PauliOp::Y, PauliOp::X, PauliOp::Y, PauliOp::X],
        [PauliOp::Y, PauliOp::Y, PauliOp::X, PauliOp::X],
        [PauliOp::Y, PauliOp::Y, PauliOp::Y, PauliOp::Y],
    ];
    let mut quadruples: Vec<[usize; 4]> = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            for c in b + 1..n {
                for d in c + 1..n {
                    quadruples.push([a, b, c, d]);
                }
            }
        }
    }
    quadruples.shuffle(&mut rng);
    'outer: for quad in &quadruples {
        for pattern in &patterns {
            if terms.len() >= num_terms {
                break 'outer;
            }
            let mut s = PauliString::identity(n);
            for (&q, &op) in quad.iter().zip(pattern.iter()) {
                s.set_op(q, op);
            }
            for z in quad[0] + 1..quad[1] {
                s.set_op(z, PauliOp::Z);
            }
            for z in quad[2] + 1..quad[3] {
                s.set_op(z, PauliOp::Z);
            }
            terms.push((coeff(&mut rng, 0.1), s));
        }
    }

    assert!(
        terms.len() >= num_terms,
        "cannot generate {num_terms} distinct molecular terms on {n} qubits (max {})",
        terms.len()
    );
    terms.truncate(num_terms);
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn term_counts_match_table_ii() {
        for molecule in Molecule::ALL {
            let h = molecule.hamiltonian();
            assert_eq!(h.len(), molecule.num_terms(), "{}", molecule.name());
            assert!(h
                .iter()
                .all(|(_, p)| p.num_qubits() == molecule.num_qubits()));
        }
    }

    #[test]
    fn terms_are_distinct() {
        for molecule in Molecule::ALL {
            let h = molecule.hamiltonian();
            let unique: HashSet<String> = h.iter().map(|(_, p)| p.to_string()).collect();
            assert_eq!(
                unique.len(),
                h.len(),
                "{} has duplicate terms",
                molecule.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Molecule::LiH.hamiltonian();
        let b = Molecule::LiH.hamiltonian();
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|((ca, pa), (cb, pb))| ca == cb && pa == pb));
    }

    #[test]
    fn trotter_step_preserves_term_order_and_scales_angles() {
        let h = Molecule::LiH.hamiltonian();
        let step = Molecule::LiH.trotter_step(0.5);
        assert_eq!(step.len(), h.len());
        for ((coeff, pauli), rotation) in h.iter().zip(&step) {
            assert_eq!(rotation.pauli(), pauli);
            assert!((rotation.angle() - 2.0 * coeff * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_are_molecular_like() {
        // No term exceeds the weight achievable by a JW excitation on the
        // given register, and low-weight Z terms are present.
        for molecule in Molecule::ALL {
            let h = molecule.hamiltonian();
            assert!(h.iter().any(|(_, p)| p.weight() == 1));
            assert!(h.iter().any(|(_, p)| p.weight() == 2));
            assert!(h.iter().all(|(_, p)| p.weight() <= molecule.num_qubits()));
        }
    }

    #[test]
    fn observables_carry_signs_from_coefficients() {
        let obs = Molecule::LiH.observables();
        assert_eq!(obs.len(), 61);
        assert!(obs.iter().any(quclear_pauli::SignedPauli::is_negative));
    }

    #[test]
    #[should_panic(expected = "cannot generate")]
    fn impossible_term_count_panics() {
        let _ = synthetic_molecular_hamiltonian(2, 1000, 1);
    }
}

//! Parameter-sweep scenarios for variational workloads.
//!
//! Variational algorithms (VQE, QAOA) evaluate one circuit *structure* at
//! many parameter points. A [`SweepScenario`] packages that shape — a fixed
//! rotation program plus a list of angle assignments — so callers (examples,
//! benchmarks, the `quclear-engine` batch APIs) can iterate it directly.
//!
//! The generators here are engine-agnostic: they only produce programs and
//! angle grids. Feeding them to `quclear_engine::Engine::sweep` is what
//! turns the shared structure into cache hits.

use std::collections::BTreeSet;

use quclear_pauli::{PauliOp, PauliRotation, PauliString, SignedPauli};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Benchmark;

/// A fixed circuit structure evaluated at many parameter points.
#[derive(Clone, Debug)]
pub struct SweepScenario {
    /// Descriptive name (e.g. the benchmark it derives from).
    pub name: String,
    /// The rotation program; its own angles are the first evaluation point.
    pub program: Vec<PauliRotation>,
    /// One angle vector per evaluation point, each of length
    /// `program.len()`.
    pub angle_sets: Vec<Vec<f64>>,
}

impl SweepScenario {
    /// Number of evaluation points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.angle_sets.len()
    }

    /// Whether the sweep has no evaluation points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.angle_sets.is_empty()
    }

    /// The rotation program of evaluation point `point`: the shared
    /// structure re-bound to that point's angles. This is the shape the
    /// engine's estimation entry point
    /// (`quclear_engine::Engine::estimate_observables`) consumes — one call
    /// per sweep point estimates every observable of an
    /// [`ObservableSweep`] from one shot batch per commuting group.
    ///
    /// # Panics
    ///
    /// Panics if `point` is out of range.
    #[must_use]
    pub fn program_at(&self, point: usize) -> Vec<PauliRotation> {
        self.program
            .iter()
            .zip(&self.angle_sets[point])
            .map(|(rotation, &angle)| PauliRotation::new(rotation.pauli().clone(), angle))
            .collect()
    }
}

/// A VQE-style sweep over a benchmark's ansatz: `points` random parameter
/// vectors (uniform in `[-π, π)`), deterministic in `seed`.
///
/// # Examples
///
/// ```
/// use quclear_workloads::{vqe_sweep, Benchmark};
///
/// let sweep = vqe_sweep(&Benchmark::Ucc(2, 4), 16, 7);
/// assert_eq!(sweep.len(), 16);
/// assert!(sweep.angle_sets.iter().all(|a| a.len() == sweep.program.len()));
/// ```
#[must_use]
pub fn vqe_sweep(benchmark: &Benchmark, points: usize, seed: u64) -> SweepScenario {
    let program = benchmark.rotations();
    let mut rng = StdRng::seed_from_u64(seed);
    let angle_sets = (0..points)
        .map(|_| {
            program
                .iter()
                .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
                .collect()
        })
        .collect();
    SweepScenario {
        name: format!("vqe-{}", benchmark.name()),
        program,
        angle_sets,
    }
}

/// A QAOA angle-grid sweep: every `(γ, β)` pair from the two axes, applied
/// to a fixed one-layer MaxCut program.
///
/// The program's problem rotations all share γ and the mixer rotations all
/// share β, which is the standard QAOA parameterization restricted to one
/// layer.
///
/// # Examples
///
/// ```
/// use quclear_workloads::{qaoa_grid_sweep, Graph};
///
/// let graph = Graph::regular(8, 3, 11);
/// let sweep = qaoa_grid_sweep(&graph, &[0.1, 0.2], &[0.3, 0.4, 0.5]);
/// assert_eq!(sweep.len(), 6); // 2 gammas × 3 betas
/// ```
#[must_use]
pub fn qaoa_grid_sweep(graph: &crate::Graph, gammas: &[f64], betas: &[f64]) -> SweepScenario {
    let program = crate::maxcut_qaoa(graph, 1, 1.0, 1.0);
    // maxcut_qaoa emits the problem layer (weight-2 ZZ terms) followed by
    // the mixer layer (weight-1 X terms); classify by weight.
    let angle_sets = gammas
        .iter()
        .flat_map(|&gamma| {
            let program = &program;
            betas.iter().map(move |&beta| {
                program
                    .iter()
                    .map(|r| if r.weight() == 1 { beta } else { gamma })
                    .collect()
            })
        })
        .collect();
    SweepScenario {
        name: format!("qaoa-grid-{}v", graph.num_vertices()),
        program,
        angle_sets,
    }
}

/// A parameter sweep paired with the observable set measured at every
/// point — the shape of an end-to-end variational workload: compile/bind
/// each angle vector, execute, and estimate every observable from the same
/// shots via batch Clifford Absorption (CA-Pre rewrites the whole set,
/// CA-Post folds signs / remaps shots).
#[derive(Clone, Debug)]
pub struct ObservableSweep {
    /// The structure + angle grid to bind.
    pub scenario: SweepScenario,
    /// The observables estimated at every sweep point.
    pub observables: Vec<SignedPauli>,
}

/// A VQE expectation sweep: the ansatz of `benchmark` at `points` random
/// parameter vectors, measured against a Hamiltonian-shaped observable set
/// (every single-qubit `Z` plus each distinct rotation axis of the ansatz).
///
/// # Examples
///
/// ```
/// use quclear_workloads::{vqe_expectation_sweep, Benchmark};
///
/// let sweep = vqe_expectation_sweep(&Benchmark::Ucc(2, 4), 4, 3);
/// assert_eq!(sweep.scenario.len(), 4);
/// assert!(sweep.observables.len() >= 4); // at least one Z per qubit
/// ```
#[must_use]
pub fn vqe_expectation_sweep(benchmark: &Benchmark, points: usize, seed: u64) -> ObservableSweep {
    let scenario = vqe_sweep(benchmark, points, seed);
    let n = benchmark.num_qubits();
    let mut observables: Vec<SignedPauli> = (0..n)
        .map(|q| SignedPauli::positive(PauliString::single(n, q, PauliOp::Z)))
        .collect();
    let mut seen: BTreeSet<String> = observables.iter().map(|o| o.pauli().to_string()).collect();
    for rotation in &scenario.program {
        if rotation.pauli().is_identity() {
            continue;
        }
        if seen.insert(rotation.pauli().to_string()) {
            observables.push(SignedPauli::positive(rotation.pauli().clone()));
        }
    }
    ObservableSweep {
        scenario,
        observables,
    }
}

/// A QAOA sampling sweep: the angle grid of [`qaoa_grid_sweep`] paired with
/// the MaxCut edge observables whose expectations score each grid point
/// (estimated from post-processed shots).
///
/// # Examples
///
/// ```
/// use quclear_workloads::{qaoa_sampling_sweep, Graph};
///
/// let graph = Graph::regular(8, 3, 11);
/// let sweep = qaoa_sampling_sweep(&graph, &[0.1, 0.2], &[0.3]);
/// assert_eq!(sweep.scenario.len(), 2);
/// assert_eq!(sweep.observables.len(), graph.edges().len());
/// ```
#[must_use]
pub fn qaoa_sampling_sweep(graph: &crate::Graph, gammas: &[f64], betas: &[f64]) -> ObservableSweep {
    ObservableSweep {
        scenario: qaoa_grid_sweep(graph, gammas, betas),
        observables: crate::maxcut_observables(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn vqe_sweep_is_deterministic_in_seed() {
        let a = vqe_sweep(&Benchmark::Ucc(2, 4), 4, 3);
        let b = vqe_sweep(&Benchmark::Ucc(2, 4), 4, 3);
        let c = vqe_sweep(&Benchmark::Ucc(2, 4), 4, 4);
        assert_eq!(a.angle_sets, b.angle_sets);
        assert_ne!(a.angle_sets, c.angle_sets);
        assert!(!a.is_empty());
        assert!(a
            .angle_sets
            .iter()
            .flatten()
            .all(|x| (-std::f64::consts::PI..std::f64::consts::PI).contains(x)));
    }

    #[test]
    fn expectation_sweep_observables_are_deduplicated_and_sized() {
        let sweep = vqe_expectation_sweep(&Benchmark::Ucc(2, 4), 3, 5);
        let n = sweep.scenario.program[0].num_qubits();
        // One Z per qubit, then distinct axes only.
        assert!(sweep.observables.len() >= n);
        let mut seen = std::collections::BTreeSet::new();
        for o in &sweep.observables {
            assert_eq!(o.num_qubits(), n);
            assert!(seen.insert(o.pauli().to_string()), "duplicate {o}");
        }
    }

    #[test]
    fn sampling_sweep_pairs_grid_with_edge_observables() {
        let graph = Graph::regular(6, 2, 5);
        let sweep = qaoa_sampling_sweep(&graph, &[0.1, 0.2], &[1.0]);
        assert_eq!(sweep.scenario.len(), 2);
        assert_eq!(sweep.observables.len(), graph.edges().len());
        // Edge observables are weight-2 Z strings.
        assert!(sweep
            .observables
            .iter()
            .all(|o| o.weight() == 2 && o.pauli().x_bits().is_zero()));
    }

    #[test]
    fn qaoa_grid_covers_the_cross_product() {
        let graph = Graph::regular(6, 2, 5);
        let sweep = qaoa_grid_sweep(&graph, &[0.1, 0.2, 0.3], &[1.0, 2.0]);
        assert_eq!(sweep.len(), 6);
        for angles in &sweep.angle_sets {
            assert_eq!(angles.len(), sweep.program.len());
            for (rotation, angle) in sweep.program.iter().zip(angles) {
                if rotation.weight() == 1 {
                    assert!([1.0, 2.0].contains(angle), "mixer must carry beta");
                } else {
                    assert!(
                        [0.1, 0.2, 0.3].contains(angle),
                        "problem term must carry gamma"
                    );
                }
            }
        }
    }
}

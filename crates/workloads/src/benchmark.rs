//! The 19-benchmark suite of Table II.

use quclear_pauli::PauliRotation;

use crate::graphs::Graph;
use crate::molecular::Molecule;
use crate::qaoa::{labs_qaoa, maxcut_qaoa};
use crate::uccsd::Uccsd;

/// Benchmark category (the row groups of Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchmarkCategory {
    /// UCCSD ansätze for the chemistry eigenvalue problem.
    Uccsd,
    /// Trotterized molecular Hamiltonian simulation.
    HamiltonianSimulation,
    /// QAOA for the LABS problem.
    QaoaLabs,
    /// QAOA for MaxCut.
    QaoaMaxCut,
}

impl BenchmarkCategory {
    /// Display name matching the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkCategory::Uccsd => "UCCSD",
            BenchmarkCategory::HamiltonianSimulation => "Hamiltonian simulation",
            BenchmarkCategory::QaoaLabs => "QAOA LABS",
            BenchmarkCategory::QaoaMaxCut => "QAOA MaxCut",
        }
    }
}

/// One of the 19 benchmarks of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// UCCSD ansatz with the given (electrons, spin orbitals).
    Ucc(usize, usize),
    /// Trotterized molecular Hamiltonian simulation.
    Molecule(Molecule),
    /// QAOA for LABS on `n` spins.
    Labs(usize),
    /// QAOA MaxCut on a random `degree`-regular graph with `n` nodes.
    MaxCutRegular {
        /// Number of graph nodes (qubits).
        n: usize,
        /// Vertex degree.
        degree: usize,
    },
    /// QAOA MaxCut on a random graph with `n` nodes and `edges` edges.
    MaxCutRandom {
        /// Number of graph nodes (qubits).
        n: usize,
        /// Number of edges.
        edges: usize,
    },
}

/// Seed used for every randomized workload so that results are reproducible.
const WORKLOAD_SEED: u64 = 0x51CA;

impl Benchmark {
    /// The full 19-benchmark suite, in Table II order.
    #[must_use]
    pub fn all() -> Vec<Benchmark> {
        vec![
            Benchmark::Ucc(2, 4),
            Benchmark::Ucc(2, 6),
            Benchmark::Ucc(4, 8),
            Benchmark::Ucc(6, 12),
            Benchmark::Ucc(8, 16),
            Benchmark::Ucc(10, 20),
            Benchmark::Molecule(Molecule::LiH),
            Benchmark::Molecule(Molecule::H2O),
            Benchmark::Molecule(Molecule::Benzene),
            Benchmark::Labs(10),
            Benchmark::Labs(15),
            Benchmark::Labs(20),
            Benchmark::MaxCutRegular { n: 15, degree: 4 },
            Benchmark::MaxCutRegular { n: 20, degree: 4 },
            Benchmark::MaxCutRegular { n: 20, degree: 8 },
            Benchmark::MaxCutRegular { n: 20, degree: 12 },
            Benchmark::MaxCutRandom { n: 10, edges: 12 },
            Benchmark::MaxCutRandom { n: 15, edges: 63 },
            Benchmark::MaxCutRandom { n: 20, edges: 117 },
        ]
    }

    /// A reduced suite that omits the two largest UCCSD instances; useful for
    /// quick runs of the experiment harness.
    #[must_use]
    pub fn small_suite() -> Vec<Benchmark> {
        Benchmark::all()
            .into_iter()
            .filter(|b| !matches!(b, Benchmark::Ucc(8, 16) | Benchmark::Ucc(10, 20)))
            .collect()
    }

    /// The benchmark name as used in the paper's tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Benchmark::Ucc(e, o) => format!("UCC-({e},{o})"),
            Benchmark::Molecule(m) => m.name().to_string(),
            Benchmark::Labs(n) => format!("LABS-(n{n})"),
            Benchmark::MaxCutRegular { n, degree } => format!("MaxCut-(n{n}, r{degree})"),
            Benchmark::MaxCutRandom { n, edges } => format!("MaxCut-(n{n}, e{edges})"),
        }
    }

    /// The benchmark category.
    #[must_use]
    pub fn category(&self) -> BenchmarkCategory {
        match self {
            Benchmark::Ucc(..) => BenchmarkCategory::Uccsd,
            Benchmark::Molecule(_) => BenchmarkCategory::HamiltonianSimulation,
            Benchmark::Labs(_) => BenchmarkCategory::QaoaLabs,
            Benchmark::MaxCutRegular { .. } | Benchmark::MaxCutRandom { .. } => {
                BenchmarkCategory::QaoaMaxCut
            }
        }
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        match self {
            Benchmark::Ucc(_, o) => *o,
            Benchmark::Molecule(m) => m.num_qubits(),
            Benchmark::Labs(n)
            | Benchmark::MaxCutRegular { n, .. }
            | Benchmark::MaxCutRandom { n, .. } => *n,
        }
    }

    /// Returns `true` for the QAOA benchmarks, whose results are measured as
    /// probability distributions (and absorbed with the CNOT-network path).
    #[must_use]
    pub fn measures_probabilities(&self) -> bool {
        matches!(
            self.category(),
            BenchmarkCategory::QaoaLabs | BenchmarkCategory::QaoaMaxCut
        )
    }

    /// The Pauli-rotation program of the benchmark.
    #[must_use]
    pub fn rotations(&self) -> Vec<PauliRotation> {
        match self {
            Benchmark::Ucc(e, o) => Uccsd::new(*e, *o).rotations(),
            Benchmark::Molecule(m) => m.trotter_step(1.0),
            Benchmark::Labs(n) => labs_qaoa(*n, 1, 0.4, 0.9),
            Benchmark::MaxCutRegular { n, degree } => {
                let graph = Graph::regular(*n, *degree, WORKLOAD_SEED);
                maxcut_qaoa(&graph, 1, 0.4, 0.9)
            }
            Benchmark::MaxCutRandom { n, edges } => {
                let graph = Graph::random(*n, *edges, WORKLOAD_SEED);
                maxcut_qaoa(&graph, 1, 0.4, 0.9)
            }
        }
    }

    /// Measurement observables for the benchmark: the Hamiltonian terms for
    /// chemistry workloads, the MaxCut edge observables for MaxCut, and the
    /// LABS problem terms for LABS.
    #[must_use]
    pub fn observables(&self) -> Vec<quclear_pauli::SignedPauli> {
        match self {
            Benchmark::Ucc(_, o) => {
                // Use the number-operator style observables Z_i and Z_iZ_j,
                // the dominant measurement set of molecular VQE.
                let n = *o;
                let mut obs = Vec::new();
                for q in 0..n {
                    obs.push(quclear_pauli::SignedPauli::positive(
                        quclear_pauli::PauliString::single(n, q, quclear_pauli::PauliOp::Z),
                    ));
                }
                for a in 0..n {
                    for b in a + 1..n {
                        let mut p = quclear_pauli::PauliString::identity(n);
                        p.set_op(a, quclear_pauli::PauliOp::Z);
                        p.set_op(b, quclear_pauli::PauliOp::Z);
                        obs.push(quclear_pauli::SignedPauli::positive(p));
                    }
                }
                obs
            }
            Benchmark::Molecule(m) => m.observables(),
            Benchmark::Labs(n) => crate::qaoa::labs_hamiltonian(*n)
                .into_iter()
                .map(|(c, p)| quclear_pauli::SignedPauli::new(p, c < 0.0))
                .collect(),
            Benchmark::MaxCutRegular { n, degree } => {
                crate::qaoa::maxcut_observables(&Graph::regular(*n, *degree, WORKLOAD_SEED))
            }
            Benchmark::MaxCutRandom { n, edges } => {
                crate::qaoa::maxcut_observables(&Graph::random(*n, *edges, WORKLOAD_SEED))
            }
        }
    }

    /// Native (unoptimized) CNOT count: `Σ 2·(weight − 1)` over the program.
    #[must_use]
    pub fn native_cnot_count(&self) -> usize {
        self.rotations()
            .iter()
            .map(PauliRotation::native_cnot_cost)
            .sum()
    }

    /// Native (unoptimized) single-qubit gate count.
    #[must_use]
    pub fn native_single_qubit_count(&self) -> usize {
        self.rotations()
            .iter()
            .map(PauliRotation::native_single_qubit_cost)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nineteen_benchmarks() {
        assert_eq!(Benchmark::all().len(), 19);
        assert_eq!(Benchmark::small_suite().len(), 17);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<String> =
            Benchmark::all().iter().map(Benchmark::name).collect();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn qubit_counts_match_table_ii() {
        let expected = [
            ("UCC-(2,4)", 4usize),
            ("UCC-(10,20)", 20),
            ("LiH", 6),
            ("H2O", 8),
            ("benzene", 12),
            ("LABS-(n10)", 10),
            ("MaxCut-(n15, r4)", 15),
            ("MaxCut-(n20, e117)", 20),
        ];
        let all = Benchmark::all();
        for (name, qubits) in expected {
            let bench = all.iter().find(|b| b.name() == name).unwrap();
            assert_eq!(bench.num_qubits(), qubits, "{name}");
        }
    }

    #[test]
    fn pauli_counts_match_table_ii_where_exact() {
        let expected = [
            ("UCC-(2,4)", 24usize),
            ("UCC-(2,6)", 80),
            ("UCC-(4,8)", 320),
            ("LiH", 61),
            ("H2O", 184),
            ("benzene", 1254),
            ("MaxCut-(n15, r4)", 45),
            ("MaxCut-(n20, r12)", 140),
            ("MaxCut-(n10, e12)", 22),
        ];
        let all = Benchmark::all();
        for (name, count) in expected {
            let bench = all.iter().find(|b| b.name() == name).unwrap();
            assert_eq!(bench.rotations().len(), count, "{name}");
        }
    }

    #[test]
    fn maxcut_native_counts_match_table_ii() {
        let bench = Benchmark::MaxCutRegular { n: 20, degree: 8 };
        assert_eq!(bench.native_cnot_count(), 160);
        assert_eq!(bench.native_single_qubit_count(), 140);
    }

    #[test]
    fn probability_measurement_flag() {
        assert!(Benchmark::Labs(10).measures_probabilities());
        assert!(Benchmark::MaxCutRegular { n: 15, degree: 4 }.measures_probabilities());
        assert!(!Benchmark::Ucc(2, 4).measures_probabilities());
        assert!(!Benchmark::Molecule(Molecule::LiH).measures_probabilities());
    }

    #[test]
    fn observables_are_nonempty_and_sized_correctly() {
        for bench in [
            Benchmark::Ucc(2, 4),
            Benchmark::Molecule(Molecule::LiH),
            Benchmark::MaxCutRegular { n: 15, degree: 4 },
            Benchmark::Labs(10),
        ] {
            let obs = bench.observables();
            assert!(!obs.is_empty(), "{}", bench.name());
            assert!(obs.iter().all(|o| o.num_qubits() == bench.num_qubits()));
        }
    }

    #[test]
    fn rotations_are_deterministic() {
        let a = Benchmark::MaxCutRegular { n: 20, degree: 8 }.rotations();
        let b = Benchmark::MaxCutRegular { n: 20, degree: 8 }.rotations();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }
}

//! Simple undirected graphs and generators for the QAOA benchmarks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// An undirected simple graph on `n` vertices.
///
/// # Examples
///
/// ```
/// use quclear_workloads::Graph;
///
/// let g = Graph::regular(10, 4, 7);
/// assert_eq!(g.num_vertices(), 10);
/// assert_eq!(g.num_edges(), 20);
/// assert!(g.degrees().iter().all(|&d| d == 4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph from an edge list (self-loops and duplicates are
    /// rejected).
    ///
    /// # Panics
    ///
    /// Panics if an edge is out of range, a self-loop, or a duplicate.
    #[must_use]
    pub fn from_edges(num_vertices: usize, edges: &[(usize, usize)]) -> Self {
        let mut seen = HashSet::new();
        let mut normalized = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            assert!(
                a < num_vertices && b < num_vertices,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loop ({a},{a}) not allowed");
            let key = (a.min(b), a.max(b));
            assert!(seen.insert(key), "duplicate edge ({a},{b})");
            normalized.push(key);
        }
        Graph {
            num_vertices,
            edges: normalized,
        }
    }

    /// A random `degree`-regular graph on `n` vertices (configuration model
    /// with restarts, falling back to a circulant construction if sampling
    /// repeatedly fails).
    ///
    /// # Panics
    ///
    /// Panics if `n·degree` is odd or `degree >= n`.
    #[must_use]
    pub fn regular(n: usize, degree: usize, seed: u64) -> Self {
        assert!(degree < n, "degree must be smaller than the vertex count");
        assert!((n * degree).is_multiple_of(2), "n·degree must be even");
        let mut rng = StdRng::seed_from_u64(seed);
        for _attempt in 0..200 {
            if let Some(graph) = try_configuration_model(n, degree, &mut rng) {
                return graph;
            }
        }
        // Deterministic fallback: circulant graph (connect to the d/2 nearest
        // neighbours on each side; for odd degree also to the antipode).
        let mut edges = Vec::new();
        for v in 0..n {
            for k in 1..=degree / 2 {
                edges.push((v, (v + k) % n));
            }
        }
        if degree % 2 == 1 {
            for v in 0..n / 2 {
                edges.push((v, v + n / 2));
            }
        }
        let mut deduped: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        deduped.sort_unstable();
        Graph::from_edges(n, &deduped)
    }

    /// A random simple graph with exactly `num_edges` edges.
    ///
    /// # Panics
    ///
    /// Panics if `num_edges` exceeds `n·(n-1)/2`.
    #[must_use]
    pub fn random(n: usize, num_edges: usize, seed: u64) -> Self {
        let max_edges = n * (n - 1) / 2;
        assert!(num_edges <= max_edges, "too many edges requested");
        let mut all: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        all.shuffle(&mut rng);
        all.truncate(num_edges);
        all.sort_unstable();
        Graph::from_edges(n, &all)
    }

    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list (each edge appears once, with `a < b`).
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Vertex degrees.
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0; self.num_vertices];
        for &(a, b) in &self.edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        deg
    }

    /// The cut value of an assignment given as a bit mask (bit `v` = side of
    /// vertex `v`): the number of edges whose endpoints are on different
    /// sides.
    #[must_use]
    pub fn cut_value(&self, assignment: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| ((assignment >> a) ^ (assignment >> b)) & 1 == 1)
            .count()
    }

    /// The maximum cut value over all assignments (brute force; only for
    /// small graphs used in tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 24 vertices.
    #[must_use]
    pub fn max_cut_brute_force(&self) -> usize {
        assert!(
            self.num_vertices <= 24,
            "brute force limited to 24 vertices"
        );
        (0..1usize << self.num_vertices)
            .map(|a| self.cut_value(a))
            .max()
            .unwrap_or(0)
    }
}

fn try_configuration_model(n: usize, degree: usize, rng: &mut StdRng) -> Option<Graph> {
    let mut stubs: Vec<usize> = (0..n)
        .flat_map(|v| std::iter::repeat_n(v, degree))
        .collect();
    stubs.shuffle(rng);
    let mut seen = HashSet::new();
    let mut edges = Vec::with_capacity(stubs.len() / 2);
    while stubs.len() >= 2 {
        // Pick two random stubs.
        let i = rng.gen_range(0..stubs.len());
        let a = stubs.swap_remove(i);
        let j = rng.gen_range(0..stubs.len());
        let b = stubs.swap_remove(j);
        if a == b {
            return None;
        }
        let key = (a.min(b), a.max(b));
        if !seen.insert(key) {
            return None;
        }
        edges.push(key);
    }
    Some(Graph::from_edges(n, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graphs_have_uniform_degree() {
        for (n, d) in [(10usize, 4usize), (15, 4), (20, 8), (20, 12)] {
            let g = Graph::regular(n, d, 42);
            assert_eq!(g.num_edges(), n * d / 2, "({n},{d})");
            assert!(g.degrees().iter().all(|&deg| deg == d), "({n},{d})");
        }
    }

    #[test]
    fn random_graph_has_exact_edge_count() {
        let g = Graph::random(15, 63, 3);
        assert_eq!(g.num_edges(), 63);
        assert_eq!(g.num_vertices(), 15);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(Graph::regular(12, 4, 9), Graph::regular(12, 4, 9));
        assert_eq!(Graph::random(10, 12, 5), Graph::random(10, 12, 5));
        assert_ne!(Graph::random(10, 12, 5), Graph::random(10, 12, 6));
    }

    #[test]
    fn cut_values() {
        // A square: 0-1-2-3-0.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.cut_value(0b0101), 4);
        assert_eq!(g.cut_value(0b0011), 2);
        assert_eq!(g.cut_value(0), 0);
        assert_eq!(g.max_cut_brute_force(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let _ = Graph::from_edges(3, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "n·degree must be even")]
    fn odd_regular_product_rejected() {
        let _ = Graph::regular(5, 3, 0);
    }
}

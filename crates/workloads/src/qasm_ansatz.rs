//! Gate-level (QASM-textual) ansatz generators.
//!
//! The other workload generators produce Pauli-rotation programs directly;
//! these produce the *gate-level* form real workloads arrive in — OpenQASM
//! 2.0 text built from `Rz`/`CX` ladders and basis changes — **together
//! with** the rotation program the text encodes. That pairing is what the
//! QASM-ingestion tests, benches and examples need: lift the text, compile
//! it, and compare against the native program.

use std::fmt::Write as _;

use quclear_pauli::{PauliOp, PauliRotation, PauliString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A gate-level ansatz in OpenQASM 2.0 text, paired with the Pauli-rotation
/// program it encodes.
///
/// `qasm` and `program` describe the same unitary (up to the global phase of
/// `t`/`tdg` translation, when present): compiling the lifted text and
/// compiling `program` natively must agree on every observable.
#[derive(Clone, Debug)]
pub struct QasmAnsatz {
    /// Descriptive name.
    pub name: String,
    /// The OpenQASM 2.0 source text.
    pub qasm: String,
    /// The Pauli-rotation program the text encodes, in lift order.
    pub program: Vec<PauliRotation>,
    /// Register size.
    pub num_qubits: usize,
}

/// Generates a VQE/QAOA-style ansatz as QASM text: `layers` repetitions of
/// nearest-neighbour `CX·Rz·CX` ZZ-interaction gadgets, per-qubit `rx`
/// mixers, and one full-register `Rz`/`CX` ladder whose rotation spans all
/// `n` qubits. Angles are drawn deterministically from `seed`.
///
/// The returned [`QasmAnsatz::program`] lists the corresponding rotations —
/// `ZZ` terms, `X` mixers and one `Z…Z` term per layer — in the order the
/// lift pass discovers them, so
/// `quclear_core::lift_qasm(&ansatz.qasm)?.rotations` matches it rotation
/// for rotation.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use quclear_workloads::zz_chain_qasm;
///
/// let ansatz = zz_chain_qasm(4, 2, 7);
/// assert!(ansatz.qasm.contains("cx q[0], q[1];"));
/// // 3 ZZ terms + 4 mixers + 1 ZZZZ ladder term, per layer.
/// assert_eq!(ansatz.program.len(), 2 * (3 + 4 + 1));
/// ```
#[must_use]
pub fn zz_chain_qasm(n: usize, layers: usize, seed: u64) -> QasmAnsatz {
    assert!(n >= 2, "the ZZ-chain ansatz needs at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qasm = String::new();
    qasm.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(qasm, "qreg q[{n}];");
    let mut program = Vec::new();

    let zz =
        |qasm: &mut String, program: &mut Vec<PauliRotation>, a: usize, b: usize, theta: f64| {
            let _ = writeln!(qasm, "cx q[{a}], q[{b}];");
            let _ = writeln!(qasm, "rz({theta:.17}) q[{b}];");
            let _ = writeln!(qasm, "cx q[{a}], q[{b}];");
            let mut pauli = PauliString::identity(n);
            pauli.set_op(a, PauliOp::Z);
            pauli.set_op(b, PauliOp::Z);
            program.push(PauliRotation::new(pauli, theta));
        };

    for _ in 0..layers {
        // Nearest-neighbour ZZ interactions.
        for a in 0..n - 1 {
            let theta = rng.gen_range(-1.5..1.5);
            zz(&mut qasm, &mut program, a, a + 1, theta);
        }
        // Transverse-field mixers.
        for q in 0..n {
            let phi = rng.gen_range(-1.5..1.5);
            let _ = writeln!(qasm, "rx({phi:.17}) q[{q}];");
            program.push(PauliRotation::new(
                PauliString::single(n, q, PauliOp::X),
                phi,
            ));
        }
        // A full-register ladder: lifts to one weight-n Z…Z rotation.
        let theta = rng.gen_range(-1.5..1.5);
        for a in 0..n - 1 {
            let _ = writeln!(qasm, "cx q[{}], q[{}];", a, a + 1);
        }
        let _ = writeln!(qasm, "rz({theta:.17}) q[{}];", n - 1);
        for a in (0..n - 1).rev() {
            let _ = writeln!(qasm, "cx q[{}], q[{}];", a, a + 1);
        }
        program.push(PauliRotation::new(
            PauliString::from_ops(&vec![PauliOp::Z; n]),
            theta,
        ));
    }

    QasmAnsatz {
        name: format!("zz-chain-{n}q-{layers}l"),
        qasm,
        program,
        num_qubits: n,
    }
}

/// Generates a hardware-efficient ansatz as QASM text: `layers` of per-qubit
/// `ry`/`rz` rotations followed by a `cx` entangling chain, the shape most
/// variational front-ends emit by default.
///
/// Unlike [`zz_chain_qasm`], the entangling chain is *not* uncomputed, so
/// the lifted axes grow through the accumulated Clifford — the stress
/// pattern for the lift pass. [`QasmAnsatz::program`] is left empty here
/// (there is no natural hand-written rotation form); callers compare against
/// the lifted program itself.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn hardware_efficient_qasm(n: usize, layers: usize, seed: u64) -> QasmAnsatz {
    assert!(
        n >= 2,
        "the hardware-efficient ansatz needs at least two qubits"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qasm = String::new();
    qasm.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(qasm, "qreg q[{n}];");
    for _ in 0..layers {
        for q in 0..n {
            let _ = writeln!(qasm, "ry({:.17}) q[{q}];", rng.gen_range(-1.5..1.5));
            let _ = writeln!(qasm, "rz({:.17}) q[{q}];", rng.gen_range(-1.5..1.5));
        }
        for a in 0..n - 1 {
            let _ = writeln!(qasm, "cx q[{}], q[{}];", a, a + 1);
        }
    }
    QasmAnsatz {
        name: format!("hardware-efficient-{n}q-{layers}l"),
        qasm,
        program: Vec::new(),
        num_qubits: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zz_chain_counts_add_up() {
        let ansatz = zz_chain_qasm(5, 3, 11);
        assert_eq!(ansatz.program.len(), 3 * ((5 - 1) + 5 + 1));
        assert_eq!(ansatz.num_qubits, 5);
        // Deterministic in the seed.
        assert_eq!(zz_chain_qasm(5, 3, 11).qasm, ansatz.qasm);
        assert_ne!(zz_chain_qasm(5, 3, 12).qasm, ansatz.qasm);
    }

    #[test]
    fn hardware_efficient_emits_rotations_and_chains() {
        let ansatz = hardware_efficient_qasm(4, 2, 3);
        assert_eq!(ansatz.qasm.matches("ry(").count(), 8);
        assert_eq!(ansatz.qasm.matches("cx ").count(), 6);
    }
}

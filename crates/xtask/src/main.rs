//! Workspace task runner. One command so far:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! A pure-text lint pass (no extra dependencies, no proc macros) enforcing
//! the workspace's concurrency-invariant conventions over `crates/*/src`:
//!
//! * **lock-unwrap** — no `.unwrap()` / `.expect(` directly on
//!   `lock()`/`read()`/`write()` results. Long-running services recover
//!   from poisoning (`unwrap_or_else(PoisonError::into_inner)`) instead of
//!   turning one panicked request into a permanent outage (see
//!   `engine::sharded`'s module docs for when that recovery is sound).
//! * **ordering-relaxed** — every `Ordering::Relaxed` on an atomic must
//!   carry a `// ordering:` audit comment (same line or within the
//!   preceding eight lines) justifying why relaxed is enough. Atomics that
//!   participate in cross-cell invariants use Release/Acquire and are
//!   model-checked (`--features sched-model`).
//! * **words-mut-tail** — a file that writes raw words through
//!   `BitVec::words_mut` must also assert `tail_is_clear` (the padding
//!   bits past `len` stay zero; the popcount fast paths rely on it).
//! * **wall-clock** — *sched-reachable* files (those importing from their
//!   crate's `sync` shim module) must not read the real clock directly:
//!   `Instant` comes from `crate::sync` so models run on virtual time, and
//!   `SystemTime` is banned outright. Deliberate wall-clock reads are
//!   allowlisted with a reason.
//!
//! Findings print as `file:line: [rule] message` and the process exits
//! nonzero. Deliberate exceptions live in `crates/xtask/lint.allow`
//! (`rule path # reason`), one documented waiver per line.
//!
//! Scope and limits: this is a *text* lint. Lines are matched after
//! stripping `//` comments; everything from the first `#[cfg(test)]` to the
//! end of a file is skipped (the workspace convention keeps test modules
//! last), and `tests/` trees are not walked — tests may take whatever
//! shortcuts they like. The lint is deliberately dumb and loud: it exists
//! to force a human-written justification into the diff, not to prove
//! anything.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// How many lines above an `Ordering::Relaxed` use the `// ordering:`
/// audit comment may sit.
const ORDERING_COMMENT_WINDOW: usize = 8;

/// Crates the lint does not walk: the deterministic scheduler *implements*
/// the shims (it wraps the real std primitives by design), and the lint
/// itself would otherwise flag its own pattern strings.
const EXCLUDED_CRATES: &[&str] = &["compat/sched", "xtask"];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`; try `cargo run -p xtask -- lint`");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("xtask: no command given; try `cargo run -p xtask -- lint`");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allow = Allowlist::load(&root.join("crates/xtask/lint.allow"));
    let mut findings: Vec<Finding> = Vec::new();
    let mut files = 0usize;
    for file in rust_sources(&root.join("crates")) {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let content = match std::fs::read_to_string(&file) {
            Ok(content) => content,
            Err(e) => {
                eprintln!("xtask lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        files += 1;
        findings.extend(lint_file(&rel, &content, &allow));
    }
    for waiver in allow.unused() {
        findings.push(Finding {
            file: "crates/xtask/lint.allow".to_string(),
            line: waiver.line,
            rule: "stale-allow",
            message: format!(
                "waiver `{} {}` matched nothing — remove it",
                waiver.rule, waiver.path
            ),
        });
    }
    if findings.is_empty() {
        println!("xtask lint: {files} files clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        println!("xtask lint: {} finding(s) in {files} files", findings.len());
        ExitCode::FAILURE
    }
}

/// All `.rs` files under `crates/*/src`, excluding [`EXCLUDED_CRATES`].
fn rust_sources(crates_dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![crates_dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let rel = path.to_string_lossy().replace('\\', "/");
            if EXCLUDED_CRATES
                .iter()
                .any(|c| rel.ends_with(&format!("crates/{c}")))
            {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") && rel.contains("/src/") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

/// One waiver line from `lint.allow`.
struct Waiver {
    rule: String,
    path: String,
    line: usize,
}

struct Allowlist {
    waivers: Vec<Waiver>,
    used: std::cell::RefCell<BTreeSet<usize>>,
}

impl Allowlist {
    fn load(path: &Path) -> Allowlist {
        let content = std::fs::read_to_string(path).unwrap_or_default();
        Allowlist::parse(&content)
    }

    fn parse(content: &str) -> Allowlist {
        let mut waivers = Vec::new();
        for (i, raw) in content.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(path)) = (parts.next(), parts.next()) {
                waivers.push(Waiver {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    line: i + 1,
                });
            }
        }
        Allowlist {
            waivers,
            used: std::cell::RefCell::new(BTreeSet::new()),
        }
    }

    /// Whether `rule` is waived for `file`, marking the waiver as used.
    fn allows(&self, rule: &str, file: &str) -> bool {
        for (i, w) in self.waivers.iter().enumerate() {
            if w.rule == rule && w.path == file {
                self.used.borrow_mut().insert(i);
                return true;
            }
        }
        false
    }

    /// Waivers that never matched a finding (stale entries are findings
    /// themselves: the allowlist must shrink when the code gets fixed).
    fn unused(&self) -> Vec<&Waiver> {
        let used = self.used.borrow();
        self.waivers
            .iter()
            .enumerate()
            .filter(|(i, _)| !used.contains(i))
            .map(|(_, w)| w)
            .collect()
    }
}

/// The code part of a line: everything before the first `//`. Crude (a
/// `//` inside a string literal truncates the match window early) but
/// errs toward missing a string-literal edge case rather than flagging
/// comments and docs.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn lint_file(rel: &str, content: &str, allow: &Allowlist) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    // The workspace convention keeps `#[cfg(test)] mod tests` last in the
    // file; everything from there on plays by test rules (panicking on
    // poison is exactly what a test wants).
    let cut = lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());
    let prod = &lines[..cut];

    let mut findings = Vec::new();

    // lock-unwrap: panicking on a poisoned lock turns one panicked request
    // into a cascading outage; recover with PoisonError::into_inner (and
    // justify why recovery is sound) instead.
    const LOCK_UNWRAP: &[&str] = &[
        ".lock().unwrap(",
        ".lock().expect(",
        ".read().unwrap(",
        ".read().expect(",
        ".write().unwrap(",
        ".write().expect(",
    ];
    for (i, line) in prod.iter().enumerate() {
        let code = code_part(line);
        if LOCK_UNWRAP.iter().any(|pat| code.contains(pat)) {
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "lock-unwrap",
                message: "unwrap/expect on a lock result; recover from poisoning with \
                          `unwrap_or_else(PoisonError::into_inner)` and document why \
                          that is sound"
                    .to_string(),
            });
        }
    }

    // ordering-relaxed: every relaxed atomic op carries a human-written
    // justification close enough to survive code review.
    for (i, line) in prod.iter().enumerate() {
        if !code_part(line).contains("Ordering::Relaxed") {
            continue;
        }
        let start = i.saturating_sub(ORDERING_COMMENT_WINDOW);
        let justified = lines[start..=i].iter().any(|l| l.contains("// ordering:"));
        if !justified {
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "ordering-relaxed",
                message: format!(
                    "Ordering::Relaxed without a `// ordering:` audit comment within \
                     {ORDERING_COMMENT_WINDOW} lines"
                ),
            });
        }
    }

    // words-mut-tail: raw word writes can set padding bits past `len`;
    // the popcount fast paths assume they never do.
    let asserts_tail = prod.iter().any(|l| l.contains("tail_is_clear"));
    for (i, line) in prod.iter().enumerate() {
        if code_part(line).contains(".words_mut(") && !asserts_tail {
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "words-mut-tail",
                message: "writes raw words via words_mut() but the file never asserts \
                          tail_is_clear; add a debug_assert covering the mutation"
                    .to_string(),
            });
        }
    }

    // wall-clock: sched-reachable code takes Instant from crate::sync so
    // the model checker can drive time virtually.
    {
        let sched_reachable = prod.iter().any(|l| code_part(l).contains("crate::sync"));
        if sched_reachable {
            let imports_std_instant = prod.iter().any(|l| {
                code_part(l).contains("use std::time::") && code_part(l).contains("Instant")
            });
            for (i, line) in prod.iter().enumerate() {
                let code = code_part(line);
                if code.contains("SystemTime") {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: i + 1,
                        rule: "wall-clock",
                        message: "SystemTime in sched-reachable code; use crate::sync::Instant \
                                  (or allowlist with a reason)"
                            .to_string(),
                    });
                } else if imports_std_instant && code.contains("Instant::now(") {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: i + 1,
                        rule: "wall-clock",
                        message: "std::time::Instant::now() in sched-reachable code; import \
                                  Instant from crate::sync so models run on virtual time \
                                  (or allowlist with a reason)"
                            .to_string(),
                    });
                }
            }
        }
    }

    // Waivers suppress findings (and are marked used only when they do, so
    // stale entries surface once the underlying code is fixed).
    findings.retain(|f| !allow.allows(f.rule, &f.file));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_waivers() -> Allowlist {
        Allowlist::parse("")
    }

    fn rules(findings: &[Finding]) -> Vec<(&'static str, usize)> {
        findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn clean_file_has_no_findings() {
        let src = "\
use crate::sync::{Instant, Mutex, PoisonError};

fn fine(m: &Mutex<u32>) -> u32 {
    // ordering: Relaxed — statistical counter.
    let _ = std::sync::atomic::Ordering::Relaxed;
    let t = Instant::now();
    let _ = t;
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}
";
        assert!(lint_file("crates/x/src/a.rs", src, &no_waivers()).is_empty());
    }

    #[test]
    fn lock_unwrap_is_flagged_with_line() {
        let src = "fn bad(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock().unwrap()\n}\n";
        let findings = lint_file("crates/x/src/a.rs", src, &no_waivers());
        assert_eq!(rules(&findings), vec![("lock-unwrap", 2)]);
        let expect =
            "fn bad(m: &std::sync::RwLock<u32>) -> u32 {\n    *m.read().expect(\"x\")\n}\n";
        let findings = lint_file("crates/x/src/a.rs", expect, &no_waivers());
        assert_eq!(rules(&findings), vec![("lock-unwrap", 2)]);
    }

    #[test]
    fn relaxed_without_audit_comment_is_flagged() {
        let src = "fn f(a: &std::sync::atomic::AtomicU64) {\n    a.load(Ordering::Relaxed);\n}\n";
        let findings = lint_file("crates/x/src/a.rs", src, &no_waivers());
        assert_eq!(rules(&findings), vec![("ordering-relaxed", 2)]);
        let ok = "fn f(a: &A) {\n    // ordering: Relaxed — advisory read.\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(lint_file("crates/x/src/a.rs", ok, &no_waivers()).is_empty());
    }

    #[test]
    fn audit_comment_outside_the_window_does_not_count() {
        let filler = "    let _ = 0;\n".repeat(ORDERING_COMMENT_WINDOW + 1);
        let src = format!("// ordering: too far away\n{filler}    a.load(Ordering::Relaxed);\n");
        let findings = lint_file("crates/x/src/a.rs", &src, &no_waivers());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "ordering-relaxed");
    }

    #[test]
    fn words_mut_requires_tail_assert_in_file() {
        let bad = "fn f(b: &mut BitVec) {\n    b.words_mut()[0] = 1;\n}\n";
        let findings = lint_file("crates/x/src/a.rs", bad, &no_waivers());
        assert_eq!(rules(&findings), vec![("words-mut-tail", 2)]);
        let good = "fn f(b: &mut BitVec) {\n    b.words_mut()[0] = 1;\n    debug_assert!(b.tail_is_clear());\n}\n";
        assert!(lint_file("crates/x/src/a.rs", good, &no_waivers()).is_empty());
    }

    #[test]
    fn wall_clock_flags_only_sched_reachable_std_instant() {
        let bad = "use std::time::Instant;\nuse crate::sync::Mutex;\nfn f() {\n    let _ = Instant::now();\n}\n";
        let findings = lint_file("crates/x/src/a.rs", bad, &no_waivers());
        assert_eq!(rules(&findings), vec![("wall-clock", 4)]);
        // Not sched-reachable: free to use the real clock.
        let plain = "use std::time::Instant;\nfn f() {\n    let _ = Instant::now();\n}\n";
        assert!(lint_file("crates/x/src/a.rs", plain, &no_waivers()).is_empty());
        // Sched-reachable but Instant comes from the shim: fine.
        let shim = "use crate::sync::Instant;\nfn f() {\n    let _ = Instant::now();\n}\n";
        assert!(lint_file("crates/x/src/a.rs", shim, &no_waivers()).is_empty());
        // SystemTime is banned in sched-reachable files regardless.
        let st =
            "use crate::sync::Mutex;\nfn f() {\n    let _ = std::time::SystemTime::now();\n}\n";
        let findings = lint_file("crates/x/src/a.rs", st, &no_waivers());
        assert_eq!(rules(&findings), vec![("wall-clock", 3)]);
    }

    #[test]
    fn test_modules_and_comments_are_skipped() {
        let src = "\
// a comment mentioning m.lock().unwrap() is fine
fn f() {}

#[cfg(test)]
mod tests {
    fn t(m: &std::sync::Mutex<u32>) -> u32 {
        *m.lock().unwrap()
    }
}
";
        assert!(lint_file("crates/x/src/a.rs", src, &no_waivers()).is_empty());
    }

    #[test]
    fn allowlist_waives_by_rule_and_path_and_tracks_use() {
        let allow = Allowlist::parse(
            "# comment\nlock-unwrap crates/x/src/a.rs # reason\nwall-clock crates/y/src/b.rs # reason\n",
        );
        let src = "fn f(m: &std::sync::Mutex<u32>) {\n    m.lock().unwrap();\n}\n";
        assert!(lint_file("crates/x/src/a.rs", src, &allow).is_empty());
        // Same rule, different file: still flagged.
        assert_eq!(lint_file("crates/x/src/c.rs", src, &allow).len(), 1);
        // The wall-clock waiver never matched: reported as stale.
        let unused = allow.unused();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "wall-clock");
    }
}

//! Recursive CNOT-tree synthesis (Algorithm 1 of the QuCLEAR paper).
//!
//! Given the support of the current (basis-changed) Pauli rotation, the
//! synthesizer picks a CNOT parity tree whose extraction maximally simplifies
//! the *following* Pauli strings: qubits are grouped by the next Pauli's
//! operator (I/X/Y/Z subtrees), subtrees are synthesized recursively using the
//! Pauli after next, and subtree roots are connected with CNOTs chosen by the
//! Table-I reduction rules.

use std::fmt;

use quclear_circuit::Gate;
use quclear_pauli::{PauliFrame, PauliOp, PauliString};

/// Read-only access to the lookahead window of updated Pauli images.
///
/// The synthesizer only ever inspects single operators of the lookahead
/// strings, so the source can serve them straight out of a column-major
/// [`PauliFrame`] without materializing any string — the hot path during
/// extraction. A plain slice of strings also works (tests, benches).
pub trait LookaheadOps {
    /// Number of lookahead strings available.
    fn lookahead_len(&self) -> usize;
    /// Register size the lookahead strings act on.
    fn num_qubits(&self) -> usize;
    /// Operator of lookahead string `d` at `qubit`.
    fn op_at(&self, d: usize, qubit: usize) -> PauliOp;
}

impl LookaheadOps for [PauliString] {
    fn lookahead_len(&self) -> usize {
        self.len()
    }

    fn num_qubits(&self) -> usize {
        self.first().map_or(0, PauliString::num_qubits)
    }

    fn op_at(&self, d: usize, qubit: usize) -> PauliOp {
        self[d].op(qubit)
    }
}

/// A lookahead window served directly from a [`PauliFrame`]: entry `d` is
/// the frame row `rows[d]`.
#[derive(Debug, Clone, Copy)]
pub struct FrameLookahead<'a> {
    frame: &'a PauliFrame,
    rows: &'a [usize],
}

impl<'a> FrameLookahead<'a> {
    /// Creates a window over `rows` of `frame`.
    #[must_use]
    pub fn new(frame: &'a PauliFrame, rows: &'a [usize]) -> Self {
        FrameLookahead { frame, rows }
    }
}

impl LookaheadOps for FrameLookahead<'_> {
    fn lookahead_len(&self) -> usize {
        self.rows.len()
    }

    fn num_qubits(&self) -> usize {
        self.frame.num_qubits()
    }

    fn op_at(&self, d: usize, qubit: usize) -> PauliOp {
        self.frame.op(self.rows[d], qubit)
    }
}

/// CNOT-tree synthesizer for one Pauli rotation.
///
/// Lookahead entry `0` is the Pauli string immediately following the current
/// rotation (in the already-reordered sequence), entry `1` the one after
/// it, and so on — **already conjugated** through the Heisenberg map of
/// everything extracted so far *including* the current rotation's
/// single-qubit basis layer (the paper's `update_pauli(P, extr_clf)`). The
/// extraction engine maintains these images incrementally in a
/// [`PauliFrame`] and serves them through the internal `FrameLookahead`
/// [`LookaheadOps`] source, so the
/// synthesizer never re-simulates the extracted Clifford.
pub struct TreeSynthesizer<'a, L: LookaheadOps + ?Sized> {
    lookahead: &'a L,
    recursive: bool,
}

impl<L: LookaheadOps + ?Sized> fmt::Debug for TreeSynthesizer<'_, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreeSynthesizer")
            .field("lookahead_len", &self.lookahead.lookahead_len())
            .field("recursive", &self.recursive)
            .finish()
    }
}

impl<'a, L: LookaheadOps + ?Sized> TreeSynthesizer<'a, L> {
    /// Creates a synthesizer over already-updated lookahead images.
    #[must_use]
    pub fn new(lookahead: &'a L, recursive: bool) -> Self {
        TreeSynthesizer {
            lookahead,
            recursive,
        }
    }

    /// Synthesizes the CNOT tree over `support` (the qubits carrying
    /// non-identity operators of the current rotation after basis change).
    ///
    /// Returns the CNOT gates in execution order and the root qubit (where
    /// the `Rz` rotation is placed). For a single-qubit support no gates are
    /// emitted.
    ///
    /// # Panics
    ///
    /// Panics if `support` is empty.
    #[must_use]
    pub fn synthesize(&self, support: &[usize]) -> (Vec<Gate>, usize) {
        assert!(
            !support.is_empty(),
            "cannot synthesize a tree over an empty support"
        );
        let mut gates = Vec::new();
        let root = self.synth_rec(support, 0, &mut gates);
        (gates, root)
    }

    fn synth_rec(&self, tree_idxs: &[usize], depth: usize, gates: &mut Vec<Gate>) -> usize {
        if tree_idxs.len() == 1 {
            return tree_idxs[0];
        }
        if !self.recursive && depth > 0 {
            return chain(tree_idxs, gates);
        }
        if depth >= self.lookahead.lookahead_len() {
            // No further Pauli to optimize for: any tree is as good as any
            // other; use a simple chain.
            return chain(tree_idxs, gates);
        }

        // Step 1: partition the qubits by the next Pauli's operator.
        let mut groups: [Vec<usize>; 4] = Default::default();
        for &q in tree_idxs {
            let slot = match self.lookahead.op_at(depth, q) {
                PauliOp::Z => 0,
                PauliOp::I => 1,
                PauliOp::Y => 2,
                PauliOp::X => 3,
            };
            groups[slot].push(q);
        }

        // Step 2: synthesize each subtree (recursively, using the Pauli after
        // next to order the qubits inside the subtree).
        let mut roots: Vec<usize> = Vec::new();
        for group in &groups {
            match group.len() {
                0 => {}
                1 => roots.push(group[0]),
                _ => {
                    let root = if self.recursive {
                        self.synth_rec(group, depth + 1, gates)
                    } else {
                        chain(group, gates)
                    };
                    roots.push(root);
                }
            }
        }

        // Step 3: connect the subtree roots, preferring CNOTs that reduce the
        // next Pauli according to Table I. Residual operators at the roots
        // are tracked live through the gates emitted so far for this tree.
        self.connect_roots(&roots, depth, gates)
    }

    /// Connects the given roots into a single tree root, greedily choosing
    /// (control, target) pairs that minimize the next Pauli's weight.
    ///
    /// The tree gates are all CNOTs and only weights matter here, so the
    /// live view is a phase-free string updated with the two-operator CX
    /// rule — no string-wide conjugation or allocation in the O(roots²)
    /// candidate scan.
    fn connect_roots(&self, roots: &[usize], depth: usize, gates: &mut Vec<Gate>) -> usize {
        let mut remaining: Vec<usize> = roots.to_vec();
        // Live view of the next Pauli conjugated through the tree built so
        // far. Only qubits the tree touches can influence or be influenced
        // by the tree's CNOTs, so the view is populated on those alone.
        let mut live = PauliString::identity(self.lookahead.num_qubits());
        let mut touched: Vec<usize> = roots.to_vec();
        for gate in gates.iter() {
            if let Gate::Cx { control, target } = gate {
                touched.push(*control);
                touched.push(*target);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &q in &touched {
            live.set_op(q, self.lookahead.op_at(depth, q));
        }
        for gate in gates.iter() {
            apply_cx(&mut live, gate);
        }
        while remaining.len() > 1 {
            let mut best: Option<(usize, usize, i32)> = None;
            for (ci, &control) in remaining.iter().enumerate() {
                for (ti, &target) in remaining.iter().enumerate() {
                    if ci == ti {
                        continue;
                    }
                    let (oc, ot) = (live.op(control), live.op(target));
                    let (nc, nt) = cx_images(oc, ot);
                    let before_weight = weight_of(oc) + weight_of(ot);
                    let after_weight = weight_of(nc) + weight_of(nt);
                    let reduction = before_weight as i32 - after_weight as i32;
                    if best.is_none_or(|(_, _, r)| reduction > r) {
                        best = Some((control, target, reduction));
                    }
                }
            }
            let (control, target, _) = best.expect("at least two roots remain");
            let (nc, nt) = cx_images(live.op(control), live.op(target));
            live.set_op(control, nc);
            live.set_op(target, nt);
            gates.push(Gate::Cx { control, target });
            remaining.retain(|&q| q != control);
        }
        remaining[0]
    }
}

/// Sign-free CX conjugation on the (control, target) operator pair.
#[inline]
fn cx_images(control: PauliOp, target: PauliOp) -> (PauliOp, PauliOp) {
    let (xc, zc) = control.xz();
    let (xt, zt) = target.xz();
    (PauliOp::from_xz(xc, zc ^ zt), PauliOp::from_xz(xt ^ xc, zt))
}

/// Applies the sign-free CX rule of `gate` to `pauli` in place.
///
/// # Panics
///
/// Panics if `gate` is not a CNOT (tree circuits contain nothing else).
pub(crate) fn apply_cx(pauli: &mut PauliString, gate: &Gate) {
    let Gate::Cx { control, target } = gate else {
        panic!("tree circuits contain only CNOTs, found {gate}")
    };
    let (nc, nt) = cx_images(pauli.op(*control), pauli.op(*target));
    pauli.set_op(*control, nc);
    pauli.set_op(*target, nt);
}

/// Connects the qubits in index order with a CNOT chain and returns the last
/// qubit as the root.
fn chain(tree_idxs: &[usize], gates: &mut Vec<Gate>) -> usize {
    for pair in tree_idxs.windows(2) {
        gates.push(Gate::Cx {
            control: pair[0],
            target: pair[1],
        });
    }
    *tree_idxs
        .last()
        .expect("chain called with empty index list")
}

#[inline]
fn weight_of(op: PauliOp) -> usize {
    usize::from(!op.is_identity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclear_circuit::Circuit;
    use quclear_pauli::SignedPauli;
    use quclear_tableau::{conjugate_pauli_by_gate, CliffordTableau};

    /// Checks the defining parity-tree property: conjugating the all-Z string
    /// on the support through the tree circuit leaves a single Z on the root.
    fn assert_valid_parity_tree(n: usize, support: &[usize], gates: &[Gate], root: usize) {
        let mut z_all = PauliString::identity(n);
        for &q in support {
            z_all.set_op(q, PauliOp::Z);
        }
        let mut sp = SignedPauli::positive(z_all);
        for g in gates {
            sp = conjugate_pauli_by_gate(&sp, g);
        }
        let expected = PauliString::single(n, root, PauliOp::Z);
        assert_eq!(
            sp.pauli(),
            &expected,
            "tree must map ∏Z(support) to Z(root)"
        );
        assert!(!sp.is_negative());
        // And the CNOT count is |support| - 1.
        assert_eq!(gates.len(), support.len() - 1);
    }

    #[test]
    fn single_qubit_support_needs_no_gates() {
        let lookahead = vec!["XYZ".parse().unwrap()];
        let synth = TreeSynthesizer::new(lookahead.as_slice(), true);
        let (gates, root) = synth.synthesize(&[1]);
        assert!(gates.is_empty());
        assert_eq!(root, 1);
    }

    #[test]
    fn chain_fallback_without_lookahead() {
        let lookahead: Vec<PauliString> = Vec::new();
        let synth = TreeSynthesizer::new(lookahead.as_slice(), true);
        let support = [0, 1, 3];
        let (gates, root) = synth.synthesize(&support);
        assert_valid_parity_tree(4, &support, &gates, root);
    }

    #[test]
    fn full_support_tree_is_valid_parity_tree() {
        let n = 7;
        // The paper's example: P2' = ZZZIXYX, P3' = YZYXIYX.
        let lookahead: Vec<PauliString> =
            vec!["ZZZIXYX".parse().unwrap(), "YZYXIYX".parse().unwrap()];
        let synth = TreeSynthesizer::new(lookahead.as_slice(), true);
        let support: Vec<usize> = (0..n).collect();
        let (gates, root) = synth.synthesize(&support);
        assert_valid_parity_tree(n, &support, &gates, root);
    }

    /// The paper's running example (Section V-A): extracting the synthesized
    /// tree for P1 (full support) must optimize P2' = ZZZIXYX down to weight 3
    /// (IIIIXYX in the paper).
    #[test]
    fn paper_example_reduces_p2_to_weight_three() {
        let n = 7;
        let p2: PauliString = "ZZZIXYX".parse().unwrap();
        let p3: PauliString = "YZYXIYX".parse().unwrap();
        let lookahead = vec![p2.clone(), p3.clone()];
        let synth = TreeSynthesizer::new(lookahead.as_slice(), true);
        let support: Vec<usize> = (0..n).collect();
        let (gates, root) = synth.synthesize(&support);
        assert_valid_parity_tree(n, &support, &gates, root);

        // Extracting the tree conjugates the following Paulis by the mirrored
        // tree, i.e. by the tree circuit itself in the Heisenberg picture:
        // P' = W P W† where W is the tree circuit.
        let mut tree_circuit = Circuit::new(n);
        tree_circuit.extend(gates.iter().copied());
        let map = CliffordTableau::from_circuit(&tree_circuit);
        let p2_updated = map.apply(&p2);
        assert!(
            p2_updated.weight() <= 3,
            "P2' should be reduced to weight ≤ 3, got {} ({})",
            p2_updated.weight(),
            p2_updated
        );
        // With the recursive tree, P3' should also be reduced (the paper
        // reaches weight 5: IIXXIYX).
        let p3_updated = map.apply(&p3);
        assert!(
            p3_updated.weight() <= 5,
            "P3' should be reduced to weight ≤ 5, got {} ({})",
            p3_updated.weight(),
            p3_updated
        );
    }

    #[test]
    fn recursive_beats_or_matches_non_recursive_on_paper_example() {
        let n = 7;
        let p2: PauliString = "ZZZIXYX".parse().unwrap();
        let p3: PauliString = "YZYXIYX".parse().unwrap();
        let lookahead = vec![p2, p3.clone()];
        let support: Vec<usize> = (0..n).collect();

        let weight_after = |recursive: bool| {
            let synth = TreeSynthesizer::new(lookahead.as_slice(), recursive);
            let (gates, _) = synth.synthesize(&support);
            let mut tree_circuit = Circuit::new(n);
            tree_circuit.extend(gates.iter().copied());
            CliffordTableau::from_circuit(&tree_circuit)
                .apply(&p3)
                .weight()
        };
        assert!(weight_after(true) <= weight_after(false));
    }

    #[test]
    fn all_z_next_pauli_collapses_to_single_z() {
        // If the next Pauli is all-Z on the support, extracting the chain
        // reduces it to a single Z (the paper's ZZ…Z → II…IZ observation).
        let n = 5;
        let next: PauliString = "ZZZZZ".parse().unwrap();
        let lookahead = vec![next.clone()];
        let synth = TreeSynthesizer::new(lookahead.as_slice(), true);
        let support: Vec<usize> = (0..n).collect();
        let (gates, root) = synth.synthesize(&support);
        assert_valid_parity_tree(n, &support, &gates, root);
        let mut tree_circuit = Circuit::new(n);
        tree_circuit.extend(gates.iter().copied());
        let updated = CliffordTableau::from_circuit(&tree_circuit).apply(&next);
        assert_eq!(
            updated.weight(),
            1,
            "ZZZZZ should collapse to a single Z, got {updated}"
        );
    }

    #[test]
    fn disjoint_supports_are_left_untouched() {
        // If the next Pauli is identity on the support, no reduction is
        // possible but the tree must still be valid.
        let n = 6;
        let lookahead: Vec<PauliString> = vec!["IIIIXX".parse().unwrap()];
        let synth = TreeSynthesizer::new(lookahead.as_slice(), true);
        let support = [0, 1, 2, 3];
        let (gates, root) = synth.synthesize(&support);
        assert_valid_parity_tree(n, &support, &gates, root);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn empty_support_panics() {
        let lookahead: Vec<PauliString> = Vec::new();
        let synth = TreeSynthesizer::new(lookahead.as_slice(), true);
        let _ = synth.synthesize(&[]);
    }
}

//! QuCLEAR core: Clifford Extraction and Clifford Absorption.
//!
//! This crate implements the primary contribution of *"QuCLEAR: Clifford
//! Extraction and Absorption for Quantum Circuit Optimization"* (HPCA 2025):
//!
//! * [`CommutingBlocks`] — partitioning a Pauli-rotation program into blocks
//!   of mutually commuting rotations (Section V-C),
//! * [`TreeSynthesizer`] — recursive CNOT-tree synthesis optimizing the
//!   following Pauli strings (Algorithm 1, Section V-A/B),
//! * [`extract_clifford`] — the Clifford Extraction pass (Algorithm 2), which
//!   moves roughly half of every rotation block to a terminal Clifford
//!   subcircuit while simplifying later blocks,
//! * [`absorb_observables`] / [`ProbabilityAbsorber`] — Clifford Absorption
//!   (Section VI): the terminal Clifford is folded into measurement
//!   observables, or reduced to a measurement-basis layer plus a classical
//!   affine bitstring map for probability measurements (Proposition 1),
//! * [`compile`] — the end-to-end pipeline with the ablation switches used by
//!   Figures 9 and 10,
//! * [`lift`](lift()) / [`lift_qasm`] — the ingestion front door: a
//!   gate-level (e.g. QASM-parsed) circuit is rewritten as a Pauli-rotation
//!   program plus one trailing Clifford ([`LiftedProgram`]), so external
//!   circuits enter the pipeline exactly like native programs.
//!
//! # Examples
//!
//! ```
//! use quclear_core::{compile, QuClearConfig};
//! use quclear_pauli::{PauliRotation, SignedPauli};
//!
//! // Figure 2 of the paper: e^{iZZZZ t1} e^{iYYXX t2}, observable XXZZ.
//! let program = vec![
//!     PauliRotation::parse("ZZZZ", 0.3)?,
//!     PauliRotation::parse("YYXX", 0.7)?,
//! ];
//! let result = compile(&program, &QuClearConfig::default());
//! assert!(result.cnot_count() <= 4); // 12 CNOTs natively
//!
//! let observable: SignedPauli = "XXZZ".parse()?;
//! let absorbed = result.absorb_observables(&[observable]);
//! assert_eq!(absorbed.transformed().len(), 1);
//! # Ok::<(), quclear_pauli::ParsePauliError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod absorb;
mod blocks;
mod extract;
mod gf2;
mod grouping;
pub mod lift;
mod pipeline;
mod shots;
mod tree;

pub use absorb::{
    absorb_observables, expectation_from_probabilities, is_probability_absorbable,
    measurement_basis_circuit, AbsorbedObservables, AbsorptionError, AbsorptionPlan,
    ObservableAbsorption, ProbabilityAbsorber,
};
pub use blocks::CommutingBlocks;
pub use extract::{basis_change_circuit, extract_clifford, ExtractionConfig, ExtractionResult};
pub use gf2::Gf2Matrix;
pub use grouping::{
    diagonalize_commuting_frame, group_commuting, group_commuting_frame, group_qubitwise_commuting,
    qubit_wise_commute, GroupDiagonalizer, MeasurementGroup, MeasurementPlan, PlannedGroup,
};
pub use lift::{lift, lift_qasm, LiftedProgram};
pub use pipeline::{compile, QuClearConfig, QuClearResult};
pub use shots::ShotBatch;
pub use tree::{LookaheadOps, TreeSynthesizer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExtractionConfig>();
        assert_send_sync::<ExtractionResult>();
        assert_send_sync::<QuClearConfig>();
        assert_send_sync::<QuClearResult>();
        assert_send_sync::<ProbabilityAbsorber>();
        assert_send_sync::<ObservableAbsorption>();
        assert_send_sync::<Gf2Matrix>();
        assert_send_sync::<AbsorptionPlan>();
        assert_send_sync::<AbsorbedObservables>();
        assert_send_sync::<ShotBatch>();
        assert_send_sync::<LiftedProgram>();
    }
}

//! Lifting gate-level circuits into Pauli-rotation programs.
//!
//! QuCLEAR consumes programs expressed as sequences of Pauli rotations
//! (`exp(-i·θ/2·P)`), but real workloads arrive as *gate-level* circuits —
//! the paper's VQE/QAOA benchmarks are QASM before they are Pauli networks.
//! This module is the front door: [`lift`] converts any circuit over the
//! workspace gate set into a [`LiftedProgram`] — a rotation program followed
//! by one trailing Clifford — so external circuits can enter
//! [`compile`](crate::compile) and the engine exactly like native programs.
//!
//! # How it works
//!
//! The pass streams the gates once, in time order, maintaining a Heisenberg
//! generator frame of the accumulated Clifford `C`: the 2n rows `C†·X_q·C`
//! and `C†·Z_q·C`. A Clifford gate rewrites only the rows of the qubits it
//! touches (each new row is a signed product of at most two old rows), so
//! the whole pass is `O(gates · n/64)` words. The forward trailing tableau
//! `P ↦ C·P·C†` is then built once from the collected Clifford gates
//! ([`CliffordTableau::from_circuit`] — the same word-parallel
//! [`CliffordTableau::then_gate`] fold, just done at the end).
//!
//! When a rotation gate arrives (`Rz`/`Rx`/`Ry`, and `T`/`T†` once parsed as
//! `Rz(±π/4)`), it commutes leftwards past `C`:
//! `exp(-i·θ/2·P)·C = C·exp(-i·θ/2·C†·P·C)` — and `C†·P·C` for a native
//! single-qubit axis is *read off* the frame: row `n+q` for `Z_q`, row `q`
//! for `X_q`, and `i`·row`_q`·row`_{n+q}` for `Y_q`. No pattern matching is
//! involved, which is why `Rz`/`CX` ladders collapse to multi-qubit `ZZ…Z`
//! rotations automatically: the CNOT conjugation is simply tracked by the
//! frame.
//!
//! # Examples
//!
//! The textbook ZZ-interaction gadget lifts to a single two-qubit rotation
//! with an identity trailing Clifford:
//!
//! ```
//! use quclear_circuit::Circuit;
//! use quclear_core::lift;
//!
//! let mut qc = Circuit::new(2);
//! qc.cx(0, 1);
//! qc.rz(1, 0.7);
//! qc.cx(0, 1);
//! let lifted = lift(&qc);
//! assert_eq!(lifted.rotations.len(), 1);
//! assert_eq!(lifted.rotations[0].pauli().to_string(), "ZZ");
//! assert!(lifted.trailing_clifford.is_identity());
//! ```
//!
//! Lifted programs compile like native ones; [`LiftedProgram::attach`] folds
//! the trailing Clifford back into the result:
//!
//! ```
//! use quclear_core::{compile, lift_qasm, QuClearConfig};
//!
//! let lifted = lift_qasm(
//!     "qreg q[2]; h q[0]; cx q[0], q[1]; rz(pi/4) q[1]; cx q[0], q[1];",
//! )?;
//! let result = lifted.attach(compile(&lifted.rotations, &QuClearConfig::default()));
//! assert_eq!(result.optimized.num_qubits(), 2);
//! # Ok::<(), quclear_circuit::qasm::ParseQasmError>(())
//! ```

use quclear_circuit::qasm::{from_qasm, ParseQasmError};
use quclear_circuit::{Circuit, Gate};
use quclear_pauli::{PauliOp, PauliRotation, PauliString, SignedPauli};
use quclear_tableau::CliffordTableau;

use crate::pipeline::QuClearResult;

/// Ordered product `i^k · f₀·f₁·…`, asserting that the result is Hermitian
/// (the exponent of `i` ends up even), as any Clifford conjugation image
/// must be.
fn phased_product(mut k: u8, factors: &[&SignedPauli]) -> SignedPauli {
    let mut acc: Option<PauliString> = None;
    for factor in factors {
        if factor.is_negative() {
            k = (k + 2) % 4;
        }
        acc = Some(match acc {
            None => factor.pauli().clone(),
            Some(prev) => {
                let (product, dk) = prev.mul(factor.pauli());
                k = (k + dk) % 4;
                product
            }
        });
    }
    assert!(
        k.is_multiple_of(2),
        "conjugated Pauli image has imaginary phase i^{k}; the frame is corrupt"
    );
    SignedPauli::new(acc.expect("at least one factor"), k == 2)
}

/// The Heisenberg generator frame of the running Clifford `C`: row `q` holds
/// `C†·X_q·C` and row `n+q` holds `C†·Z_q·C`.
///
/// Appending a gate (`C ← g·C`) *pre*-composes the map with conjugation by
/// `g†` — which, unlike the post-composition the tableau kernels implement,
/// rewrites whole rows: the new row for generator `G` is the old frame's
/// image of `g†·G·g`, a signed product of at most two old rows on the
/// gate's qubits.
struct HeisenbergFrame {
    n: usize,
    rows: Vec<SignedPauli>,
}

impl HeisenbergFrame {
    fn identity(n: usize) -> Self {
        let rows = (0..n)
            .map(|q| SignedPauli::positive(PauliString::single(n, q, PauliOp::X)))
            .chain((0..n).map(|q| SignedPauli::positive(PauliString::single(n, q, PauliOp::Z))))
            .collect();
        HeisenbergFrame { n, rows }
    }

    fn x_row(&self, q: usize) -> &SignedPauli {
        &self.rows[q]
    }

    fn z_row(&self, q: usize) -> &SignedPauli {
        &self.rows[self.n + q]
    }

    /// `C†·Y_q·C = i · (C†·X_q·C) · (C†·Z_q·C)`.
    fn y_image(&self, q: usize) -> SignedPauli {
        phased_product(1, &[self.x_row(q), self.z_row(q)])
    }

    /// Advances the frame past one Clifford gate: `C ← g·C`.
    ///
    /// The per-gate rules are the images `g†·G·g` of the touched generators,
    /// expanded over the old rows (e.g. for `CX(c,t)`:
    /// `X_c ↦ X_c X_t`, `Z_t ↦ Z_c Z_t`, the other two fixed).
    fn push_clifford(&mut self, gate: &Gate) {
        let n = self.n;
        match *gate {
            // H: X ↔ Z.
            Gate::H(q) => self.rows.swap(q, n + q),
            // S: S†·X·S = −Y, Z fixed.
            Gate::S(q) => self.rows[q] = phased_product(3, &[&self.rows[q], &self.rows[n + q]]),
            // S†: S·X·S† = Y, Z fixed.
            Gate::Sdg(q) => self.rows[q] = phased_product(1, &[&self.rows[q], &self.rows[n + q]]),
            // X: Z ↦ −Z.
            Gate::X(q) => self.rows[n + q] = -self.rows[n + q].clone(),
            // Y: X ↦ −X, Z ↦ −Z.
            Gate::Y(q) => {
                self.rows[q] = -self.rows[q].clone();
                self.rows[n + q] = -self.rows[n + q].clone();
            }
            // Z: X ↦ −X.
            Gate::Z(q) => self.rows[q] = -self.rows[q].clone(),
            // √X: √X†·Z·√X = Y, X fixed.
            Gate::SqrtX(q) => {
                self.rows[n + q] = phased_product(1, &[&self.rows[q], &self.rows[n + q]]);
            }
            // √X†: √X·Z·√X† = −Y, X fixed.
            Gate::SqrtXdg(q) => {
                self.rows[n + q] = phased_product(3, &[&self.rows[q], &self.rows[n + q]]);
            }
            // CX is self-inverse: X_c ↦ X_c·X_t, Z_t ↦ Z_c·Z_t.
            Gate::Cx { control, target } => {
                self.rows[control] = phased_product(0, &[&self.rows[control], &self.rows[target]]);
                self.rows[n + target] =
                    phased_product(0, &[&self.rows[n + control], &self.rows[n + target]]);
            }
            // CZ is self-inverse: X_a ↦ X_a·Z_b, X_b ↦ Z_a·X_b.
            Gate::Cz { a, b } => {
                let new_a = phased_product(0, &[&self.rows[a], &self.rows[n + b]]);
                let new_b = phased_product(0, &[&self.rows[n + a], &self.rows[b]]);
                self.rows[a] = new_a;
                self.rows[b] = new_b;
            }
            Gate::Swap { a, b } => {
                self.rows.swap(a, b);
                self.rows.swap(n + a, n + b);
            }
            Gate::Rz { .. } | Gate::Rx { .. } | Gate::Ry { .. } => {
                unreachable!("rotation gates are lifted, not folded into the frame")
            }
        }
    }

    /// The frame as a tableau: the Heisenberg map `P ↦ C†·P·C`.
    fn into_tableau(self) -> CliffordTableau {
        let n = self.n;
        CliffordTableau::from_generator_images(&self.rows[..n], &self.rows[n..])
    }
}

/// A gate-level circuit rewritten as `trailing_clifford ∘ rotations`: the
/// rotation sequence applied first (in vector order), followed by one
/// Clifford.
///
/// Produced by [`lift`] / [`lift_qasm`]. The rotation program is what enters
/// [`compile`](crate::compile) or the engine; the trailing Clifford is never
/// executed — [`LiftedProgram::attach`] merges it into a compilation result,
/// where Clifford Absorption folds it into measurements like any extracted
/// Clifford.
///
/// # Examples
///
/// ```
/// use quclear_circuit::Circuit;
/// use quclear_core::lift;
///
/// let mut qc = Circuit::new(2);
/// qc.h(0);              // Clifford: folds into the frame
/// qc.rz(0, 0.3);        // lifted through H: axis becomes X
/// qc.cx(0, 1);          // Clifford
/// let lifted = lift(&qc);
/// assert_eq!(lifted.rotations[0].pauli().to_string(), "XI");
/// assert_eq!(lifted.trailing_circuit().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct LiftedProgram {
    /// The lifted rotations in time order: rotation `i` is
    /// `exp(-i·θᵢ/2·(±Pᵢ))` with the conjugated-axis sign already folded
    /// into the angle.
    pub rotations: Vec<PauliRotation>,
    /// The forward map `P ↦ C·P·C†` of the trailing Clifford `C`.
    pub trailing_clifford: CliffordTableau,
    num_qubits: usize,
    axes: Vec<SignedPauli>,
    angles: Vec<f64>,
    trailing_circuit: Circuit,
    heisenberg: CliffordTableau,
}

impl LiftedProgram {
    /// Register size of the lifted circuit.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of lifted rotations (= bindable parameters).
    #[must_use]
    pub fn num_rotations(&self) -> usize {
        self.rotations.len()
    }

    /// The conjugated rotation axes with their structural signs.
    ///
    /// These are the axes to fingerprint and template-compile: the sign is
    /// part of the structure (it flips the sign of the bound angle), while
    /// [`Self::native_angles`] carries the angle values separately so the
    /// same structure can be re-bound.
    #[must_use]
    pub fn axes(&self) -> &[SignedPauli] {
        &self.axes
    }

    /// The native rotation angles, in lift order, *before* axis-sign
    /// folding — exactly what [`crate::compile`] on a template of
    /// [`Self::axes`] expects to bind.
    #[must_use]
    pub fn native_angles(&self) -> &[f64] {
        &self.angles
    }

    /// The trailing Clifford as a circuit (the input's Clifford gates in
    /// their original order).
    #[must_use]
    pub fn trailing_circuit(&self) -> &Circuit {
        &self.trailing_circuit
    }

    /// The Heisenberg map `P ↦ C†·P·C` of the trailing Clifford — the
    /// direction Clifford Absorption uses to rewrite observables.
    #[must_use]
    pub fn heisenberg(&self) -> &CliffordTableau {
        &self.heisenberg
    }

    /// Returns `true` if the input contained no rotation gates (the circuit
    /// is entirely Clifford).
    #[must_use]
    pub fn is_clifford_only(&self) -> bool {
        self.rotations.is_empty()
    }

    /// The lifted rotations re-bound to new native angles (angle `i`
    /// replaces the input circuit's `i`-th rotation angle; axis signs are
    /// re-folded).
    ///
    /// # Panics
    ///
    /// Panics if `angles.len()` differs from [`Self::num_rotations`].
    #[must_use]
    pub fn rotations_with_angles(&self, angles: &[f64]) -> Vec<PauliRotation> {
        assert_eq!(
            angles.len(),
            self.rotations.len(),
            "angle count mismatch: {} angles for {} rotations",
            angles.len(),
            self.rotations.len()
        );
        self.axes
            .iter()
            .zip(angles)
            .map(|(axis, &angle)| PauliRotation::with_signed_pauli(axis.clone(), angle))
            .collect()
    }

    /// Appends the trailing Clifford to a circuit implementing the rotation
    /// sequence, producing a circuit equivalent to the lifted input.
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    #[must_use]
    pub fn complete_circuit(&self, rotation_circuit: &Circuit) -> Circuit {
        let mut full = rotation_circuit.clone();
        full.append(&self.trailing_circuit);
        full
    }

    /// Merges the trailing Clifford into a compilation of
    /// [`Self::rotations`]: the returned result's `optimized ∘ extracted`
    /// is equivalent to the original circuit, and its Heisenberg map (hence
    /// CA-Pre/CA-Post) accounts for both Cliffords.
    ///
    /// # Panics
    ///
    /// Panics if `compiled` is a compilation of a different register size
    /// (an empty compilation — the Clifford-only case — is widened).
    #[must_use]
    pub fn attach(&self, compiled: QuClearResult) -> QuClearResult {
        let n = self.num_qubits;
        // `compile(&[])` legitimately produces zero-qubit circuits; widen
        // them so Clifford-only inputs round-trip.
        let (optimized, mut extracted, heisenberg) = if compiled.optimized.num_qubits() == n {
            (compiled.optimized, compiled.extracted, compiled.heisenberg)
        } else {
            assert!(
                compiled.optimized.is_empty() && compiled.extracted.is_empty(),
                "attach: compiled result is for {} qubits, lifted program for {n}",
                compiled.optimized.num_qubits()
            );
            (
                Circuit::new(n),
                Circuit::new(n),
                CliffordTableau::identity(n),
            )
        };
        extracted.append(&self.trailing_circuit);
        QuClearResult {
            optimized,
            extracted,
            // Total trailing unitary: C_lift · U_ext (extracted runs first in
            // time order), so the Heisenberg map applies the lift's first.
            heisenberg: self.heisenberg.then(&heisenberg),
        }
    }
}

/// Lifts a gate-level circuit into a Pauli-rotation program followed by one
/// trailing Clifford.
///
/// Clifford gates fold into a running tableau; every `Rz`/`Rx`/`Ry` becomes
/// a [`PauliRotation`] about the running Clifford's conjugated image of its
/// native axis (see the [module docs](self) for the algebra). The pass is a
/// single `O(gates · n/64)`-word sweep and never fails: the whole workspace
/// gate set is liftable.
///
/// The result satisfies `circuit ≡ rotations then trailing`, exactly (no
/// global-phase slack is introduced by the lift itself).
///
/// # Examples
///
/// ```
/// use quclear_circuit::Circuit;
/// use quclear_core::lift;
///
/// // An Rz/CX ladder is recognized structurally as one ZZZ rotation.
/// let mut qc = Circuit::new(3);
/// qc.cx(0, 1);
/// qc.cx(1, 2);
/// qc.rz(2, 0.4);
/// qc.cx(1, 2);
/// qc.cx(0, 1);
/// let lifted = lift(&qc);
/// assert_eq!(lifted.rotations.len(), 1);
/// assert_eq!(lifted.rotations[0].pauli().to_string(), "ZZZ");
/// assert!(lifted.trailing_clifford.is_identity());
/// ```
#[must_use]
pub fn lift(circuit: &Circuit) -> LiftedProgram {
    let n = circuit.num_qubits();
    let mut frame = HeisenbergFrame::identity(n);
    let mut trailing = Circuit::new(n);
    let mut axes: Vec<SignedPauli> = Vec::new();
    let mut angles: Vec<f64> = Vec::new();
    for gate in circuit.gates() {
        match *gate {
            Gate::Rz { qubit, angle } => {
                axes.push(frame.z_row(qubit).clone());
                angles.push(angle);
            }
            Gate::Rx { qubit, angle } => {
                axes.push(frame.x_row(qubit).clone());
                angles.push(angle);
            }
            Gate::Ry { qubit, angle } => {
                axes.push(frame.y_image(qubit));
                angles.push(angle);
            }
            ref clifford => {
                frame.push_clifford(clifford);
                trailing.push(*clifford);
            }
        }
    }
    let rotations = axes
        .iter()
        .zip(&angles)
        .map(|(axis, &angle)| PauliRotation::with_signed_pauli(axis.clone(), angle))
        .collect();
    LiftedProgram {
        rotations,
        trailing_clifford: CliffordTableau::from_circuit(&trailing),
        num_qubits: n,
        axes,
        angles,
        trailing_circuit: trailing,
        heisenberg: frame.into_tableau(),
    }
}

/// Parses OpenQASM 2.0 text and lifts it in one step.
///
/// # Errors
///
/// Returns the [`ParseQasmError`] of [`from_qasm`] when the text does not
/// parse; the lift itself cannot fail.
///
/// # Examples
///
/// ```
/// use quclear_core::lift_qasm;
///
/// let lifted = lift_qasm(
///     "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\nrz(pi/3) q[1];\ncx q[0], q[1];\n",
/// )?;
/// assert_eq!(lifted.rotations[0].pauli().to_string(), "ZZ");
/// # Ok::<(), quclear_circuit::qasm::ParseQasmError>(())
/// ```
pub fn lift_qasm(text: &str) -> Result<LiftedProgram, ParseQasmError> {
    Ok(lift(&from_qasm(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A circuit exercising every Clifford gate kind.
    fn all_clifford_gates(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        c.s(1);
        c.sdg(2);
        c.x(0);
        c.y(1);
        c.z(2);
        c.push(Gate::SqrtX(3));
        c.push(Gate::SqrtXdg(0));
        c.cx(0, 3);
        c.cz(1, 2);
        c.swap(2, 3);
        c.cx(3, 1);
        c.s(3);
        c.h(2);
        c
    }

    #[test]
    fn clifford_only_circuit_lifts_to_empty_program() {
        let c = all_clifford_gates(4);
        let lifted = lift(&c);
        assert!(lifted.is_clifford_only());
        assert_eq!(lifted.trailing_circuit().gates(), c.gates());
        assert_eq!(lifted.trailing_clifford, CliffordTableau::from_circuit(&c));
    }

    #[test]
    fn heisenberg_frame_matches_the_tableau_oracle() {
        // The frame's row rules implement pre-composition by hand; the
        // tableau built from the inverse circuit is the trusted oracle.
        let c = all_clifford_gates(4);
        let lifted = lift(&c);
        assert_eq!(
            *lifted.heisenberg(),
            CliffordTableau::heisenberg_from_circuit(&c)
        );
    }

    #[test]
    fn every_clifford_gate_conjugates_axes_like_the_tableau() {
        // For each Clifford gate kind g and each native axis A ∈ {X, Y, Z},
        // lifting [g, rotation(A)] must produce the axis H(g)·A where H is
        // the Heisenberg tableau of g alone.
        let gates = [
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::SqrtX(0),
            Gate::SqrtXdg(0),
            Gate::Cx {
                control: 0,
                target: 1,
            },
            Gate::Cz { a: 0, b: 1 },
            Gate::Swap { a: 0, b: 1 },
        ];
        for gate in gates {
            let mut prefix = Circuit::new(2);
            prefix.push(gate);
            let oracle = CliffordTableau::heisenberg_from_circuit(&prefix);
            for (native, rotation) in [
                (
                    "ZI",
                    Gate::Rz {
                        qubit: 0,
                        angle: 0.5,
                    },
                ),
                (
                    "XI",
                    Gate::Rx {
                        qubit: 0,
                        angle: 0.5,
                    },
                ),
                (
                    "YI",
                    Gate::Ry {
                        qubit: 0,
                        angle: 0.5,
                    },
                ),
                (
                    "IZ",
                    Gate::Rz {
                        qubit: 1,
                        angle: 0.5,
                    },
                ),
                (
                    "IX",
                    Gate::Rx {
                        qubit: 1,
                        angle: 0.5,
                    },
                ),
                (
                    "IY",
                    Gate::Ry {
                        qubit: 1,
                        angle: 0.5,
                    },
                ),
            ] {
                let mut c = prefix.clone();
                c.push(rotation);
                let lifted = lift(&c);
                let expected = oracle.apply(&native.parse().unwrap());
                assert_eq!(
                    lifted.axes()[0],
                    expected,
                    "axis mismatch lifting {native} past {gate}"
                );
            }
        }
    }

    #[test]
    fn rz_cx_ladder_collapses_to_multi_qubit_z_rotation() {
        let mut qc = Circuit::new(4);
        for i in 0..3 {
            qc.cx(i, i + 1);
        }
        qc.rz(3, 0.9);
        for i in (0..3).rev() {
            qc.cx(i, i + 1);
        }
        let lifted = lift(&qc);
        assert_eq!(lifted.rotations.len(), 1);
        assert_eq!(lifted.rotations[0].pauli().to_string(), "ZZZZ");
        assert!((lifted.rotations[0].angle() - 0.9).abs() < 1e-15);
        assert!(lifted.trailing_clifford.is_identity());
        assert!(lifted.heisenberg().is_identity());
    }

    #[test]
    fn basis_changes_rotate_the_axis() {
        // H; Rz lifts to an X rotation; Sdg·H; Rz lifts to a Y rotation.
        let mut qc = Circuit::new(1);
        qc.h(0);
        qc.rz(0, 0.4);
        let lifted = lift(&qc);
        assert_eq!(lifted.axes()[0].to_string(), "+X");

        let mut qc = Circuit::new(1);
        qc.sdg(0);
        qc.h(0);
        qc.rz(0, 0.4);
        let lifted = lift(&qc);
        assert_eq!(lifted.axes()[0].pauli().to_string(), "Y");
    }

    #[test]
    fn negative_axis_signs_fold_into_angles() {
        // X·Rz(θ)·X = Rz(−θ): conjugating Z by X negates the axis.
        let mut qc = Circuit::new(1);
        qc.x(0);
        qc.rz(0, 0.6);
        let lifted = lift(&qc);
        assert!(lifted.axes()[0].is_negative());
        assert_eq!(lifted.native_angles(), &[0.6]);
        assert!((lifted.rotations[0].angle() + 0.6).abs() < 1e-15);

        let rebound = lifted.rotations_with_angles(&[1.5]);
        assert!((rebound[0].angle() + 1.5).abs() < 1e-15);
    }

    #[test]
    fn rotation_interleaving_uses_the_running_frame() {
        // The second rotation sees only the Cliffords before it.
        let mut qc = Circuit::new(2);
        qc.rz(0, 0.1); // Z on a fresh frame
        qc.h(0);
        qc.rz(0, 0.2); // lifted through H: X
        qc.cx(0, 1);
        qc.rz(1, 0.3); // lifted through CX then H: Z₁ ↦ Z₀Z₁ ↦ X₀Z₁
        let lifted = lift(&qc);
        let axes: Vec<String> = lifted.axes().iter().map(ToString::to_string).collect();
        assert_eq!(axes, vec!["+ZI", "+XI", "+XZ"]);
        assert_eq!(lifted.trailing_circuit().len(), 2);
    }

    #[test]
    fn attach_composes_the_trailing_clifford() {
        let mut qc = Circuit::new(2);
        qc.cx(0, 1);
        qc.rz(1, 0.8);
        qc.h(0);
        let lifted = lift(&qc);
        let result = lifted.attach(crate::compile(
            &lifted.rotations,
            &crate::QuClearConfig::default(),
        ));
        // The composed Heisenberg map must match the one computed from the
        // composed extracted circuit.
        assert_eq!(
            result.heisenberg,
            CliffordTableau::heisenberg_from_circuit(&result.extracted)
        );
    }

    #[test]
    fn clifford_only_attach_widens_the_empty_compilation() {
        let c = all_clifford_gates(4);
        let lifted = lift(&c);
        let result = lifted.attach(crate::compile(
            &lifted.rotations,
            &crate::QuClearConfig::default(),
        ));
        assert!(result.optimized.is_empty());
        assert_eq!(result.optimized.num_qubits(), 4);
        assert_eq!(result.extracted.gates(), c.gates());
    }

    #[test]
    fn empty_circuit_lifts_to_empty_everything() {
        let lifted = lift(&Circuit::new(3));
        assert!(lifted.is_clifford_only());
        assert!(lifted.trailing_clifford.is_identity());
        assert!(lifted.trailing_circuit().is_empty());
    }
}
